//! User-defined functions.
//!
//! The paper's queries freely call into user code ("the developer \[can\] use
//! the full .NET type system and class library", §1). Steno inlines the
//! *expression-tree* part of each lambda and leaves opaque user functions as
//! direct calls. A [`UdfRegistry`] holds those opaque functions together
//! with their declared signatures so both the baseline interpreter and the
//! Steno VM can invoke them.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::ty::Ty;
use crate::value::Value;

/// The native implementation of a user-defined function.
pub type UdfFn = Arc<dyn Fn(&[Value]) -> Value + Send + Sync>;

/// A registered user-defined function: implementation plus signature.
#[derive(Clone)]
pub struct Udf {
    /// Parameter types.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    /// The native implementation.
    pub imp: UdfFn,
    /// Whether the caller vouched that the function is *pure*:
    /// deterministic, total (never panics), and effect-free, so that
    /// changing how often or in what order it is called is
    /// unobservable. Defaults to `false` — an opaque native function
    /// must be assumed effectful, which blocks algebraic rewrites from
    /// reordering around it.
    pub pure: bool,
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Udf")
            .field("params", &self.params)
            .field("ret", &self.ret)
            .field("pure", &self.pure)
            .finish_non_exhaustive()
    }
}

/// A registry of user-defined functions, keyed by name.
#[derive(Clone, Debug, Default)]
pub struct UdfRegistry {
    funcs: HashMap<String, Udf>,
}

impl UdfRegistry {
    /// Creates an empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Registers `name` with the given signature and implementation.
    ///
    /// Re-registering a name replaces the previous definition.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Ty,
        imp: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) {
        self.funcs.insert(
            name.into(),
            Udf {
                params,
                ret,
                imp: Arc::new(imp),
                pure: false,
            },
        );
    }

    /// Registers `name` as a **pure** function: deterministic, total,
    /// and effect-free. Purity is a caller-supplied contract the
    /// optimizer relies on to reorder or duplicate calls (e.g. pushing
    /// a filter past a map whose body calls the function); registering
    /// an effectful function as pure yields plans whose call counts and
    /// call order differ from the naïve evaluation.
    pub fn register_pure(
        &mut self,
        name: impl Into<String>,
        params: Vec<Ty>,
        ret: Ty,
        imp: impl Fn(&[Value]) -> Value + Send + Sync + 'static,
    ) {
        self.funcs.insert(
            name.into(),
            Udf {
                params,
                ret,
                imp: Arc::new(imp),
                pure: true,
            },
        );
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&Udf> {
        self.funcs.get(name)
    }

    /// `true` when `name` is registered and declared pure.
    pub fn is_pure(&self, name: &str) -> bool {
        self.funcs.get(name).is_some_and(|u| u.pure)
    }

    /// The number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// `true` when no functions are registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterates over `(name, udf)` entries in sorted name order.
    ///
    /// The order is deterministic on purpose: iteration feeds
    /// diagnostics, EXPLAIN output, and plan hashing, and the backing
    /// `HashMap`'s arbitrary order would make those flap from run to
    /// run.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Udf)> {
        let mut entries: Vec<(&str, &Udf)> =
            self.funcs.iter().map(|(k, v)| (k.as_str(), v)).collect();
        entries.sort_by_key(|(name, _)| *name);
        entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register("hypot", vec![Ty::F64, Ty::F64], Ty::F64, |args| {
            let a = args[0].as_f64().unwrap();
            let b = args[1].as_f64().unwrap();
            Value::F64(a.hypot(b))
        });
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
        let f = reg.get("hypot").unwrap();
        assert_eq!(f.params, vec![Ty::F64, Ty::F64]);
        let out = (f.imp)(&[Value::F64(3.0), Value::F64(4.0)]);
        assert_eq!(out, Value::F64(5.0));
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn purity_defaults_off_and_is_recorded() {
        let mut reg = UdfRegistry::new();
        reg.register("opaque", vec![Ty::F64], Ty::F64, |args| args[0].clone());
        reg.register_pure("plus1", vec![Ty::I64], Ty::I64, |args| {
            Value::I64(args[0].as_i64().unwrap() + 1)
        });
        assert!(!reg.is_pure("opaque"));
        assert!(reg.is_pure("plus1"));
        assert!(!reg.is_pure("missing"));
        assert_eq!((reg.get("plus1").unwrap().imp)(&[Value::I64(4)]), Value::I64(5));
    }

    #[test]
    fn reregistration_replaces() {
        let mut reg = UdfRegistry::new();
        reg.register("k", vec![], Ty::I64, |_| Value::I64(1));
        reg.register("k", vec![], Ty::I64, |_| Value::I64(2));
        assert_eq!(reg.len(), 1);
        assert_eq!((reg.get("k").unwrap().imp)(&[]), Value::I64(2));
    }

    #[test]
    fn iter_is_sorted_regardless_of_registration_order() {
        // Registration orders chosen to disagree with name order; a
        // HashMap-order iterator would flap between runs (and between
        // the two registries), a sorted one cannot.
        let names = ["zeta", "alpha", "mid", "beta", "omega"];
        let mut fwd = UdfRegistry::new();
        for n in names {
            fwd.register(n, vec![Ty::F64], Ty::F64, |args| args[0].clone());
        }
        let mut rev = UdfRegistry::new();
        for n in names.iter().rev() {
            rev.register(*n, vec![Ty::F64], Ty::F64, |args| args[0].clone());
        }
        let fwd_names: Vec<&str> = fwd.iter().map(|(n, _)| n).collect();
        let rev_names: Vec<&str> = rev.iter().map(|(n, _)| n).collect();
        assert_eq!(fwd_names, vec!["alpha", "beta", "mid", "omega", "zeta"]);
        assert_eq!(fwd_names, rev_names);
    }
}
