/root/repo/target/debug/deps/break_even-c77fde15ea706653.d: crates/bench/src/bin/break_even.rs

/root/repo/target/debug/deps/break_even-c77fde15ea706653: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
