/root/repo/target/debug/deps/steno_vm-0afaf8ba0a36181f.d: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/debug/deps/libsteno_vm-0afaf8ba0a36181f.rlib: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/debug/deps/libsteno_vm-0afaf8ba0a36181f.rmeta: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/interrupt.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

crates/steno-vm/src/lib.rs:
crates/steno-vm/src/batch.rs:
crates/steno-vm/src/compile.rs:
crates/steno-vm/src/fuse.rs:
crates/steno-vm/src/exec.rs:
crates/steno-vm/src/instr.rs:
crates/steno-vm/src/interrupt.rs:
crates/steno-vm/src/kernels.rs:
crates/steno-vm/src/prepared.rs:
crates/steno-vm/src/profile.rs:
crates/steno-vm/src/query.rs:
crates/steno-vm/src/sink.rs:
