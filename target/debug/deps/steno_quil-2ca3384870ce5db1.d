/root/repo/target/debug/deps/steno_quil-2ca3384870ce5db1.d: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

/root/repo/target/debug/deps/steno_quil-2ca3384870ce5db1: crates/steno-quil/src/lib.rs crates/steno-quil/src/grammar.rs crates/steno-quil/src/ir.rs crates/steno-quil/src/lower.rs crates/steno-quil/src/parallel.rs crates/steno-quil/src/passes.rs crates/steno-quil/src/substitute.rs

crates/steno-quil/src/lib.rs:
crates/steno-quil/src/grammar.rs:
crates/steno-quil/src/ir.rs:
crates/steno-quil/src/lower.rs:
crates/steno-quil/src/parallel.rs:
crates/steno-quil/src/passes.rs:
crates/steno-quil/src/substitute.rs:
