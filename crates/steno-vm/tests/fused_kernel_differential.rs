//! Differential corpus for the fused batch kernels.
//!
//! Every pre-monomorphized fused shape in `steno_vm::fuse_kernels` runs
//! three ways and must agree bit-for-bit:
//!
//! * the fused single-pass loop (`run`, the default path when the
//!   planner recognized the tape),
//! * the unfused kernel sequence (`run_profiled` — profiled executions
//!   keep taking the tape precisely so this comparison stays alive),
//! * the scalar interpreter tier (`VectorizationPolicy::Off`).
//!
//! Sizes straddle the batch boundary (1023/1024/1025) so the remainder
//! chunk, the exact-batch case, and the chunk-crossing case all run.
//! Trap parity pins that fusion never changes *which* error a query
//! raises, and a deadline test proves fused loops still poll the
//! interrupt at batch boundaries.

use steno_expr::{Column, DataContext, Expr, UdfRegistry};
use steno_linq::interp;
use steno_query::{Query, QueryExpr};
use steno_vm::query::StenoOptions;
use steno_vm::{CompiledQuery, Interrupt, VectorizationPolicy, VmError};

const SIZES: [usize; 3] = [1023, 1024, 1025];

fn x() -> Expr {
    Expr::var("x")
}

fn scalar_opts() -> StenoOptions {
    StenoOptions {
        vectorize: VectorizationPolicy::Off,
        ..StenoOptions::default()
    }
}

/// Compiles `q` with the default options, asserts the planner attached
/// (or refused) a whole-tape fused kernel, and checks the fused loop,
/// the kernel sequence, and the scalar tier agree bit-for-bit with the
/// interpreter.
#[track_caller]
fn check_shape(q: &QueryExpr, c: &DataContext, expect_fused: Option<&str>) {
    let u = UdfRegistry::new();
    let compiled =
        CompiledQuery::compile(q, c.into(), &u).unwrap_or_else(|e| panic!("compile {q}: {e}"));
    let whole_tape: Vec<&String> = compiled
        .fused_kernels()
        .iter()
        .filter(|k| k.contains("sum("))
        .collect();
    match expect_fused {
        Some(label) => assert_eq!(
            whole_tape,
            vec![label],
            "expected {q} to fuse as {label}; got {:?}",
            compiled.fused_kernels()
        ),
        None => assert!(
            whole_tape.is_empty(),
            "expected {q} to stay on the kernel path; got {whole_tape:?}"
        ),
    }
    let scalar = CompiledQuery::compile_tuned(q, c.into(), &u, scalar_opts())
        .unwrap_or_else(|e| panic!("scalar compile {q}: {e}"));

    let expected = interp::execute(q, c, &u).expect("interpreter failed");
    let fused_v = compiled.run(c, &u).expect("fused run failed");
    let (tape_v, _) = compiled.run_profiled(c, &u).expect("tape run failed");
    let scalar_v = scalar.run(c, &u).expect("scalar run failed");
    assert_eq!(expected.key(), fused_v.key(), "interp vs fused for {q}");
    assert_eq!(fused_v.key(), tape_v.key(), "fused vs kernel tape for {q}");
    assert_eq!(fused_v.key(), scalar_v.key(), "fused vs scalar for {q}");
}

fn f64_ctx(n: usize) -> DataContext {
    let data: Vec<f64> = (0..n)
        .map(|i| ((i as f64) * 0.37 - (n as f64) / 3.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    DataContext::new().with_source("xs", data)
}

fn i64_ctx(n: usize) -> DataContext {
    let data: Vec<i64> = (0..n as i64).map(|i| i * 7 - (n as i64) * 3).collect();
    DataContext::new().with_source("ns", data)
}

// ---------------------------------------------------------------------
// f64 shapes.
// ---------------------------------------------------------------------

#[test]
fn f64_shapes_across_batch_boundary() {
    for &n in &SIZES {
        let c = f64_ctx(n);
        // map-only shapes: identity, square, const·x, x·const, const.
        check_shape(&Query::source("xs").sum().build(), &c, Some("sum(x):f64"));
        check_shape(
            &Query::source("xs").select(x() * x(), "x").sum().build(),
            &c,
            Some("sum(x*x):f64"),
        );
        check_shape(
            &Query::source("xs")
                .select(x() * Expr::litf(2.5), "x")
                .sum()
                .build(),
            &c,
            Some("sum(x*2.5):f64"),
        );
        check_shape(
            &Query::source("xs")
                .select(Expr::litf(2.5) * x(), "x")
                .sum()
                .build(),
            &c,
            Some("sum(2.5*x):f64"),
        );
        // predicated shapes, constant on either comparison side.
        check_shape(
            &Query::source("xs")
                .where_(x().gt(Expr::litf(0.5)), "x")
                .select(x() * Expr::litf(2.0), "x")
                .sum()
                .build(),
            &c,
            Some("filter(x>0.5)·sum(x*2):f64"),
        );
        check_shape(
            &Query::source("xs")
                .where_(Expr::litf(0.5).lt(x()), "x")
                .select(x() * x(), "x")
                .sum()
                .build(),
            &c,
            Some("filter(x>0.5)·sum(x*x):f64"),
        );
        check_shape(
            &Query::source("xs")
                .where_(x().le(Expr::litf(-1.0)), "x")
                .sum()
                .build(),
            &c,
            Some("filter(x<=-1)·sum(x):f64"),
        );
    }
}

// ---------------------------------------------------------------------
// i64 shapes.
// ---------------------------------------------------------------------

#[test]
fn i64_shapes_across_batch_boundary() {
    for &n in &SIZES {
        let c = i64_ctx(n);
        check_shape(&Query::source("ns").sum().build(), &c, Some("sum(x):i64"));
        check_shape(
            &Query::source("ns").select(x() * x(), "x").sum().build(),
            &c,
            Some("sum(x*x):i64"),
        );
        check_shape(
            &Query::source("ns")
                .select(x() * Expr::liti(5), "x")
                .sum()
                .build(),
            &c,
            Some("sum(x*5):i64"),
        );
        check_shape(
            &Query::source("ns")
                .select(Expr::liti(3) * x() + Expr::liti(1), "x")
                .sum()
                .build(),
            &c,
            Some("sum(3*x+1):i64"),
        );
        // Comparison predicate.
        check_shape(
            &Query::source("ns")
                .where_(x().gt(Expr::liti(10)), "x")
                .select(x() * x(), "x")
                .sum()
                .build(),
            &c,
            Some("filter(x>10)·sum(x*x):i64"),
        );
        // Remainder predicates: the pre-monomorphized moduli and the
        // runtime-dispatch fallback, eq and ne both.
        for m in [2i64, 3, 4, 5, 7] {
            check_shape(
                &Query::source("ns")
                    .where_((x() % Expr::liti(m)).eq(Expr::liti(0)), "x")
                    .select(x() * x(), "x")
                    .sum()
                    .build(),
                &c,
                Some(&format!("filter(x%{m}==0)·sum(x*x):i64")),
            );
            check_shape(
                &Query::source("ns")
                    .where_((x() % Expr::liti(m)).ne(Expr::liti(0)), "x")
                    .sum()
                    .build(),
                &c,
                Some(&format!("filter(x%{m}!=0)·sum(x):i64")),
            );
        }
    }
}

/// The guarded-division select shape (`x % m == r ? x / d : a*x + b`):
/// the pre-monomorphized (m, d) pairs and the runtime fallback.
#[test]
fn guarded_div_select_shapes() {
    let collatz = |m: i64, d: i64| {
        Query::source("ns")
            .select(
                Expr::if_(
                    (x() % Expr::liti(m)).eq(Expr::liti(0)),
                    x() / Expr::liti(d),
                    Expr::liti(3) * x() + Expr::liti(1),
                ),
                "x",
            )
            .sum_by(Expr::var("y"), "y")
            .build()
    };
    for &n in &SIZES {
        // Positive data so range analysis proves both divisors non-zero
        // (the admission condition for the unchecked-div tape).
        let c = DataContext::new()
            .with_source("ns", (1..=n as i64).collect::<Vec<i64>>());
        for (m, d) in [(2i64, 2i64), (2, 4), (3, 3), (5, 3)] {
            check_shape(
                &collatz(m, d),
                &c,
                Some(&format!("sum(x%{m}==0 ? x/{d} : 3*x+1):i64")),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Trap parity.
// ---------------------------------------------------------------------

/// Checked integer division (divisor not provably non-zero) must refuse
/// whole-tape fusion and raise the identical `DivisionByZero` on every
/// tier.
#[test]
fn checked_division_trap_parity() {
    let u = UdfRegistry::new();
    let data: Vec<i64> = (0..1500).map(|i| i % 5).collect();
    let c = DataContext::new().with_source("ns", data);
    let q = Query::source("ns")
        .select(Expr::liti(60) / x(), "x")
        .sum()
        .build();
    let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile");
    assert!(
        !compiled.fused_kernels().iter().any(|k| k.contains("sum(")),
        "checked division must stay on the kernel path: {:?}",
        compiled.fused_kernels()
    );
    let scalar =
        CompiledQuery::compile_tuned(&q, (&c).into(), &u, scalar_opts()).expect("compile scalar");
    assert_eq!(compiled.run(&c, &u), Err(VmError::DivisionByZero));
    assert_eq!(
        compiled.run_profiled(&c, &u).map(|(v, _)| v),
        Err(VmError::DivisionByZero)
    );
    assert_eq!(scalar.run(&c, &u), Err(VmError::DivisionByZero));
}

/// Row indexing runs on the scalar tier (the vectorizer refuses it), so
/// this pins that superinstruction threading preserves the exact
/// out-of-bounds trap.
#[test]
fn index_trap_parity_under_threaded_dispatch() {
    let u = UdfRegistry::new();
    let c = DataContext::new().with_source(
        "pts",
        Column::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3),
    );
    let q = Query::source("pts")
        .select(Expr::var("p").row_index(Expr::liti(9)), "p")
        .sum()
        .build();
    let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile");
    let scalar =
        CompiledQuery::compile_tuned(&q, (&c).into(), &u, scalar_opts()).expect("compile scalar");
    let expected = Err(VmError::IndexOutOfBounds { index: 9, len: 3 });
    assert_eq!(compiled.run(&c, &u), expected);
    assert_eq!(scalar.run(&c, &u), expected);
}

// ---------------------------------------------------------------------
// Interrupt polling inside fused loops.
// ---------------------------------------------------------------------

/// A fused single-pass loop must still honor deadlines at batch
/// boundaries — the POLL_STRIDE contract survives kernel fusion.
#[test]
fn fused_loop_polls_deadline() {
    let u = UdfRegistry::new();
    let data: Vec<f64> = (0..200_000).map(|i| i as f64 * 0.001).collect();
    let c = DataContext::new().with_source("xs", data);
    let q = Query::source("xs")
        .select(x() * x(), "x")
        .sum()
        .build();
    let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile");
    assert!(
        compiled.fused_kernels().iter().any(|k| k.contains("sum(")),
        "the workload must take the fused path for this test to bite"
    );
    let expired = Interrupt::none()
        .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
    assert_eq!(
        compiled.run_with(&c, &u, &expired),
        Err(VmError::DeadlineExceeded)
    );
    // And an inert interrupt still completes.
    compiled.run_with(&c, &u, &Interrupt::none()).expect("inert run");
}
