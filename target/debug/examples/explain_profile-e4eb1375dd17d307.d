/root/repo/target/debug/examples/explain_profile-e4eb1375dd17d307.d: examples/explain_profile.rs

/root/repo/target/debug/examples/explain_profile-e4eb1375dd17d307: examples/explain_profile.rs

examples/explain_profile.rs:
