/root/repo/target/debug/deps/steno_repro-7b6c8f2a05a58908.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/steno_repro-7b6c8f2a05a58908: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
