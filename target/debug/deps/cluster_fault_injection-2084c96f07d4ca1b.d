/root/repo/target/debug/deps/cluster_fault_injection-2084c96f07d4ca1b.d: crates/steno-cluster/tests/cluster_fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libcluster_fault_injection-2084c96f07d4ca1b.rmeta: crates/steno-cluster/tests/cluster_fault_injection.rs Cargo.toml

crates/steno-cluster/tests/cluster_fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
