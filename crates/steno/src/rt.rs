//! Runtime support types for `steno!`-generated code.
//!
//! The paper's generated C# calls into small utility classes — notably
//! the `Lookup<K, T>` multimap of Fig. 7(b). Code emitted by the
//! [`steno!`](crate::steno) macro does the same: grouping sinks become a
//! [`Lookup`] or (after the §4.3 specialization) a [`GroupAggTable`].
//! Keys include `f64`, which is not `Hash`, so hashing goes through the
//! [`SinkKey`] trait (bit-pattern identity, matching the VM's behaviour).

use std::collections::HashMap;
use std::hash::Hash;

/// A value usable as a grouping key in generated code.
pub trait SinkKey: Clone {
    /// The hashable image of the key.
    type Hashed: Eq + Hash;

    /// Converts to the hashable image. For floats this is the bit
    /// pattern, so `-0.0` and `0.0` are distinct keys and `NaN` equals
    /// itself — the same convention as the Steno VM.
    fn hashed(&self) -> Self::Hashed;
}

impl SinkKey for f64 {
    type Hashed = u64;
    fn hashed(&self) -> u64 {
        self.to_bits()
    }
}

impl SinkKey for i64 {
    type Hashed = i64;
    fn hashed(&self) -> i64 {
        *self
    }
}

impl SinkKey for bool {
    type Hashed = bool;
    fn hashed(&self) -> bool {
        *self
    }
}

impl<A: SinkKey, B: SinkKey> SinkKey for (A, B) {
    type Hashed = (A::Hashed, B::Hashed);
    fn hashed(&self) -> Self::Hashed {
        (self.0.hashed(), self.1.hashed())
    }
}

/// The key → bag multimap of Fig. 7(b), for generated `GroupBy` code.
///
/// Groups iterate in key first-appearance order, matching LINQ.
#[derive(Clone, Debug, Default)]
pub struct Lookup<K: SinkKey, V> {
    index: HashMap<K::Hashed, usize>,
    entries: Vec<(K, Vec<V>)>,
}

impl<K: SinkKey, V: Clone> Lookup<K, V> {
    /// Creates an empty lookup.
    pub fn new() -> Lookup<K, V> {
        Lookup {
            index: HashMap::new(),
            entries: Vec::new(),
        }
    }

    /// The `Put` of Fig. 7(b): adds and returns the updated collection,
    /// so generated code can write `sink = sink.put(key, elem);`.
    #[must_use = "put returns the updated collection"]
    pub fn put(mut self, key: K, value: V) -> Lookup<K, V> {
        self.add(key, value);
        self
    }

    /// Appends `value` to the bag for `key`.
    pub fn add(&mut self, key: K, value: V) {
        match self.index.get(&key.hashed()) {
            Some(&slot) => self.entries[slot].1.push(value),
            None => {
                self.index.insert(key.hashed(), self.entries.len());
                self.entries.push((key, vec![value]));
            }
        }
    }

    /// The number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, bag)` pairs by value, in first-appearance order —
    /// the shape the generated sink-iteration loop expects.
    pub fn iter(&self) -> impl Iterator<Item = (K, Vec<V>)> + '_ {
        self.entries.iter().map(|(k, vs)| (k.clone(), vs.clone()))
    }
}

/// The specialized per-key partial-aggregate table of §4.3, for generated
/// `GroupByAggregate` code: stores one accumulator per key instead of the
/// group's bag of values.
#[derive(Clone, Debug)]
pub struct GroupAggTable<K: SinkKey, A: Clone> {
    index: HashMap<K::Hashed, usize>,
    entries: Vec<(K, A)>,
    default: A,
}

impl<K: SinkKey, A: Clone> GroupAggTable<K, A> {
    /// Creates a table whose fresh keys start from `default` (the fold
    /// seed).
    pub fn new(default: A) -> GroupAggTable<K, A> {
        GroupAggTable {
            index: HashMap::new(),
            entries: Vec::new(),
            default,
        }
    }

    /// Folds one element into `key`'s accumulator:
    /// `acc[key] = f(acc[key])`.
    pub fn update(&mut self, key: K, f: impl FnOnce(A) -> A) {
        let slot = match self.index.get(&key.hashed()) {
            Some(&slot) => slot,
            None => {
                self.index.insert(key.hashed(), self.entries.len());
                self.entries.push((key, self.default.clone()));
                self.entries.len() - 1
            }
        };
        let acc = self.entries[slot].1.clone();
        self.entries[slot].1 = f(acc);
    }

    /// The number of distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(key, accumulator)` pairs by value, in first-appearance
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (K, A)> + '_ {
        self.entries.iter().map(|(k, a)| (k.clone(), a.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_fig_7b_usage() {
        let mut sink = Lookup::new();
        for x in [1i64, 2, 3, 4, 5] {
            sink = sink.put(x % 2, x);
        }
        let groups: Vec<(i64, Vec<i64>)> = sink.iter().collect();
        assert_eq!(groups, vec![(1, vec![1, 3, 5]), (0, vec![2, 4])]);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn float_keys_hash_by_bits() {
        let mut sink: Lookup<f64, i64> = Lookup::new();
        sink.add(0.0, 1);
        sink.add(-0.0, 2);
        sink.add(f64::NAN, 3);
        sink.add(f64::NAN, 4);
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn group_agg_table_folds_per_key() {
        let mut t: GroupAggTable<i64, f64> = GroupAggTable::new(0.0);
        for (k, v) in [(0, 1.0), (1, 2.0), (0, 3.0)] {
            t.update(k, |acc| acc + v);
        }
        let rows: Vec<(i64, f64)> = t.iter().collect();
        assert_eq!(rows, vec![(0, 4.0), (1, 2.0)]);
        assert!(!t.is_empty());
    }

    #[test]
    fn pair_keys_compose() {
        let mut t: GroupAggTable<(i64, bool), i64> = GroupAggTable::new(0);
        t.update((1, true), |a| a + 1);
        t.update((1, false), |a| a + 1);
        t.update((1, true), |a| a + 1);
        assert_eq!(t.len(), 2);
    }
}
