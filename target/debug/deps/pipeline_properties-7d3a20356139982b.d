/root/repo/target/debug/deps/pipeline_properties-7d3a20356139982b.d: tests/pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_properties-7d3a20356139982b.rmeta: tests/pipeline_properties.rs Cargo.toml

tests/pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
