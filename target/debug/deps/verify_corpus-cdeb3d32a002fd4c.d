/root/repo/target/debug/deps/verify_corpus-cdeb3d32a002fd4c.d: tests/verify_corpus.rs

/root/repo/target/debug/deps/verify_corpus-cdeb3d32a002fd4c: tests/verify_corpus.rs

tests/verify_corpus.rs:
