/root/repo/target/debug/deps/steno-58f7ce48610e0426.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-58f7ce48610e0426.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-58f7ce48610e0426.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
