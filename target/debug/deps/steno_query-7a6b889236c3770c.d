/root/repo/target/debug/deps/steno_query-7a6b889236c3770c.d: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_query-7a6b889236c3770c.rmeta: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs Cargo.toml

crates/steno-query/src/lib.rs:
crates/steno-query/src/ast.rs:
crates/steno-query/src/builder.rs:
crates/steno-query/src/typing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
