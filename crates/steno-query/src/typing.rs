//! Element-type inference along a query chain.
//!
//! The paper relies on the C# compiler having already type-checked the
//! query (§4.1); this module recreates that information for runtime-built
//! ASTs. Its verdicts drive type-specialized code generation in the Steno
//! VM and catch malformed queries before optimization.

use std::collections::HashMap;

use steno_expr::typecheck::{infer, TyEnv};
use steno_expr::{DataContext, Expr, Ty, TypeError, UdfRegistry};

use crate::ast::{AggOp, QBody, QFn, QueryExpr, SourceRef};

/// Element types of the named sources a query may reference.
#[derive(Clone, Debug, Default)]
pub struct SourceTypes {
    types: HashMap<String, Ty>,
}

impl SourceTypes {
    /// Creates an empty mapping.
    pub fn new() -> SourceTypes {
        SourceTypes::default()
    }

    /// Declares the element type of source `name`, for chaining.
    pub fn with(mut self, name: impl Into<String>, ty: Ty) -> SourceTypes {
        self.types.insert(name.into(), ty);
        self
    }

    /// Declares the element type of source `name`.
    pub fn insert(&mut self, name: impl Into<String>, ty: Ty) {
        self.types.insert(name.into(), ty);
    }

    /// Looks up the element type of `name`.
    pub fn get(&self, name: &str) -> Option<&Ty> {
        self.types.get(name)
    }
}

impl From<&DataContext> for SourceTypes {
    fn from(ctx: &DataContext) -> SourceTypes {
        let mut s = SourceTypes::new();
        for (name, col) in ctx.iter() {
            s.insert(name, col.elem_ty());
        }
        s
    }
}

/// The type of a whole query: a sequence of elements, or a scalar when the
/// query ends in an aggregate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryTy {
    /// The query yields a sequence with this element type.
    Seq(Ty),
    /// The query yields a single value of this type.
    Scalar(Ty),
}

impl QueryTy {
    /// The element type, for sequence-valued queries.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            QueryTy::Seq(t) => Some(t),
            QueryTy::Scalar(_) => None,
        }
    }

    /// Converts to the [`Ty`] of the query result as a value.
    pub fn to_ty(&self) -> Ty {
        match self {
            QueryTy::Seq(t) => Ty::seq(t.clone()),
            QueryTy::Scalar(t) => t.clone(),
        }
    }
}

fn mismatch(context: &str, expected: &str, found: Ty) -> TypeError {
    TypeError::Mismatch {
        context: context.into(),
        expected: expected.into(),
        found,
    }
}

/// Infers the type of the body of a unary operator function, given the
/// parameter type. Nested query bodies are typed recursively with the
/// parameter in scope (§5.2's free outer variable).
///
/// # Errors
///
/// Propagates [`TypeError`]s from the body.
pub fn fn_body_ty(
    f: &QFn,
    param_ty: &Ty,
    sources: &SourceTypes,
    env: &TyEnv,
    udfs: &UdfRegistry,
) -> Result<QueryTy, TypeError> {
    let mut inner = env.clone();
    inner.bind(f.param.clone(), param_ty.clone());
    match &f.body {
        QBody::Expr(e) => Ok(QueryTy::Scalar(infer(e, &inner, udfs)?)),
        QBody::Query(q) => query_ty(q, sources, &inner, udfs),
    }
}

/// Infers the overall type of a query.
///
/// `env` holds the outer-scope variables visible to the query (non-empty
/// for nested queries).
///
/// # Errors
///
/// Returns the first [`TypeError`] found: unknown sources, ill-typed
/// operator functions, aggregates over non-numeric elements, and so on.
pub fn query_ty(
    q: &QueryExpr,
    sources: &SourceTypes,
    env: &TyEnv,
    udfs: &UdfRegistry,
) -> Result<QueryTy, TypeError> {
    match q {
        QueryExpr::Source(s) => match s {
            SourceRef::Named(name) => sources
                .get(name)
                .map(|t| QueryTy::Seq(t.clone()))
                .ok_or_else(|| TypeError::UnboundVariable(format!("source `{name}`"))),
            SourceRef::Range { .. } => Ok(QueryTy::Seq(Ty::I64)),
            SourceRef::Repeat { value, .. } => Ok(QueryTy::Seq(value.ty())),
            SourceRef::Expr(e) => match infer(e, env, udfs)? {
                Ty::Seq(t) => Ok(QueryTy::Seq(*t)),
                // Iterating a point yields its coordinates.
                Ty::Row => Ok(QueryTy::Seq(Ty::F64)),
                other => Err(mismatch("query source", "sequence", other)),
            },
        },
        QueryExpr::Select { input, f } => {
            let elem = elem_ty(input, sources, env, udfs)?;
            Ok(QueryTy::Seq(
                fn_body_ty(f, &elem, sources, env, udfs)?.to_ty(),
            ))
        }
        QueryExpr::Where { input, p } => {
            let elem = elem_ty(input, sources, env, udfs)?;
            let pt = fn_body_ty(p, &elem, sources, env, udfs)?;
            match pt {
                QueryTy::Scalar(Ty::Bool) => Ok(QueryTy::Seq(elem)),
                other => Err(mismatch("Where predicate", "bool", other.to_ty())),
            }
        }
        QueryExpr::SelectMany { input, f } => {
            let elem = elem_ty(input, sources, env, udfs)?;
            match fn_body_ty(f, &elem, sources, env, udfs)? {
                QueryTy::Seq(u) => Ok(QueryTy::Seq(u)),
                QueryTy::Scalar(Ty::Seq(u)) => Ok(QueryTy::Seq(*u)),
                QueryTy::Scalar(Ty::Row) => Ok(QueryTy::Seq(Ty::F64)),
                other => Err(mismatch("SelectMany selector", "sequence", other.to_ty())),
            }
        }
        QueryExpr::Take { input, .. } | QueryExpr::Skip { input, .. } => {
            Ok(QueryTy::Seq(elem_ty(input, sources, env, udfs)?))
        }
        QueryExpr::TakeWhile { input, p } | QueryExpr::SkipWhile { input, p } => {
            let elem = elem_ty(input, sources, env, udfs)?;
            match fn_body_ty(p, &elem, sources, env, udfs)? {
                QueryTy::Scalar(Ty::Bool) => Ok(QueryTy::Seq(elem)),
                other => Err(mismatch("While predicate", "bool", other.to_ty())),
            }
        }
        QueryExpr::GroupBy {
            input,
            key,
            elem,
            result,
        } => {
            let in_elem = elem_ty(input, sources, env, udfs)?;
            let key_ty = fn_body_ty(key, &in_elem, sources, env, udfs)?.to_ty();
            let val_ty = match elem {
                Some(sel) => fn_body_ty(sel, &in_elem, sources, env, udfs)?.to_ty(),
                None => in_elem,
            };
            match result {
                None => Ok(QueryTy::Seq(Ty::pair(key_ty, Ty::seq(val_ty)))),
                Some(r) => {
                    // Type the aggregation query with the group in scope,
                    // then the result expression with key and aggregate.
                    let mut genv = env.clone();
                    genv.bind(r.group_param.clone(), Ty::seq(val_ty));
                    let agg_ty = match query_ty(&r.agg_query, sources, &genv, udfs)? {
                        QueryTy::Scalar(t) => t,
                        QueryTy::Seq(t) => {
                            return Err(mismatch(
                                "GroupBy result selector aggregation",
                                "scalar query",
                                Ty::seq(t),
                            ))
                        }
                    };
                    let mut renv = env.clone();
                    renv.bind(r.key_param.clone(), key_ty);
                    renv.bind(r.agg_param.clone(), agg_ty);
                    Ok(QueryTy::Seq(infer(&r.result, &renv, udfs)?))
                }
            }
        }
        QueryExpr::OrderBy { input, key, .. } => {
            let elem = elem_ty(input, sources, env, udfs)?;
            // Any key type is permitted: values carry a total order.
            let _ = fn_body_ty(key, &elem, sources, env, udfs)?;
            Ok(QueryTy::Seq(elem))
        }
        QueryExpr::Distinct { input } | QueryExpr::ToVec { input } => {
            Ok(QueryTy::Seq(elem_ty(input, sources, env, udfs)?))
        }
        QueryExpr::Join { .. } => {
            // Type the canonical §5 rewrite. Joins whose key selectors are
            // nested queries do not canonicalize and are rejected.
            let canon = q.clone().canonicalize();
            if matches!(canon, QueryExpr::Join { .. }) {
                return Err(TypeError::Mismatch {
                    context: "Join key selector".into(),
                    expected: "expression-bodied selector".into(),
                    found: Ty::Bool,
                });
            }
            query_ty(&canon, sources, env, udfs)
        }
        QueryExpr::Concat { input, other } => {
            let a = elem_ty(input, sources, env, udfs)?;
            let b = elem_ty(other, sources, env, udfs)?;
            if a != b {
                return Err(mismatch("Concat operands", &a.to_string(), b));
            }
            Ok(QueryTy::Seq(a))
        }
        QueryExpr::Aggregate {
            input,
            seed,
            func,
            combine,
        } => {
            let elem = elem_ty(input, sources, env, udfs)?;
            let acc_ty = infer(seed, env, udfs)?;
            let mut inner = env.clone();
            inner.bind(func.param0.clone(), acc_ty.clone());
            inner.bind(func.param1.clone(), elem);
            let body_ty = infer(&func.body, &inner, udfs)?;
            if body_ty != acc_ty {
                return Err(mismatch("Aggregate function", &acc_ty.to_string(), body_ty));
            }
            if let Some(c) = combine {
                let mut cenv = env.clone();
                cenv.bind(c.param0.clone(), acc_ty.clone());
                cenv.bind(c.param1.clone(), acc_ty.clone());
                let ct = infer(&c.body, &cenv, udfs)?;
                if ct != acc_ty {
                    return Err(mismatch("Aggregate combiner", &acc_ty.to_string(), ct));
                }
            }
            Ok(QueryTy::Scalar(acc_ty))
        }
        QueryExpr::Agg { input, op, f } => {
            debug_assert!(f.is_none(), "shorthand aggregates are canonicalized away");
            let elem = elem_ty(input, sources, env, udfs)?;
            match op {
                AggOp::Sum | AggOp::Min | AggOp::Max => {
                    if elem.is_numeric() {
                        Ok(QueryTy::Scalar(elem))
                    } else {
                        Err(mismatch(op.method_name(), "numeric element", elem))
                    }
                }
                AggOp::Count => Ok(QueryTy::Scalar(Ty::I64)),
                AggOp::Average => {
                    if elem.is_numeric() {
                        Ok(QueryTy::Scalar(Ty::F64))
                    } else {
                        Err(mismatch("Average", "numeric element", elem))
                    }
                }
                AggOp::Any => Ok(QueryTy::Scalar(Ty::Bool)),
                AggOp::All => {
                    if elem == Ty::Bool {
                        Ok(QueryTy::Scalar(Ty::Bool))
                    } else {
                        Err(mismatch("All", "bool element", elem))
                    }
                }
                AggOp::First => Ok(QueryTy::Scalar(elem)),
            }
        }
    }
}

/// Infers the element type of a sequence-valued query.
///
/// # Errors
///
/// Returns a [`TypeError`] if the query is scalar-valued or ill-typed.
pub fn elem_ty(
    q: &QueryExpr,
    sources: &SourceTypes,
    env: &TyEnv,
    udfs: &UdfRegistry,
) -> Result<Ty, TypeError> {
    match query_ty(q, sources, env, udfs)? {
        QueryTy::Seq(t) => Ok(t),
        QueryTy::Scalar(t) => Err(mismatch("operator input", "sequence", t)),
    }
}

/// Convenience wrapper: types a query that only references named sources
/// (no enclosing scope).
///
/// # Errors
///
/// As [`query_ty`].
pub fn check(
    q: &QueryExpr,
    sources: &SourceTypes,
    udfs: &UdfRegistry,
) -> Result<QueryTy, TypeError> {
    query_ty(q, sources, &TyEnv::new(), udfs)
}

/// Types a query against the sources of a [`DataContext`].
///
/// # Errors
///
/// As [`query_ty`].
pub fn check_with_context(
    q: &QueryExpr,
    ctx: &DataContext,
    udfs: &UdfRegistry,
) -> Result<QueryTy, TypeError> {
    check(q, &SourceTypes::from(ctx), udfs)
}

/// Helper used by lowering: the type of an expression in an environment.
///
/// # Errors
///
/// As [`steno_expr::typecheck::infer`].
pub fn expr_ty(e: &Expr, env: &TyEnv, udfs: &UdfRegistry) -> Result<Ty, TypeError> {
    infer(e, env, udfs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Query;
    use steno_expr::Expr;

    fn srcs() -> SourceTypes {
        SourceTypes::new()
            .with("xs", Ty::F64)
            .with("ns", Ty::I64)
            .with("points", Ty::Row)
    }

    #[test]
    fn sum_of_squares_types() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Scalar(Ty::F64))
        );
    }

    #[test]
    fn filter_preserves_element_type() {
        let q = Query::source("ns")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Seq(Ty::I64))
        );
    }

    #[test]
    fn group_by_yields_key_group_pairs() {
        let q = Query::source("xs")
            .group_by(Expr::var("x").floor(), "x")
            .build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Seq(Ty::pair(Ty::F64, Ty::seq(Ty::F64))))
        );
    }

    #[test]
    fn nested_query_sees_outer_variable() {
        // xs.SelectMany(x => ns.Select(n => x * (n as f64)))
        let q = Query::source("xs")
            .select_many(
                Query::source("ns")
                    .select(Expr::var("x") * Expr::var("n").cast(Ty::F64), "n"),
                "x",
            )
            .build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Seq(Ty::F64))
        );
    }

    #[test]
    fn nested_aggregate_in_select() {
        // points.Select(p => xs.Sum()) : seq<f64>
        let q = Query::source("points")
            .select_query(Query::source("xs").sum(), "p")
            .build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Seq(Ty::F64))
        );
    }

    #[test]
    fn errors_are_reported() {
        // Sum over rows is ill-typed.
        let q = Query::source("points").sum().build();
        assert!(check(&q, &srcs(), &UdfRegistry::new()).is_err());
        // Unknown source.
        let q = Query::source("zzz").count().build();
        assert!(check(&q, &srcs(), &UdfRegistry::new()).is_err());
        // Where predicate must be boolean.
        let q = Query::source("xs")
            .where_(Expr::var("x") + Expr::litf(1.0), "x")
            .build();
        assert!(check(&q, &srcs(), &UdfRegistry::new()).is_err());
        // Aggregate body must match the seed type.
        let q = Query::source("xs")
            .aggregate(Expr::liti(0), "a", "x", Expr::var("x"), )
            .build();
        assert!(check(&q, &srcs(), &UdfRegistry::new()).is_err());
    }

    #[test]
    fn source_expr_over_group_contents() {
        // A nested query over `kv.1` where kv : (f64, seq<f64>).
        let env = TyEnv::new().with("kv", Ty::pair(Ty::F64, Ty::seq(Ty::F64)));
        let q = Query::over(Expr::var("kv").field(1)).count().build();
        assert_eq!(
            query_ty(&q, &srcs(), &env, &UdfRegistry::new()),
            Ok(QueryTy::Scalar(Ty::I64))
        );
    }

    #[test]
    fn all_requires_bool_elements() {
        let q = Query::source("xs")
            .all_by(Expr::var("x").ge(Expr::litf(0.0)), "x")
            .build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Scalar(Ty::Bool))
        );
    }

    #[test]
    fn concat_requires_matching_elements() {
        let q = Query::source("xs").concat(Query::source("ns")).build();
        assert!(check(&q, &srcs(), &UdfRegistry::new()).is_err());
        let q = Query::source("xs").concat(Query::source("xs")).build();
        assert_eq!(
            check(&q, &srcs(), &UdfRegistry::new()),
            Ok(QueryTy::Seq(Ty::F64))
        );
    }
}
