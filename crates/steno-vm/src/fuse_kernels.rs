//! Batch-kernel fusion: collapsing a whole vectorized tape into a
//! single-pass fused kernel.
//!
//! The vectorized tier ([`crate::batch`]) executes a loop as a *sequence*
//! of per-batch kernel calls, each reading and writing full 1024-lane
//! intermediate columns. For short arithmetic pipelines that column
//! traffic dominates: `int_mult3_sumsq` spends most of its time moving
//! remainders and squares through L1 that a hand-written loop would keep
//! in registers. This pass recovers the per-element expression a tape
//! computes and, when it matches one of a small set of **pre-monomorphized
//! fused shapes**, replaces the whole tape with a single-pass kernel —
//! the loop a programmer would write by hand, down to strength-reduced
//! division by small constants.
//!
//! Two layers, per the classic fusion playbook:
//!
//! 1. [`plan`] — whole-tape fusion. A symbolic walk re-derives what each
//!    slot holds (`x`, `x*x`, `x % m`, `a*x + b`, …) and matches the
//!    filter/map/reduce structure against [`FusedTape`]. Only shapes with
//!    a monomorphized kernel fuse; everything else keeps the kernel
//!    sequence (no generic interpreter that could be *slower* than the
//!    columns it replaces).
//! 2. [`peephole`] — the generic two-op fallback. Adjacent
//!    multiply→add and multiply→reduce pairs over the same selection
//!    vector fuse into [`BOp::MulAddF`]-family superkernels, eliminating
//!    one intermediate column each even when the whole tape does not
//!    match a shape.
//!
//! # Bit-for-bit and trap parity
//!
//! Fused kernels preserve the differential guarantees the batch tier
//! already makes:
//!
//! * element order is unchanged (one sequential pass, accumulating into
//!   the same scalar), so floating-point folds stay bit-identical;
//! * f64 operand order is preserved exactly — `x * k` and `k * x` fuse
//!   to *different* kernels — and no reassociation is introduced;
//! * integer ops stay wrapping, matching the scalar VM;
//! * trapping (checked) integer division never fuses: a checked
//!   `DivI`/`RemI` in the tape disqualifies the loop, so the lane-exact
//!   fault semantics of [`crate::kernels::check_divisors`] always run on
//!   the kernel-sequence path. Unchecked division (interval analysis
//!   proved the divisor non-zero) fuses freely.
//!
//! Fused kernels poll the [`Interrupt`] once per [`BATCH`] elements —
//! the same cooperative-cancellation granularity as the unfused tape
//! (the POLL_STRIDE contract from the service layer).

use crate::batch::{BInit, BOp, BatchData, BatchProgram, Lane, BATCH};
use crate::exec::VmError;
use crate::interrupt::Interrupt;

// ---------------------------------------------------------------------
// Fused-shape descriptors.
// ---------------------------------------------------------------------

/// A loop-invariant f64 operand: a literal or an entry-time parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalF {
    /// A compile-time constant.
    Lit(f64),
    /// Index into the loop's f64 parameter snapshot.
    Param(u8),
}

impl ScalF {
    #[inline]
    fn get(self, params: &[f64]) -> f64 {
        match self {
            ScalF::Lit(v) => v,
            ScalF::Param(p) => params[p as usize],
        }
    }

    fn name(self) -> String {
        match self {
            ScalF::Lit(v) => format!("{v}"),
            ScalF::Param(p) => format!("p{p}"),
        }
    }
}

/// A loop-invariant i64 operand: a literal or an entry-time parameter.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalI {
    /// A compile-time constant.
    Lit(i64),
    /// Index into the loop's i64 parameter snapshot.
    Param(u8),
}

impl ScalI {
    #[inline]
    fn get(self, params: &[i64]) -> i64 {
        match self {
            ScalI::Lit(v) => v,
            ScalI::Param(p) => params[p as usize],
        }
    }

    fn name(self) -> String {
        match self {
            ScalI::Lit(v) => format!("{v}"),
            ScalI::Param(p) => format!("p{p}"),
        }
    }
}

/// A comparison operator in a fused predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpK {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpK {
    /// The operator with its operands swapped (`a < b` ⇔ `b > a`) —
    /// exact for both lanes, used to normalize `const OP x` to
    /// `x OP' const`.
    fn flipped(self) -> CmpK {
        match self {
            CmpK::Eq => CmpK::Eq,
            CmpK::Ne => CmpK::Ne,
            CmpK::Lt => CmpK::Gt,
            CmpK::Le => CmpK::Ge,
            CmpK::Gt => CmpK::Lt,
            CmpK::Ge => CmpK::Le,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpK::Eq => "==",
            CmpK::Ne => "!=",
            CmpK::Lt => "<",
            CmpK::Le => "<=",
            CmpK::Gt => ">",
            CmpK::Ge => ">=",
        }
    }
}

/// The per-element map of a fused f64 loop. Operand order is part of
/// the shape: `x * k` and `k * x` are distinct (no f64 commutation).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MapF {
    /// `x`
    X,
    /// `x * x`
    Sq,
    /// `x * k`
    MulKR(ScalF),
    /// `k * x`
    MulKL(ScalF),
    /// the constant `k` (a filtered count-by-weight)
    K(ScalF),
}

/// The per-element map of a fused i64 loop (wrapping arithmetic, so
/// operand order is normalized away).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MapI {
    /// `x`
    X,
    /// `x * x`
    Sq,
    /// `x * k`
    MulK(ScalI),
    /// `a * x + b`
    Lin(ScalI, ScalI),
    /// the constant `k`
    K(ScalI),
}

/// The predicate of a fused i64 loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PredI {
    /// `x OP c`
    Cmp(CmpK, ScalI),
    /// `(x % m) == r`, or `!=` when `ne` — the guard of every
    /// divisibility filter. `%` here is the *unchecked* remainder: the
    /// compiler only emits it under an interval proof that `m` is
    /// non-zero.
    RemCmp {
        /// The modulus.
        m: ScalI,
        /// The compared remainder.
        r: ScalI,
        /// `!=` instead of `==`.
        ne: bool,
    },
}

/// Which extremum a fused fold computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldKind {
    /// `min`
    Min,
    /// `max`
    Max,
}

impl FoldKind {
    fn name(self) -> &'static str {
        match self {
            FoldKind::Min => "min",
            FoldKind::Max => "max",
        }
    }
}

/// A whole-loop fused kernel: filter → map → reduce collapsed into one
/// sequential pass; `acc` indexes the loop's accumulator snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum FusedTape {
    /// f64: `for x { if pred(x) { acc += map(x) } }`.
    SumF {
        /// Optional `x OP c` guard.
        pred: Option<(CmpK, ScalF)>,
        /// The summed expression.
        map: MapF,
        /// f64 accumulator index.
        acc: u8,
    },
    /// i64: `for x { if pred(x) { acc = acc.wrapping_add(map(x)) } }`.
    SumI {
        /// Optional guard.
        pred: Option<PredI>,
        /// The summed expression.
        map: MapI,
        /// i64 accumulator index.
        acc: u8,
    },
    /// f64: `for x { if pred(x) { acc = min/max(acc, map(x)) } }` — the
    /// accumulator stays the left operand, exactly like the
    /// [`crate::kernels::fold`] it replaces.
    FoldF {
        /// Min or max.
        kind: FoldKind,
        /// Optional `x OP c` guard.
        pred: Option<(CmpK, ScalF)>,
        /// The folded expression.
        map: MapF,
        /// f64 accumulator index.
        acc: u8,
    },
    /// i64: the integer twin of [`FusedTape::FoldF`].
    FoldI {
        /// Min or max.
        kind: FoldKind,
        /// Optional guard.
        pred: Option<PredI>,
        /// The folded expression.
        map: MapI,
        /// i64 accumulator index.
        acc: u8,
    },
    /// i64: `acc += if x % m == r { x / d } else { a*x + b }` — the
    /// guarded-division ("Collatz step") shape. All operands are
    /// literals so division by small constants strength-reduces.
    SelRemDivLinI {
        /// Modulus of the guard.
        m: i64,
        /// Compared remainder.
        r: i64,
        /// Divisor of the then-branch.
        d: i64,
        /// Multiplier of the else-branch.
        a: i64,
        /// Addend of the else-branch.
        b: i64,
        /// i64 accumulator index.
        acc: u8,
    },
}

impl FusedTape {
    /// A stable human-readable name for EXPLAIN output, e.g.
    /// `sum(x*x):f64` or `filter(x%3==0)·sum(x*x):i64`.
    pub fn label(&self) -> String {
        fn map_f(map: &MapF) -> String {
            match map {
                MapF::X => "x".to_string(),
                MapF::Sq => "x*x".to_string(),
                MapF::MulKR(k) => format!("x*{}", k.name()),
                MapF::MulKL(k) => format!("{}*x", k.name()),
                MapF::K(k) => k.name(),
            }
        }
        fn map_i(map: &MapI) -> String {
            match map {
                MapI::X => "x".to_string(),
                MapI::Sq => "x*x".to_string(),
                MapI::MulK(k) => format!("x*{}", k.name()),
                MapI::Lin(a, b) => format!("{}*x+{}", a.name(), b.name()),
                MapI::K(k) => k.name(),
            }
        }
        fn with_pred_f(pred: &Option<(CmpK, ScalF)>, body: String) -> String {
            match pred {
                None => body,
                Some((op, c)) => format!("filter(x{}{})·{body}", op.symbol(), c.name()),
            }
        }
        fn with_pred_i(pred: &Option<PredI>, body: String) -> String {
            match pred {
                None => body,
                Some(PredI::Cmp(op, c)) => {
                    format!("filter(x{}{})·{body}", op.symbol(), c.name())
                }
                Some(PredI::RemCmp { m, r, ne }) => format!(
                    "filter(x%{}{}{})·{body}",
                    m.name(),
                    if *ne { "!=" } else { "==" },
                    r.name()
                ),
            }
        }
        match self {
            FusedTape::SumF { pred, map, .. } => {
                with_pred_f(pred, format!("sum({}):f64", map_f(map)))
            }
            FusedTape::SumI { pred, map, .. } => {
                with_pred_i(pred, format!("sum({}):i64", map_i(map)))
            }
            FusedTape::FoldF { kind, pred, map, .. } => {
                with_pred_f(pred, format!("{}({}):f64", kind.name(), map_f(map)))
            }
            FusedTape::FoldI { kind, pred, map, .. } => {
                with_pred_i(pred, format!("{}({}):i64", kind.name(), map_i(map)))
            }
            FusedTape::SelRemDivLinI { m, r, d, a, b, .. } => {
                format!("sum(x%{m}=={r} ? x/{d} : {a}*x+{b}):i64")
            }
        }
    }
}

// ---------------------------------------------------------------------
// Whole-tape fusion: symbolic slot recovery.
// ---------------------------------------------------------------------

/// What a slot symbolically holds at a point in the tape. `Other` means
/// "not representable in the fused shapes" — any effect consuming an
/// `Other` slot disqualifies the loop.
#[derive(Clone, Copy, Debug, PartialEq)]
enum EF {
    X,
    S(ScalF),
    Map(MapF),
    Other,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum EI {
    X,
    S(ScalI),
    Map(MapI),
    /// `x % m` (unchecked).
    RemK(ScalI),
    /// `x / d` (unchecked).
    DivK(ScalI),
    /// The fully-recognized guarded-division select (literals only).
    SelRDL {
        m: i64,
        r: i64,
        d: i64,
        a: i64,
        b: i64,
    },
    Other,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum EB {
    /// `x OP c` over the f64 lane (normalized: x on the left).
    CmpF(CmpK, ScalF),
    /// `x OP c` over the i64 lane.
    CmpI(CmpK, ScalI),
    /// `(x % m) ==/!= r`.
    RemCmp { m: ScalI, r: ScalI, ne: bool },
    Other,
}

/// As [`MapF`], viewed as a value usable inside a larger expression.
fn ef_as_map(e: EF) -> Option<MapF> {
    match e {
        EF::X => Some(MapF::X),
        EF::S(s) => Some(MapF::K(s)),
        EF::Map(m) => Some(m),
        EF::Other => None,
    }
}

fn ei_as_map(e: EI) -> Option<MapI> {
    match e {
        EI::X => Some(MapI::X),
        EI::S(s) => Some(MapI::K(s)),
        EI::Map(m) => Some(m),
        _ => None,
    }
}

/// Tries to collapse a whole batch tape into a [`FusedTape`].
///
/// Returns `None` — leaving the kernel-sequence path in charge — unless
/// the tape is exactly a (filter?)·map·sum pipeline whose pieces all
/// match a pre-monomorphized shape. Checked (trapping) division, more
/// than one filter, min/max folds, grouped aggregates, output pushes,
/// casts, and boolean algebra all disqualify.
pub fn plan(bp: &BatchProgram) -> Option<FusedTape> {
    if bp.src_lane == Lane::B {
        return None;
    }
    let mut ef: Vec<EF> = vec![EF::Other; bp.n_f as usize];
    let mut ei: Vec<EI> = vec![EI::Other; bp.n_i as usize];
    let mut eb: Vec<EB> = vec![EB::Other; bp.n_b as usize];

    for init in &bp.prologue {
        match *init {
            BInit::ConstF(d, v) => ef[d as usize] = EF::S(ScalF::Lit(v)),
            BInit::ConstI(d, v) => ei[d as usize] = EI::S(ScalI::Lit(v)),
            BInit::ParamF(d, p) => ef[d as usize] = EF::S(ScalF::Param(p)),
            BInit::ParamI(d, p) => ei[d as usize] = EI::S(ScalI::Param(p)),
            BInit::ConstB(..) | BInit::ParamB(..) => {}
        }
    }

    let mut pred_f: Option<(CmpK, ScalF)> = None;
    let mut pred_i: Option<PredI> = None;
    let mut filtered = false;
    let mut red: Option<FusedTape> = None;

    for op in &bp.tape {
        // The sum must be the last effect: anything after it would
        // observe state the fused loop no longer materializes.
        if red.is_some() {
            return None;
        }
        match *op {
            BOp::LoadF(d) => ef[d as usize] = EF::X,
            BOp::LoadI(d) => ei[d as usize] = EI::X,
            BOp::LoadB(_) => return None,

            BOp::MulF(d, a, b) => {
                ef[d as usize] = match (ef[a as usize], ef[b as usize]) {
                    (EF::X, EF::X) => EF::Map(MapF::Sq),
                    (EF::X, EF::S(k)) => EF::Map(MapF::MulKR(k)),
                    (EF::S(k), EF::X) => EF::Map(MapF::MulKL(k)),
                    _ => EF::Other,
                }
            }
            // Any other f64 compute just makes its destination opaque.
            BOp::AddF(d, ..)
            | BOp::SubF(d, ..)
            | BOp::DivF(d, ..)
            | BOp::RemF(d, ..)
            | BOp::MinF(d, ..)
            | BOp::MaxF(d, ..)
            | BOp::NegF(d, ..)
            | BOp::AbsF(d, ..)
            | BOp::SqrtF(d, ..)
            | BOp::FloorF(d, ..)
            | BOp::I2F(d, ..)
            | BOp::SelF { dst: d, .. }
            | BOp::MulAddF(d, ..) => ef[d as usize] = EF::Other,

            BOp::MulI(d, a, b) => {
                ei[d as usize] = match (ei[a as usize], ei[b as usize]) {
                    (EI::X, EI::X) => EI::Map(MapI::Sq),
                    (EI::X, EI::S(k)) | (EI::S(k), EI::X) => EI::Map(MapI::MulK(k)),
                    _ => EI::Other,
                }
            }
            BOp::AddI(d, a, b) => {
                ei[d as usize] = match (ei[a as usize], ei[b as usize]) {
                    (EI::Map(MapI::MulK(ka)), EI::S(kb))
                    | (EI::S(kb), EI::Map(MapI::MulK(ka))) => EI::Map(MapI::Lin(ka, kb)),
                    (EI::X, EI::S(k)) | (EI::S(k), EI::X) => {
                        EI::Map(MapI::Lin(ScalI::Lit(1), k))
                    }
                    _ => EI::Other,
                }
            }
            BOp::RemIUnchecked(d, a, b) => {
                ei[d as usize] = match (ei[a as usize], ei[b as usize]) {
                    (EI::X, EI::S(m)) => EI::RemK(m),
                    _ => EI::Other,
                }
            }
            BOp::DivIUnchecked(d, a, b) => {
                ei[d as usize] = match (ei[a as usize], ei[b as usize]) {
                    (EI::X, EI::S(m)) => EI::DivK(m),
                    _ => EI::Other,
                }
            }
            // Checked division must keep the lane-exact fault semantics
            // of the kernel path: never fused.
            BOp::DivI(..) | BOp::RemI(..) => return None,
            BOp::SubI(d, ..)
            | BOp::MinI(d, ..)
            | BOp::MaxI(d, ..)
            | BOp::NegI(d, ..)
            | BOp::AbsI(d, ..)
            | BOp::F2I(d, ..)
            | BOp::SelI { dst: d, .. }
            | BOp::MulAddI(d, ..) => {
                // SelI gets a second chance below for the guarded-div
                // shape; everything else is opaque.
                if let BOp::SelI { dst, mask, t, e } = *op {
                    ei[dst as usize] =
                        sel_rdl(eb[mask as usize], ei[t as usize], ei[e as usize]);
                } else {
                    ei[d as usize] = EI::Other;
                }
            }

            BOp::EqFB(d, a, b) => eb[d as usize] = cmp_f(CmpK::Eq, ef[a as usize], ef[b as usize]),
            BOp::NeFB(d, a, b) => eb[d as usize] = cmp_f(CmpK::Ne, ef[a as usize], ef[b as usize]),
            BOp::LtFB(d, a, b) => eb[d as usize] = cmp_f(CmpK::Lt, ef[a as usize], ef[b as usize]),
            BOp::LeFB(d, a, b) => eb[d as usize] = cmp_f(CmpK::Le, ef[a as usize], ef[b as usize]),
            BOp::GtFB(d, a, b) => eb[d as usize] = cmp_f(CmpK::Gt, ef[a as usize], ef[b as usize]),
            BOp::GeFB(d, a, b) => eb[d as usize] = cmp_f(CmpK::Ge, ef[a as usize], ef[b as usize]),
            BOp::EqIB(d, a, b) => eb[d as usize] = cmp_i(CmpK::Eq, ei[a as usize], ei[b as usize]),
            BOp::NeIB(d, a, b) => eb[d as usize] = cmp_i(CmpK::Ne, ei[a as usize], ei[b as usize]),
            BOp::LtIB(d, a, b) => eb[d as usize] = cmp_i(CmpK::Lt, ei[a as usize], ei[b as usize]),
            BOp::LeIB(d, a, b) => eb[d as usize] = cmp_i(CmpK::Le, ei[a as usize], ei[b as usize]),
            BOp::GtIB(d, a, b) => eb[d as usize] = cmp_i(CmpK::Gt, ei[a as usize], ei[b as usize]),
            BOp::GeIB(d, a, b) => eb[d as usize] = cmp_i(CmpK::Ge, ei[a as usize], ei[b as usize]),
            BOp::EqBB(d, ..)
            | BOp::NeBB(d, ..)
            | BOp::AndB(d, ..)
            | BOp::OrB(d, ..)
            | BOp::NotB(d, ..)
            | BOp::SelB { dst: d, .. } => eb[d as usize] = EB::Other,

            BOp::Filter(m) => {
                if filtered {
                    return None;
                }
                filtered = true;
                match eb[m as usize] {
                    EB::CmpF(op, c) => pred_f = Some((op, c)),
                    EB::CmpI(op, c) => pred_i = Some(PredI::Cmp(op, c)),
                    EB::RemCmp { m, r, ne } => pred_i = Some(PredI::RemCmp { m, r, ne }),
                    EB::Other => return None,
                }
            }

            BOp::RedAddF { acc, val } => {
                if pred_i.is_some() {
                    return None;
                }
                let map = ef_as_map(ef[val as usize])?;
                red = Some(FusedTape::SumF {
                    pred: pred_f,
                    map,
                    acc,
                });
            }
            BOp::RedAddI { acc, val } => {
                if pred_f.is_some() {
                    return None;
                }
                if let EI::SelRDL { m, r, d, a, b } = ei[val as usize] {
                    if pred_i.is_some() {
                        return None;
                    }
                    red = Some(FusedTape::SelRemDivLinI {
                        m,
                        r,
                        d,
                        a,
                        b,
                        acc,
                    });
                } else {
                    let map = ei_as_map(ei[val as usize])?;
                    red = Some(FusedTape::SumI {
                        pred: pred_i,
                        map,
                        acc,
                    });
                }
            }

            BOp::RedMinF { acc, val } | BOp::RedMaxF { acc, val } => {
                if pred_i.is_some() {
                    return None;
                }
                let kind = if matches!(*op, BOp::RedMinF { .. }) {
                    FoldKind::Min
                } else {
                    FoldKind::Max
                };
                let map = ef_as_map(ef[val as usize])?;
                red = Some(FusedTape::FoldF {
                    kind,
                    pred: pred_f,
                    map,
                    acc,
                });
            }
            BOp::RedMinI { acc, val } | BOp::RedMaxI { acc, val } => {
                if pred_f.is_some() {
                    return None;
                }
                let kind = if matches!(*op, BOp::RedMinI { .. }) {
                    FoldKind::Min
                } else {
                    FoldKind::Max
                };
                let map = ei_as_map(ei[val as usize])?;
                red = Some(FusedTape::FoldI {
                    kind,
                    pred: pred_i,
                    map,
                    acc,
                });
            }

            // Grouped aggregates and output pushes stay on the kernel
            // path.
            BOp::GroupAddF { .. }
            | BOp::GroupAddI { .. }
            | BOp::OutF(..)
            | BOp::OutI(..)
            | BOp::OutB(..)
            | BOp::MulRedAddF { .. }
            | BOp::MulRedAddI { .. } => return None,
        }
    }
    // The fused loop iterates the source column in its own lane; a
    // cross-lane reduction (e.g. a count — an i64 sum over f64 rows)
    // stays on the kernel path.
    match &red {
        Some(FusedTape::SumF { .. } | FusedTape::FoldF { .. }) if bp.src_lane != Lane::F => None,
        Some(
            FusedTape::SumI { .. } | FusedTape::FoldI { .. } | FusedTape::SelRemDivLinI { .. },
        ) if bp.src_lane != Lane::I => None,
        _ => red,
    }
}

fn cmp_f(op: CmpK, a: EF, b: EF) -> EB {
    match (a, b) {
        (EF::X, EF::S(c)) => EB::CmpF(op, c),
        (EF::S(c), EF::X) => EB::CmpF(op.flipped(), c),
        _ => EB::Other,
    }
}

fn cmp_i(op: CmpK, a: EI, b: EI) -> EB {
    match (a, b) {
        (EI::X, EI::S(c)) => EB::CmpI(op, c),
        (EI::S(c), EI::X) => EB::CmpI(op.flipped(), c),
        (EI::RemK(m), EI::S(r)) | (EI::S(r), EI::RemK(m)) => match op {
            CmpK::Eq => EB::RemCmp { m, r, ne: false },
            CmpK::Ne => EB::RemCmp { m, r, ne: true },
            _ => EB::Other,
        },
        _ => EB::Other,
    }
}

/// Matches `mask ? t : e` against the guarded-division shape (all
/// literals). `ne` guards normalize by swapping the branches.
fn sel_rdl(mask: EB, t: EI, e: EI) -> EI {
    let EB::RemCmp {
        m: ScalI::Lit(m),
        r: ScalI::Lit(r),
        ne,
    } = mask
    else {
        return EI::Other;
    };
    let (t, e) = if ne { (e, t) } else { (t, e) };
    match (t, e) {
        (EI::DivK(ScalI::Lit(d)), EI::Map(MapI::Lin(ScalI::Lit(a), ScalI::Lit(b)))) => {
            EI::SelRDL { m, r, d, a, b }
        }
        _ => EI::Other,
    }
}

// ---------------------------------------------------------------------
// Fused execution.
// ---------------------------------------------------------------------

/// One fused pass of `if pred(x) { *acc += map(x) }`, polling the
/// interrupt once per [`BATCH`] elements. Each call site monomorphizes
/// `pred` and `map` fully.
///
/// The body is written **masked**, not branchy: every lane adds either
/// `map(x)` or `-0.0`. Under round-to-nearest, `a + (-0.0) == a`
/// bit-for-bit for every `a` (including `±0.0`; `+0.0` would flip a
/// `-0.0` accumulator, which is why the identity must be negative
/// zero), so the select is exactly the branchy loop — but it turns an
/// unpredictable data-dependent branch into a `cmp`+`blend` that LLVM
/// if-converts and vectorizes, which is precisely the shape a
/// hand-written filtered sum compiles to. Evaluating `map`
/// unconditionally is sound because fused maps are total (no trapping
/// op survives [`plan`]).
#[inline]
fn loop_f(
    xs: &[f64],
    acc: &mut f64,
    interrupt: &Interrupt,
    pred: impl Fn(f64) -> bool,
    map: impl Fn(f64) -> f64,
) -> Result<(), VmError> {
    let mut a = *acc;
    for chunk in xs.chunks(BATCH) {
        interrupt.check()?;
        for &x in chunk {
            let v = map(x);
            a += if pred(x) { v } else { -0.0 };
        }
    }
    *acc = a;
    Ok(())
}

/// The i64 twin of [`loop_f`] (wrapping accumulation; the masked
/// identity is plain `0`, which is exact for wrapping addition).
#[inline]
fn loop_i(
    xs: &[i64],
    acc: &mut i64,
    interrupt: &Interrupt,
    pred: impl Fn(i64) -> bool,
    map: impl Fn(i64) -> i64,
) -> Result<(), VmError> {
    let mut a = *acc;
    for chunk in xs.chunks(BATCH) {
        interrupt.check()?;
        for &x in chunk {
            let v = map(x);
            a = a.wrapping_add(if pred(x) { v } else { 0 });
        }
    }
    *acc = a;
    Ok(())
}

/// One fused min/max pass. Folds live lanes only, with the accumulator
/// as the **left** operand of `fold` — exactly the order and operator
/// ([`f64::min`]/[`f64::max`]) of the [`crate::kernels::fold`] sequence
/// it replaces, so results stay bit-identical (including NaN
/// propagation). Masked lanes skip the fold entirely rather than
/// folding an identity: min/max have no universally exact identity
/// element the way `-0.0` is for addition.
#[inline]
fn fold_f(
    xs: &[f64],
    acc: &mut f64,
    interrupt: &Interrupt,
    pred: impl Fn(f64) -> bool,
    map: impl Fn(f64) -> f64,
    fold: impl Fn(f64, f64) -> f64,
) -> Result<(), VmError> {
    let mut a = *acc;
    for chunk in xs.chunks(BATCH) {
        interrupt.check()?;
        for &x in chunk {
            if pred(x) {
                a = fold(a, map(x));
            }
        }
    }
    *acc = a;
    Ok(())
}

/// The i64 twin of [`fold_f`].
#[inline]
fn fold_i(
    xs: &[i64],
    acc: &mut i64,
    interrupt: &Interrupt,
    pred: impl Fn(i64) -> bool,
    map: impl Fn(i64) -> i64,
    fold: impl Fn(i64, i64) -> i64,
) -> Result<(), VmError> {
    let mut a = *acc;
    for chunk in xs.chunks(BATCH) {
        interrupt.check()?;
        for &x in chunk {
            if pred(x) {
                a = fold(a, map(x));
            }
        }
    }
    *acc = a;
    Ok(())
}

macro_rules! dispatch_pred_f {
    ($pred:expr, $xs:expr, $acc:expr, $intr:expr, $map:expr) => {{
        let map = $map;
        match $pred {
            None => loop_f($xs, $acc, $intr, |_| true, map),
            Some((CmpK::Eq, c)) => loop_f($xs, $acc, $intr, move |x| x == c, map),
            Some((CmpK::Ne, c)) => loop_f($xs, $acc, $intr, move |x| x != c, map),
            Some((CmpK::Lt, c)) => loop_f($xs, $acc, $intr, move |x| x < c, map),
            Some((CmpK::Le, c)) => loop_f($xs, $acc, $intr, move |x| x <= c, map),
            Some((CmpK::Gt, c)) => loop_f($xs, $acc, $intr, move |x| x > c, map),
            Some((CmpK::Ge, c)) => loop_f($xs, $acc, $intr, move |x| x >= c, map),
        }
    }};
}

macro_rules! dispatch_fold_f {
    ($pred:expr, $xs:expr, $acc:expr, $intr:expr, $map:expr, $fold:expr) => {{
        let map = $map;
        let fold = $fold;
        match $pred {
            None => fold_f($xs, $acc, $intr, |_| true, map, fold),
            Some((CmpK::Eq, c)) => fold_f($xs, $acc, $intr, move |x| x == c, map, fold),
            Some((CmpK::Ne, c)) => fold_f($xs, $acc, $intr, move |x| x != c, map, fold),
            Some((CmpK::Lt, c)) => fold_f($xs, $acc, $intr, move |x| x < c, map, fold),
            Some((CmpK::Le, c)) => fold_f($xs, $acc, $intr, move |x| x <= c, map, fold),
            Some((CmpK::Gt, c)) => fold_f($xs, $acc, $intr, move |x| x > c, map, fold),
            Some((CmpK::Ge, c)) => fold_f($xs, $acc, $intr, move |x| x >= c, map, fold),
        }
    }};
}

/// Dispatches a recognized i64 remainder guard, value-specializing
/// small literal moduli so LLVM strength-reduces the division (the
/// difference between a magic-multiply and a 20+-cycle hardware divide
/// per lane).
macro_rules! rem_pred_i {
    ($m:expr, $r:expr, $ne:expr, $xs:expr, $acc:expr, $intr:expr, $map:expr) => {{
        let map = $map;
        let r = $r;
        match ($m, $ne) {
            (2, false) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(2) == r, map),
            (2, true) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(2) != r, map),
            (3, false) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(3) == r, map),
            (3, true) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(3) != r, map),
            (4, false) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(4) == r, map),
            (4, true) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(4) != r, map),
            (5, false) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(5) == r, map),
            (5, true) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(5) != r, map),
            (m, false) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(m) == r, map),
            (m, true) => loop_i($xs, $acc, $intr, move |x| x.wrapping_rem(m) != r, map),
        }
    }};
}

/// Executes a fused kernel over the source column.
///
/// Accumulator and parameter snapshots have the same layout as
/// [`crate::batch::run_batch`]; the caller writes accumulators back.
///
/// # Errors
///
/// [`VmError::Cancelled`] / [`VmError::DeadlineExceeded`] from the
/// per-batch interrupt poll. Fused shapes contain no trapping ops.
pub fn run_fused(
    ft: &FusedTape,
    data: BatchData<'_>,
    f_accs: &mut [f64],
    i_accs: &mut [i64],
    f_params: &[f64],
    i_params: &[i64],
    interrupt: &Interrupt,
) -> Result<(), VmError> {
    match (ft, data) {
        (FusedTape::SumF { pred, map, acc }, BatchData::F(xs)) => {
            let acc = &mut f_accs[*acc as usize];
            let pred = pred.map(|(op, c)| (op, c.get(f_params)));
            match *map {
                MapF::X => dispatch_pred_f!(pred, xs, acc, interrupt, |x| x),
                MapF::Sq => dispatch_pred_f!(pred, xs, acc, interrupt, |x| x * x),
                MapF::MulKR(k) => {
                    let k = k.get(f_params);
                    dispatch_pred_f!(pred, xs, acc, interrupt, move |x| x * k)
                }
                MapF::MulKL(k) => {
                    let k = k.get(f_params);
                    dispatch_pred_f!(pred, xs, acc, interrupt, move |x| k * x)
                }
                MapF::K(k) => {
                    let k = k.get(f_params);
                    dispatch_pred_f!(pred, xs, acc, interrupt, move |_| k)
                }
            }
        }
        (FusedTape::SumI { pred, map, acc }, BatchData::I(xs)) => {
            let acc = &mut i_accs[*acc as usize];
            match *map {
                MapI::X => sum_i(pred, i_params, xs, acc, interrupt, |x| x),
                MapI::Sq => sum_i(pred, i_params, xs, acc, interrupt, |x| x.wrapping_mul(x)),
                MapI::MulK(k) => {
                    let k = k.get(i_params);
                    sum_i(pred, i_params, xs, acc, interrupt, move |x| {
                        x.wrapping_mul(k)
                    })
                }
                MapI::Lin(a, b) => {
                    let (a, b) = (a.get(i_params), b.get(i_params));
                    sum_i(pred, i_params, xs, acc, interrupt, move |x| {
                        a.wrapping_mul(x).wrapping_add(b)
                    })
                }
                MapI::K(k) => {
                    let k = k.get(i_params);
                    sum_i(pred, i_params, xs, acc, interrupt, move |_| k)
                }
            }
        }
        (
            FusedTape::SelRemDivLinI {
                m,
                r,
                d,
                a,
                b,
                acc,
            },
            BatchData::I(xs),
        ) => {
            let (r, a, b) = (*r, *a, *b);
            let acc = &mut i_accs[*acc as usize];
            // Value-specialize the common small-constant guard/divisor
            // pairs; the fallback keeps the fusion win (no column
            // traffic) with runtime divides.
            match (*m, *d) {
                (2, 2) => loop_i(xs, acc, interrupt, |_| true, move |x| {
                    if x.wrapping_rem(2) == r {
                        x.wrapping_div(2)
                    } else {
                        a.wrapping_mul(x).wrapping_add(b)
                    }
                }),
                (2, 4) => loop_i(xs, acc, interrupt, |_| true, move |x| {
                    if x.wrapping_rem(2) == r {
                        x.wrapping_div(4)
                    } else {
                        a.wrapping_mul(x).wrapping_add(b)
                    }
                }),
                (3, 3) => loop_i(xs, acc, interrupt, |_| true, move |x| {
                    if x.wrapping_rem(3) == r {
                        x.wrapping_div(3)
                    } else {
                        a.wrapping_mul(x).wrapping_add(b)
                    }
                }),
                (m, d) => loop_i(xs, acc, interrupt, |_| true, move |x| {
                    if x.wrapping_rem(m) == r {
                        x.wrapping_div(d)
                    } else {
                        a.wrapping_mul(x).wrapping_add(b)
                    }
                }),
            }
        }
        (FusedTape::FoldF { kind, pred, map, acc }, BatchData::F(xs)) => {
            let acc = &mut f_accs[*acc as usize];
            let pred = pred.map(|(op, c)| (op, c.get(f_params)));
            match kind {
                FoldKind::Min => run_fold_f(pred, *map, xs, acc, f_params, interrupt, f64::min),
                FoldKind::Max => run_fold_f(pred, *map, xs, acc, f_params, interrupt, f64::max),
            }
        }
        (FusedTape::FoldI { kind, pred, map, acc }, BatchData::I(xs)) => {
            let acc = &mut i_accs[*acc as usize];
            match kind {
                FoldKind::Min => {
                    run_fold_i(pred, *map, xs, acc, i_params, interrupt, |a: i64, x| a.min(x))
                }
                FoldKind::Max => {
                    run_fold_i(pred, *map, xs, acc, i_params, interrupt, |a: i64, x| a.max(x))
                }
            }
        }
        // A lane mismatch here would mean the compiler attached a fused
        // plan to the wrong source; fall back to doing nothing is wrong,
        // so surface it as a shape error.
        _ => Err(VmError::Shape("fused kernel lane mismatch".into())),
    }
}

/// Monomorphizes a fused f64 fold over its map, then its predicate.
#[inline]
fn run_fold_f(
    pred: Option<(CmpK, f64)>,
    map: MapF,
    xs: &[f64],
    acc: &mut f64,
    f_params: &[f64],
    interrupt: &Interrupt,
    fold: impl Fn(f64, f64) -> f64 + Copy,
) -> Result<(), VmError> {
    match map {
        MapF::X => dispatch_fold_f!(pred, xs, acc, interrupt, |x| x, fold),
        MapF::Sq => dispatch_fold_f!(pred, xs, acc, interrupt, |x| x * x, fold),
        MapF::MulKR(k) => {
            let k = k.get(f_params);
            dispatch_fold_f!(pred, xs, acc, interrupt, move |x| x * k, fold)
        }
        MapF::MulKL(k) => {
            let k = k.get(f_params);
            dispatch_fold_f!(pred, xs, acc, interrupt, move |x| k * x, fold)
        }
        MapF::K(k) => {
            let k = k.get(f_params);
            dispatch_fold_f!(pred, xs, acc, interrupt, move |_| k, fold)
        }
    }
}

/// Monomorphizes a fused i64 fold over its map, then its predicate.
#[inline]
fn run_fold_i(
    pred: &Option<PredI>,
    map: MapI,
    xs: &[i64],
    acc: &mut i64,
    i_params: &[i64],
    interrupt: &Interrupt,
    fold: impl Fn(i64, i64) -> i64 + Copy,
) -> Result<(), VmError> {
    match map {
        MapI::X => fold_i_pred(pred, i_params, xs, acc, interrupt, |x| x, fold),
        MapI::Sq => fold_i_pred(
            pred,
            i_params,
            xs,
            acc,
            interrupt,
            |x| x.wrapping_mul(x),
            fold,
        ),
        MapI::MulK(k) => {
            let k = k.get(i_params);
            fold_i_pred(
                pred,
                i_params,
                xs,
                acc,
                interrupt,
                move |x| x.wrapping_mul(k),
                fold,
            )
        }
        MapI::Lin(a, b) => {
            let (a, b) = (a.get(i_params), b.get(i_params));
            fold_i_pred(
                pred,
                i_params,
                xs,
                acc,
                interrupt,
                move |x| a.wrapping_mul(x).wrapping_add(b),
                fold,
            )
        }
        MapI::K(k) => {
            let k = k.get(i_params);
            fold_i_pred(pred, i_params, xs, acc, interrupt, move |_| k, fold)
        }
    }
}

/// Dispatches an i64 predicate around a monomorphized fold.
#[inline]
fn fold_i_pred(
    pred: &Option<PredI>,
    i_params: &[i64],
    xs: &[i64],
    acc: &mut i64,
    interrupt: &Interrupt,
    map: impl Fn(i64) -> i64 + Copy,
    fold: impl Fn(i64, i64) -> i64 + Copy,
) -> Result<(), VmError> {
    match *pred {
        None => fold_i(xs, acc, interrupt, |_| true, map, fold),
        Some(PredI::Cmp(op, c)) => {
            let c = c.get(i_params);
            match op {
                CmpK::Eq => fold_i(xs, acc, interrupt, move |x| x == c, map, fold),
                CmpK::Ne => fold_i(xs, acc, interrupt, move |x| x != c, map, fold),
                CmpK::Lt => fold_i(xs, acc, interrupt, move |x| x < c, map, fold),
                CmpK::Le => fold_i(xs, acc, interrupt, move |x| x <= c, map, fold),
                CmpK::Gt => fold_i(xs, acc, interrupt, move |x| x > c, map, fold),
                CmpK::Ge => fold_i(xs, acc, interrupt, move |x| x >= c, map, fold),
            }
        }
        Some(PredI::RemCmp { m, r, ne }) => {
            let (m, r) = (m.get(i_params), r.get(i_params));
            if ne {
                fold_i(xs, acc, interrupt, move |x| x.wrapping_rem(m) != r, map, fold)
            } else {
                fold_i(xs, acc, interrupt, move |x| x.wrapping_rem(m) == r, map, fold)
            }
        }
    }
}

/// Dispatches an i64 predicate around a monomorphized map.
#[inline]
fn sum_i(
    pred: &Option<PredI>,
    i_params: &[i64],
    xs: &[i64],
    acc: &mut i64,
    interrupt: &Interrupt,
    map: impl Fn(i64) -> i64 + Copy,
) -> Result<(), VmError> {
    match *pred {
        None => loop_i(xs, acc, interrupt, |_| true, map),
        Some(PredI::Cmp(op, c)) => {
            let c = c.get(i_params);
            match op {
                CmpK::Eq => loop_i(xs, acc, interrupt, move |x| x == c, map),
                CmpK::Ne => loop_i(xs, acc, interrupt, move |x| x != c, map),
                CmpK::Lt => loop_i(xs, acc, interrupt, move |x| x < c, map),
                CmpK::Le => loop_i(xs, acc, interrupt, move |x| x <= c, map),
                CmpK::Gt => loop_i(xs, acc, interrupt, move |x| x > c, map),
                CmpK::Ge => loop_i(xs, acc, interrupt, move |x| x >= c, map),
            }
        }
        Some(PredI::RemCmp { m, r, ne }) => {
            let (m, r) = (m.get(i_params), r.get(i_params));
            rem_pred_i!(m, r, ne, xs, acc, interrupt, map)
        }
    }
}

// ---------------------------------------------------------------------
// Peephole: the generic two-op fused kernels.
// ---------------------------------------------------------------------

/// Fuses adjacent multiply→add and multiply→reduce kernel pairs into
/// the [`BOp::MulAddF`] / [`BOp::MulRedAddF`] families, eliminating one
/// intermediate column per fusion. Returns the display names of the
/// fused pairs (for EXPLAIN).
///
/// Conditions, checked per pair `(tape[i], tape[i+1])`:
///
/// * the multiply's destination is consumed *only* by the next op
///   (SSA: one def; we scan every later op for another use);
/// * for f64, the multiply result must be the **left** operand of the
///   add — `t + c` and `c + t` round identically only for value, and we
///   do not rely on NaN-payload commutativity; wrapping i64 addition is
///   exactly commutative, so both orders fuse;
/// * reductions fold live lanes only, exactly like the pair they
///   replace (`MulRedAdd` consults the same selection vector).
pub fn peephole(bp: &mut BatchProgram) -> Vec<&'static str> {
    let mut fused = Vec::new();
    let mut out: Vec<BOp> = Vec::with_capacity(bp.tape.len());
    let mut i = 0;
    while i < bp.tape.len() {
        let pair = (bp.tape.get(i).copied(), bp.tape.get(i + 1).copied());
        let replacement = match pair {
            (Some(BOp::MulF(t, a, b)), Some(BOp::AddF(d, l, r)))
                if l == t && r != t && !f_slot_used_after(&bp.tape, i + 2, t) =>
            {
                Some((BOp::MulAddF(d, a, b, r), "muladd:f64"))
            }
            (Some(BOp::MulI(t, a, b)), Some(BOp::AddI(d, l, r)))
                if (l == t) != (r == t) && !i_slot_used_after(&bp.tape, i + 2, t) =>
            {
                let c = if l == t { r } else { l };
                Some((BOp::MulAddI(d, a, b, c), "muladd:i64"))
            }
            (Some(BOp::MulF(t, a, b)), Some(BOp::RedAddF { acc, val }))
                if val == t && !f_slot_used_after(&bp.tape, i + 2, t) =>
            {
                Some((BOp::MulRedAddF { acc, a, b }, "mulred:f64"))
            }
            (Some(BOp::MulI(t, a, b)), Some(BOp::RedAddI { acc, val }))
                if val == t && !i_slot_used_after(&bp.tape, i + 2, t) =>
            {
                Some((BOp::MulRedAddI { acc, a, b }, "mulred:i64"))
            }
            _ => None,
        };
        match replacement {
            Some((op, name)) => {
                out.push(op);
                fused.push(name);
                i += 2;
            }
            None => {
                out.push(bp.tape[i]);
                i += 1;
            }
        }
    }
    bp.tape = out;
    fused
}

/// Whether any op at `tape[from..]` reads f64 slot `s`.
fn f_slot_used_after(tape: &[BOp], from: usize, s: u8) -> bool {
    tape[from..].iter().any(|op| {
        let mut used = false;
        crate::lifetimes::bop_uses(op, |bank, slot| {
            used |= bank == crate::lifetimes::BankK::F && slot == s;
        });
        used
    })
}

/// Whether any op at `tape[from..]` reads i64 slot `s`.
fn i_slot_used_after(tape: &[BOp], from: usize, s: u8) -> bool {
    tape[from..].iter().any(|op| {
        let mut used = false;
        crate::lifetimes::bop_uses(op, |bank, slot| {
            used |= bank == crate::lifetimes::BankK::I && slot == s;
        });
        used
    })
}
