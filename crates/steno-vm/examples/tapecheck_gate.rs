//! CI gate for the tape verifier: compiles a representative query set
//! across tiers, runs [`steno_vm::check_program`] over every tape, and
//! exits non-zero on any rejection.
//!
//! Setting `STENO_TAPECHECK_FORCE_MUTANT=1` injects a known miscompile
//! (swapped subtraction operands in the batch tape) before checking.
//! CI runs the gate once normally (must exit 0) and once with the
//! mutant forced (must exit 1) — proving the job actually fails when
//! the checker fires, not just that it is wired in.

use std::process::ExitCode;
use std::sync::Arc;

use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_query::{Query, QueryExpr};
use steno_vm::batch::BOp;
use steno_vm::query::StenoOptions;
use steno_vm::{CompiledQuery, Instr, Program, VectorizationPolicy};

fn x() -> Expr {
    Expr::var("x")
}

fn queries() -> Vec<(&'static str, QueryExpr)> {
    vec![
        (
            "sum(x*x):f64",
            Query::source("xs").select(x() * x(), "x").sum().build(),
        ),
        (
            "filter·map·sum:f64",
            Query::source("xs")
                .where_(x().gt(Expr::litf(2.0)), "x")
                .select(x() * Expr::litf(3.0), "x")
                .sum()
                .build(),
        ),
        (
            "sum(x-1.5):f64",
            Query::source("xs")
                .select(x() - Expr::litf(1.5), "x")
                .sum()
                .build(),
        ),
        (
            "count(x<10):f64",
            Query::source("xs")
                .where_(x().lt(Expr::litf(10.0)), "x")
                .count()
                .build(),
        ),
        (
            "rem-filter·sum(x*x):i64",
            Query::source("ns")
                .where_((x() % Expr::liti(3)).eq(Expr::liti(0)), "x")
                .select(x() * x(), "x")
                .sum()
                .build(),
        ),
        (
            "sum(x/(x*x+1)):i64",
            Query::source("ns")
                .select(x() / (x() * x() + Expr::liti(1)), "x")
                .sum()
                .build(),
        ),
    ]
}

/// Swaps the operands of the first non-commutative `SubF` in the first
/// batch loop — the register-allocation bug class from the mutation
/// harness. Returns false if the program has no such instruction.
fn inject_mutant(p: &mut Program) -> bool {
    for ins in &mut p.instrs {
        if let Instr::BatchLoop(bp) = ins {
            let mut owned = (**bp).clone();
            for op in &mut owned.tape {
                if let BOp::SubF(_, a, b) = op {
                    if a != b {
                        std::mem::swap(a, b);
                        *ins = Instr::BatchLoop(Arc::new(owned));
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn main() -> ExitCode {
    let force_mutant = std::env::var("STENO_TAPECHECK_FORCE_MUTANT").as_deref() == Ok("1");
    let udfs = UdfRegistry::new();
    let ctx = DataContext::new()
        .with_source(
            "xs",
            (0..3000).map(|i| f64::from(i) * 0.25 - 40.0).collect::<Vec<_>>(),
        )
        .with_source("ns", (0..3000i64).map(|i| i * 3 - 700).collect::<Vec<_>>());
    let modes = [
        ("auto", StenoOptions::default()),
        (
            "scalar",
            StenoOptions {
                vectorize: VectorizationPolicy::Off,
                ..StenoOptions::default()
            },
        ),
    ];
    let mut checked = 0usize;
    let mut mutated = false;
    for (name, q) in queries() {
        for (mode, opts) in &modes {
            let c = match CompiledQuery::compile_tuned(&q, (&ctx).into(), &udfs, *opts) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("tapecheck-gate: {name}/{mode}: compile error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut p = c.program().clone();
            if force_mutant && !mutated {
                mutated = inject_mutant(&mut p);
                if mutated {
                    eprintln!("tapecheck-gate: injected mutant into {name}/{mode}");
                }
            }
            match steno_vm::check_program(&p) {
                Ok(rep) => {
                    println!("tapecheck-gate: {name}/{mode}: {}", rep.summary());
                    checked += 1;
                }
                Err(e) => {
                    eprintln!("tapecheck-gate: {name}/{mode}: REJECTED: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if force_mutant && !mutated {
        eprintln!("tapecheck-gate: mutant injection found no target instruction");
        return ExitCode::FAILURE;
    }
    println!("tapecheck-gate: {checked} tapes verified");
    ExitCode::SUCCESS
}
