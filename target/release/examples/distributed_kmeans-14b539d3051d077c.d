/root/repo/target/release/examples/distributed_kmeans-14b539d3051d077c.d: examples/distributed_kmeans.rs

/root/repo/target/release/examples/distributed_kmeans-14b539d3051d077c: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
