/root/repo/target/debug/deps/macro_expansion-e0c2eefde32371b5.d: tests/macro_expansion.rs

/root/repo/target/debug/deps/macro_expansion-e0c2eefde32371b5: tests/macro_expansion.rs

tests/macro_expansion.rs:
