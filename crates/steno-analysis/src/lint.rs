//! The query lint framework.
//!
//! Lints inspect a *lowered, pre-optimization* chain — the shape closest
//! to what the user wrote — and report suspicious patterns without
//! failing the compile. Diagnostics carry the operator provenance
//! ([`OpSpan`]) recorded during lowering, so messages point at `Where
//! (op #1)` rather than a lowered loop index. The [`Lint`] trait plus
//! [`LintRegistry`] let downstream crates add their own checks.

use std::fmt;

use steno_expr::typecheck::TyEnv;
use steno_expr::{Expr, UdfRegistry};
use steno_quil::ir::OpSpan;
use steno_quil::{PredKind, QuilChain, QuilOp, SinkKind, SinkOp, TransKind};

use crate::facts::analyze;

/// How serious a diagnostic is. Lints never fail a compile; severity
/// only affects presentation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Something the optimizer will handle, surfaced for awareness.
    Info,
    /// A probable mistake in the query.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One finding from a lint.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// The lint that produced this finding.
    pub lint: &'static str,
    /// Presentation severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Provenance of the offending operator.
    pub span: OpSpan,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity, self.lint, self.message, self.span
        )
    }
}

/// A single query lint.
pub trait Lint {
    /// Stable kebab-case identifier, shown in diagnostics.
    fn name(&self) -> &'static str;
    /// One-line description of what the lint detects.
    fn description(&self) -> &'static str;
    /// Checks `chain`, appending findings to `out`.
    fn check(&self, chain: &QuilChain, udfs: &UdfRegistry, out: &mut Vec<Diagnostic>);
}

/// An ordered collection of lints run over a chain (and, via
/// [`LintRegistry::run`], every nested chain).
#[derive(Default)]
pub struct LintRegistry {
    lints: Vec<Box<dyn Lint>>,
}

impl LintRegistry {
    /// An empty registry.
    pub fn new() -> LintRegistry {
        LintRegistry::default()
    }

    /// The built-in lint set.
    pub fn with_defaults() -> LintRegistry {
        let mut r = LintRegistry::new();
        r.register(Box::new(DeadFilter));
        r.register(Box::new(RedundantAdjacent));
        r.register(Box::new(DegenerateTakeSkip));
        r.register(Box::new(OpaqueUdfReordered));
        r
    }

    /// Adds a lint to the registry.
    pub fn register(&mut self, lint: Box<dyn Lint>) {
        self.lints.push(lint);
    }

    /// The registered lint names, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.lints.iter().map(|l| l.name()).collect()
    }

    /// Runs every lint over `chain` and all nested chains.
    pub fn run(&self, chain: &QuilChain, udfs: &UdfRegistry) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        self.run_into(chain, udfs, &mut out);
        out
    }

    fn run_into(&self, chain: &QuilChain, udfs: &UdfRegistry, out: &mut Vec<Diagnostic>) {
        for lint in &self.lints {
            lint.check(chain, udfs, out);
        }
        for op in &chain.ops {
            match op {
                QuilOp::Trans {
                    kind: TransKind::Nested(n),
                    ..
                } => self.run_into(&n.chain, udfs, out),
                QuilOp::Pred {
                    kind: PredKind::Nested(c),
                    ..
                } => self.run_into(c, udfs, out),
                _ => {}
            }
        }
    }
}

/// Runs the default lint set over a chain.
pub fn run_default_lints(chain: &QuilChain, udfs: &UdfRegistry) -> Vec<Diagnostic> {
    LintRegistry::with_defaults().run(chain, udfs)
}

/// Flags predicates that are provably always true (redundant) or always
/// false (the rest of the query is dead).
struct DeadFilter;

impl Lint for DeadFilter {
    fn name(&self) -> &'static str {
        "dead-filter"
    }

    fn description(&self) -> &'static str {
        "predicate is constant: always-false filters kill the query, always-true ones are no-ops"
    }

    fn check(&self, chain: &QuilChain, _udfs: &UdfRegistry, out: &mut Vec<Diagnostic>) {
        for op in &chain.ops {
            if let QuilOp::Pred {
                param,
                kind: PredKind::Expr(p),
                elem_ty,
                ..
            } = op
            {
                let env = TyEnv::new().with(param.clone(), elem_ty.clone());
                match analyze(p, &env).bool_const {
                    Some(false) => out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        message: format!("filter `{p}` is always false: no element can pass"),
                        span: op.span(),
                    }),
                    Some(true) => out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        message: format!("filter `{p}` is always true: the operator is redundant"),
                        span: op.span(),
                    }),
                    None => {}
                }
            }
        }
    }
}

/// Flags adjacent operators where the second makes the first redundant.
struct RedundantAdjacent;

impl Lint for RedundantAdjacent {
    fn name(&self) -> &'static str {
        "redundant-adjacent"
    }

    fn description(&self) -> &'static str {
        "adjacent operator pairs where one is redundant (double OrderBy, Distinct∘Distinct, \
         Select∘Select)"
    }

    fn check(&self, chain: &QuilChain, _udfs: &UdfRegistry, out: &mut Vec<Diagnostic>) {
        for pair in chain.ops.windows(2) {
            match (&pair[0], &pair[1]) {
                (
                    QuilOp::Sink(SinkOp {
                        kind: SinkKind::OrderBy { .. },
                        ..
                    }),
                    QuilOp::Sink(SinkOp {
                        kind: SinkKind::OrderBy { .. },
                        ..
                    }),
                ) => out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    message: "OrderBy immediately followed by OrderBy: the first sort is \
                              discarded"
                        .into(),
                    span: pair[0].span(),
                }),
                (
                    QuilOp::Sink(SinkOp {
                        kind: SinkKind::Distinct,
                        ..
                    }),
                    QuilOp::Sink(SinkOp {
                        kind: SinkKind::Distinct,
                        ..
                    }),
                ) => out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Info,
                    message: "Distinct applied twice in a row: the second pass is a no-op".into(),
                    span: pair[1].span(),
                }),
                (
                    QuilOp::Trans {
                        kind: TransKind::Expr(_),
                        ..
                    },
                    QuilOp::Trans {
                        kind: TransKind::Expr(_),
                        ..
                    },
                ) => out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Info,
                    message: "adjacent Select operators: the optimizer will fuse them into one"
                        .into(),
                    span: pair[1].span(),
                }),
                _ => {}
            }
        }
    }
}

/// Flags `Take`/`Skip` shapes that yield nothing or do nothing.
struct DegenerateTakeSkip;

impl Lint for DegenerateTakeSkip {
    fn name(&self) -> &'static str {
        "degenerate-take-skip"
    }

    fn description(&self) -> &'static str {
        "Take/Skip combinations that yield no elements or have no effect"
    }

    fn check(&self, chain: &QuilChain, _udfs: &UdfRegistry, out: &mut Vec<Diagnostic>) {
        for op in &chain.ops {
            match op {
                QuilOp::Pred {
                    kind: PredKind::Take(0),
                    ..
                } => out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Warning,
                    message: "Take(0): the query yields no elements".into(),
                    span: op.span(),
                }),
                QuilOp::Pred {
                    kind: PredKind::Skip(0),
                    ..
                } => out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Info,
                    message: "Skip(0) has no effect".into(),
                    span: op.span(),
                }),
                _ => {}
            }
        }
        for pair in chain.ops.windows(2) {
            if let (
                QuilOp::Pred {
                    kind: PredKind::Take(n),
                    ..
                },
                QuilOp::Pred {
                    kind: PredKind::Skip(m),
                    ..
                },
            ) = (&pair[0], &pair[1])
            {
                if m >= n {
                    out.push(Diagnostic {
                        lint: self.name(),
                        severity: Severity::Warning,
                        message: format!(
                            "Take({n}) followed by Skip({m}) yields no elements"
                        ),
                        span: pair[1].span(),
                    });
                }
            }
        }
    }
}

/// Flags opaque UDF calls in positions the optimizer reorders.
///
/// Steno assumes UDFs are pure (§4): operators in the homomorphic prefix
/// may be fused with neighbors and split across partitions, so a UDF
/// with side effects there would observe a different call order — or
/// call count — than the naïve evaluation.
struct OpaqueUdfReordered;

impl Lint for OpaqueUdfReordered {
    fn name(&self) -> &'static str {
        "opaque-udf-reordered"
    }

    fn description(&self) -> &'static str {
        "a UDF the optimizer cannot see into sits in a position subject to fusion or parallel \
         splitting"
    }

    fn check(&self, chain: &QuilChain, _udfs: &UdfRegistry, out: &mut Vec<Diagnostic>) {
        for op in &chain.ops {
            if !op.is_homomorphic() {
                break;
            }
            for name in called_udfs(op) {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Info,
                    message: format!(
                        "UDF `{name}` is opaque to the optimizer and assumed pure; fusion and \
                         parallel splitting may reorder its calls"
                    ),
                    span: op.span(),
                });
            }
        }
    }
}

/// Collects UDF names called directly in an operator's own expressions
/// (not in nested chains, which are linted separately).
fn called_udfs(op: &QuilOp) -> Vec<String> {
    let mut names = Vec::new();
    let mut grab = |e: &Expr| {
        e.visit(&mut |node| {
            if let Expr::Call(name, _) = node {
                if !names.contains(name) {
                    names.push(name.clone());
                }
            }
        });
    };
    match op {
        QuilOp::Trans {
            kind: TransKind::Expr(e),
            ..
        } => grab(e),
        QuilOp::Pred { kind, .. } => match kind {
            PredKind::Expr(e) | PredKind::TakeWhile(e) | PredKind::SkipWhile(e) => grab(e),
            _ => {}
        },
        QuilOp::Sink(s) => match &s.kind {
            SinkKind::GroupBy { key, elem, .. } => {
                grab(key);
                if let Some(e) = elem {
                    grab(e);
                }
            }
            SinkKind::GroupByAggregate { key, elem, .. } => {
                grab(key);
                if let Some(e) = elem {
                    grab(e);
                }
            }
            SinkKind::OrderBy { key, .. } => grab(key),
            SinkKind::Distinct | SinkKind::ToVec => {}
        },
        QuilOp::Trans {
            kind: TransKind::Nested(_),
            ..
        } => {}
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::{Ty, Value};
    use steno_query::typing::SourceTypes;
    use steno_query::Query;
    use steno_quil::lower;

    fn srcs() -> SourceTypes {
        SourceTypes::new().with("xs", Ty::F64).with("ns", Ty::I64)
    }

    fn lints_of(q: steno_query::QueryExpr) -> Vec<Diagnostic> {
        lints_of_with(q, &UdfRegistry::new())
    }

    fn lints_of_with(q: steno_query::QueryExpr, udfs: &UdfRegistry) -> Vec<Diagnostic> {
        let chain = lower(&q, &srcs(), udfs).unwrap();
        run_default_lints(&chain, udfs)
    }

    #[test]
    fn dead_filter_always_false() {
        // x % 4 > 10 can never hold.
        let d = lints_of(
            Query::source("ns")
                .where_((Expr::var("x") % Expr::liti(4)).gt(Expr::liti(10)), "x")
                .count()
                .build(),
        );
        assert!(
            d.iter()
                .any(|d| d.lint == "dead-filter" && d.message.contains("always false")),
            "{d:?}"
        );
        // The span names the offending operator.
        let dead = d.iter().find(|d| d.lint == "dead-filter").unwrap();
        assert_eq!(dead.span.operator, Some("Where"));
    }

    #[test]
    fn dead_filter_always_true() {
        let d = lints_of(
            Query::source("ns")
                .where_((Expr::var("x") % Expr::liti(4)).lt(Expr::liti(100)), "x")
                .count()
                .build(),
        );
        assert!(
            d.iter()
                .any(|d| d.lint == "dead-filter" && d.message.contains("always true")),
            "{d:?}"
        );
    }

    #[test]
    fn honest_filters_are_silent() {
        let d = lints_of(
            Query::source("ns")
                .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
                .count()
                .build(),
        );
        assert!(d.iter().all(|d| d.lint != "dead-filter"), "{d:?}");
    }

    #[test]
    fn double_order_by_flagged() {
        let d = lints_of(
            Query::source("xs")
                .order_by(Expr::var("x"), "x")
                .order_by(-Expr::var("x"), "x")
                .build(),
        );
        assert!(
            d.iter()
                .any(|d| d.lint == "redundant-adjacent" && d.message.contains("OrderBy")),
            "{d:?}"
        );
    }

    #[test]
    fn adjacent_selects_noted() {
        let d = lints_of(
            Query::source("xs")
                .select(Expr::var("x") * Expr::litf(2.0), "x")
                .select(Expr::var("x") + Expr::litf(1.0), "x")
                .build(),
        );
        assert!(
            d.iter()
                .any(|d| d.lint == "redundant-adjacent" && d.severity == Severity::Info),
            "{d:?}"
        );
    }

    #[test]
    fn degenerate_take_skip() {
        let d = lints_of(Query::source("xs").take(0).build());
        assert!(
            d.iter()
                .any(|d| d.lint == "degenerate-take-skip" && d.message.contains("Take(0)")),
            "{d:?}"
        );
        let d = lints_of(Query::source("xs").take(3).skip(5).build());
        assert!(
            d.iter()
                .any(|d| d.lint == "degenerate-take-skip" && d.message.contains("yields no")),
            "{d:?}"
        );
        // Skip within the taken prefix is fine.
        let d = lints_of(Query::source("xs").take(5).skip(2).build());
        assert!(
            d.iter().all(|d| !d.message.contains("yields no")),
            "{d:?}"
        );
    }

    #[test]
    fn opaque_udf_in_homomorphic_prefix() {
        let mut udfs = UdfRegistry::new();
        udfs.register("noisy", vec![Ty::F64], Ty::F64, |args| {
            Value::F64(args[0].as_f64().unwrap_or(0.0))
        });
        let d = lints_of_with(
            Query::source("xs")
                .select(Expr::call("noisy", vec![Expr::var("x")]), "x")
                .sum()
                .build(),
            &udfs,
        );
        assert!(
            d.iter()
                .any(|d| d.lint == "opaque-udf-reordered" && d.message.contains("`noisy`")),
            "{d:?}"
        );
    }

    #[test]
    fn registry_is_extensible() {
        struct CountOps;
        impl Lint for CountOps {
            fn name(&self) -> &'static str {
                "count-ops"
            }
            fn description(&self) -> &'static str {
                "reports the operator count"
            }
            fn check(&self, chain: &QuilChain, _u: &UdfRegistry, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic {
                    lint: self.name(),
                    severity: Severity::Info,
                    message: format!("{} operators", chain.ops.len()),
                    span: OpSpan::none(),
                });
            }
        }
        let mut reg = LintRegistry::new();
        reg.register(Box::new(CountOps));
        assert_eq!(reg.names(), vec!["count-ops"]);
        let udfs = UdfRegistry::new();
        let chain = lower(
            &Query::source("xs").distinct().build(),
            &srcs(),
            &udfs,
        )
        .unwrap();
        let d = reg.run(&chain, &udfs);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].message, "1 operators");
    }
}
