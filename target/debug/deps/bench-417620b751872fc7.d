/root/repo/target/debug/deps/bench-417620b751872fc7.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-417620b751872fc7.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libbench-417620b751872fc7.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
