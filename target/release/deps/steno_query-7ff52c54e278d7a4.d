/root/repo/target/release/deps/steno_query-7ff52c54e278d7a4.d: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/release/deps/libsteno_query-7ff52c54e278d7a4.rlib: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/release/deps/libsteno_query-7ff52c54e278d7a4.rmeta: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

crates/steno-query/src/lib.rs:
crates/steno-query/src/ast.rs:
crates/steno-query/src/builder.rs:
crates/steno-query/src/typing.rs:
