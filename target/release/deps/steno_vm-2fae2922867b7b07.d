/root/repo/target/release/deps/steno_vm-2fae2922867b7b07.d: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/release/deps/libsteno_vm-2fae2922867b7b07.rlib: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/release/deps/libsteno_vm-2fae2922867b7b07.rmeta: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

crates/steno-vm/src/lib.rs:
crates/steno-vm/src/batch.rs:
crates/steno-vm/src/compile.rs:
crates/steno-vm/src/fuse.rs:
crates/steno-vm/src/exec.rs:
crates/steno-vm/src/instr.rs:
crates/steno-vm/src/kernels.rs:
crates/steno-vm/src/prepared.rs:
crates/steno-vm/src/profile.rs:
crates/steno-vm/src/query.rs:
crates/steno-vm/src/sink.rs:
