/root/repo/target/debug/deps/steno_repro-8f3bd7ee028a1730.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/steno_repro-8f3bd7ee028a1730: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
