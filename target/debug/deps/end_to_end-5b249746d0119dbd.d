/root/repo/target/debug/deps/end_to_end-5b249746d0119dbd.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5b249746d0119dbd: tests/end_to_end.rs

tests/end_to_end.rs:
