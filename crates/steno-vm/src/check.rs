//! The tape verifier: translation validation for compiled programs.
//!
//! Every backend pass below QUIL — loop-invariant hoisting, scalar pair
//! fusion, frame shrinking, batch-slot packing, kernel fusion, peephole
//! superinstructions, interval-justified unchecked division — is an
//! opportunity for a silent miscompile. This module is the independent
//! referee: an abstract interpreter that re-derives, from the compiled
//! [`Program`] tape alone (plus the pre-optimization shadow tapes
//! captured by [`crate::compile`] and re-run `steno-analysis` facts), a
//! catalogue of proof obligations, and rejects any tape that violates
//! one:
//!
//! * **Cfg** — every branch target in bounds, no fall-off-the-end, and
//!   every cycle in the instruction graph crosses an interrupt poll
//!   (backward transfers poll in [`crate::exec`]; `FusedLoop`/`BatchLoop`
//!   poll at batch boundaries), so `steno-serve` deadlines always fire.
//! * **Dataflow** — typed def-before-use over F/I/V register banks and
//!   over batch slots *after* `pack_batch_slots` reuse and
//!   `shrink_frames`: no read of a register or slot that is out of
//!   bounds or not definitely assigned on every path.
//! * **Div** — every `DivIUnchecked`/`RemIUnchecked` justified by an
//!   interval fact excluding zero, *re-derived here* from
//!   [`steno_analysis::analyze`] on the recorded divisor expression —
//!   the checker recomputes the proof rather than trusting compile.rs.
//! * **Equiv** — the optimized tape is equivalent to its shadow
//!   (pre-optimization) tape by symbolic execution: cut-point
//!   bisimulation for the scalar tape (validating hoisting, pair
//!   fusion, and `BrCmp*`/`IncJump`/`MulAdd*` superinstructions against
//!   their de-sugared forms), and effect-stream comparison for batch
//!   tapes and fused whole-loop kernels.
//!
//! The checker is deliberately written against a *different* semantic
//! model than the passes it audits (must-defined bitsets, hash-consed
//! symbolic values, ordered effect streams) so a bug in a pass and a
//! bug in the checker are unlikely to coincide. Its own evidence of
//! strength is `tests/tape_mutation.rs`: nine classes of deliberate
//! miscompile injected into real corpus tapes, every one rejected.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::batch::{BInit, BOp, BatchProgram, KeyRef};
use crate::instr::{Instr, Program, ScalarShadow, SKey};
use crate::lifetimes::{instr_io, RegBank};

// ---------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------

/// Which proof obligation a rejected tape violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObligationKind {
    /// Control-flow well-formedness: targets in bounds, no fall-off.
    Cfg,
    /// Typed def-before-use over registers and batch slots.
    Dataflow,
    /// Every loop reaches an interrupt poll.
    Polls,
    /// Unchecked division justified by a re-derived interval fact.
    Div,
    /// Optimized tape equivalent to its pre-optimization shadow.
    Equiv,
}

impl fmt::Display for ObligationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObligationKind::Cfg => "cfg",
            ObligationKind::Dataflow => "dataflow",
            ObligationKind::Polls => "polls",
            ObligationKind::Div => "div",
            ObligationKind::Equiv => "equiv",
        };
        f.write_str(s)
    }
}

/// A rejected tape: the violated obligation and what the checker saw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckError {
    /// The obligation category that failed.
    pub kind: ObligationKind,
    /// Human-readable description of the exact violation.
    pub detail: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tape-check failed [{}]: {}", self.kind, self.detail)
    }
}

impl std::error::Error for CheckError {}

fn err(kind: ObligationKind, detail: impl Into<String>) -> CheckError {
    CheckError { kind, detail: detail.into() }
}

/// Obligations discharged by a passing check, per category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TapeReport {
    /// Branch targets verified in bounds (plus the no-fall-off proof).
    pub cfg: u32,
    /// Register/slot reads proven definitely-assigned and in bounds.
    pub dataflow: u32,
    /// Loop back-edges / batch boundaries proven to reach a poll.
    pub polls: u32,
    /// Unchecked divisions re-justified from interval analysis.
    pub div: u32,
    /// Equivalence cut-points / kernel shapes discharged symbolically.
    pub equiv: u32,
}

impl TapeReport {
    /// Total obligations discharged across all categories.
    pub fn total(&self) -> u32 {
        self.cfg + self.dataflow + self.polls + self.div + self.equiv
    }

    /// One-line summary for EXPLAIN output, e.g.
    /// `passed (cfg 3, dataflow 17, polls 1, div 0, equiv 4)`.
    pub fn summary(&self) -> String {
        format!(
            "passed (cfg {}, dataflow {}, polls {}, div {}, equiv {})",
            self.cfg, self.dataflow, self.polls, self.div, self.equiv
        )
    }
}

/// Checks every proof obligation for a compiled program.
///
/// Returns the discharged-obligation counts on success, or the first
/// violation found. Programs without a captured shadow (hand-assembled
/// tapes) are checked standalone — every obligation except shadow
/// equivalence still applies.
pub fn check_program(p: &Program) -> Result<TapeReport, CheckError> {
    let mut rep = TapeReport::default();
    check_cfg(&p.instrs, &mut rep)?;
    check_scalar_dataflow(&p.instrs, p.n_fregs, p.n_iregs, p.n_vregs, &mut rep)?;
    for ins in &p.instrs {
        if let Instr::BatchLoop(bp) = ins {
            check_batch(bp, &mut rep)?;
        }
    }
    if let Some(shadow) = &p.shadow {
        check_scalar_equiv(shadow, p, &mut rep)?;
    }
    Ok(rep)
}

// ---------------------------------------------------------------------
// (a) Control flow: bounds, termination, polls
// ---------------------------------------------------------------------

/// Successors of the instruction at `pc`, as (target, polls) pairs.
/// `polls` is true when the VM checks the interrupt flag on that edge:
/// backward transfers poll in [`crate::exec`]; everything else does not.
/// The rule here is deliberately *strictly* backward (`target < pc`):
/// a self-jump — the tightest possible spin, which a correct compile
/// never emits — therefore shows up as a poll-free cycle and is
/// rejected rather than trusted to the interpreter's poll budget.
fn successors(instrs: &[Instr], pc: usize) -> Vec<(usize, bool)> {
    let back = |t: u32| (t as usize, (t as usize) < pc);
    match &instrs[pc] {
        Instr::Jump(t) => vec![back(*t)],
        Instr::IncJump { target, .. } => vec![back(*target)],
        Instr::JumpIfFalse(_, t) | Instr::JumpIfTrue(_, t) => {
            vec![back(*t), (pc + 1, false)]
        }
        Instr::BrCmpF { target, .. } | Instr::BrCmpI { target, .. } => {
            vec![back(*target), (pc + 1, false)]
        }
        Instr::HaltF(_)
        | Instr::HaltI(_)
        | Instr::HaltB(_)
        | Instr::HaltV(_)
        | Instr::HaltOut => vec![],
        _ => vec![(pc + 1, false)],
    }
}

fn check_cfg(instrs: &[Instr], rep: &mut TapeReport) -> Result<(), CheckError> {
    if instrs.is_empty() {
        return Err(err(ObligationKind::Cfg, "empty tape (no halt)"));
    }
    let len = instrs.len();
    for (pc, ins) in instrs.iter().enumerate() {
        let target = match ins {
            Instr::Jump(t)
            | Instr::JumpIfFalse(_, t)
            | Instr::JumpIfTrue(_, t) => Some(*t),
            Instr::BrCmpF { target, .. }
            | Instr::BrCmpI { target, .. }
            | Instr::IncJump { target, .. } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            if (t as usize) >= len {
                return Err(err(
                    ObligationKind::Cfg,
                    format!("pc {pc}: branch target {t} out of bounds (len {len})"),
                ));
            }
            rep.cfg += 1;
        }
        // The last instruction must not fall through past the end.
        if pc + 1 == len
            && !matches!(
                ins,
                Instr::Jump(_)
                    | Instr::IncJump { .. }
                    | Instr::HaltF(_)
                    | Instr::HaltI(_)
                    | Instr::HaltB(_)
                    | Instr::HaltV(_)
                    | Instr::HaltOut
            )
        {
            return Err(err(
                ObligationKind::Cfg,
                format!("pc {pc}: tape can fall off the end (last instr {ins:?})"),
            ));
        }
    }
    rep.cfg += 1; // the no-fall-off obligation itself

    // Poll obligation: every cycle must cross a polling edge. Backward
    // transfers poll; `FusedLoop`/`BatchLoop` poll internally at batch
    // boundaries (`run_fused`/`run_batch` consult the interrupt flag per
    // chunk), so their self-contained loops are structurally discharged.
    // Remove all polling edges and require the rest to be acyclic
    // (Kahn's algorithm on the non-polling edge subgraph).
    for ins in instrs {
        if matches!(ins, Instr::FusedLoop(_) | Instr::BatchLoop(_)) {
            rep.polls += 1;
        }
    }
    let mut indeg = vec![0u32; len];
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); len];
    for (pc, out) in edges.iter_mut().enumerate() {
        for (t, polls) in successors(instrs, pc) {
            if polls {
                rep.polls += 1; // a discharged back-edge poll
            } else {
                out.push(t);
                indeg[t] += 1;
            }
        }
    }
    let mut queue: Vec<usize> = (0..len).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(n) = queue.pop() {
        seen += 1;
        for &t in &edges[n] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if seen != len {
        let stuck: Vec<usize> = (0..len).filter(|&i| indeg[i] > 0).collect();
        return Err(err(
            ObligationKind::Polls,
            format!("loop without an interrupt poll through pcs {stuck:?}"),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// (b) Scalar dataflow: bounds + must-defined registers
// ---------------------------------------------------------------------

/// A fixed-width bitset over one register bank.
#[derive(Clone, PartialEq, Eq)]
struct Bits(Vec<u64>);

impl Bits {
    fn empty(n: usize) -> Bits {
        Bits(vec![0; n.div_ceil(64)])
    }
    fn full(n: usize) -> Bits {
        let mut b = Bits(vec![!0u64; n.div_ceil(64)]);
        let tail = n % 64;
        if tail != 0 {
            if let Some(last) = b.0.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        b
    }
    fn get(&self, i: u32) -> bool {
        self.0
            .get(i as usize / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }
    fn set(&mut self, i: u32) {
        if let Some(w) = self.0.get_mut(i as usize / 64) {
            *w |= 1u64 << (i % 64);
        }
    }
    /// `self &= other`; true when any bit changed.
    fn intersect(&mut self, other: &Bits) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let n = *a & *b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
    /// `self |= other`; true when any bit changed.
    fn union(&mut self, other: &Bits) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            let n = *a | *b;
            changed |= n != *a;
            *a = n;
        }
        changed
    }
}

fn bank_name(bank: RegBank) -> &'static str {
    match bank {
        RegBank::F => "F",
        RegBank::I => "I",
        RegBank::V => "V",
    }
}

fn bank_idx(bank: RegBank) -> usize {
    match bank {
        RegBank::F => 0,
        RegBank::I => 1,
        RegBank::V => 2,
    }
}

/// Bounds + must-defined dataflow over the three scalar register banks.
///
/// The VM zero-initializes frames, so a read of a never-written register
/// cannot be a memory-safety issue — but after `shrink_frames` and
/// register-pair fusion it *is* the signature of a miscompile (a pass
/// redirected an operand to a register nothing defines), so the checker
/// treats any read not dominated by a write on every path as a
/// violation. Loop-carried registers (accumulators, induction counters)
/// are written in the preamble before the loop header, so real tapes
/// pass; a swapped-operand mutation does not.
fn check_scalar_dataflow(
    instrs: &[Instr],
    n_fregs: u32,
    n_iregs: u32,
    n_vregs: u32,
    rep: &mut TapeReport,
) -> Result<(), CheckError> {
    let counts = [n_fregs, n_iregs, n_vregs];
    // Pass 1: bounds for every operand, read or written.
    for (pc, ins) in instrs.iter().enumerate() {
        let mut oob: Option<(RegBank, u32)> = None;
        instr_io(ins, |bank, reg, _| {
            if reg >= counts[bank_idx(bank)] && oob.is_none() {
                oob = Some((bank, reg));
            }
        });
        if let Some((bank, reg)) = oob {
            return Err(err(
                ObligationKind::Dataflow,
                format!(
                    "pc {pc}: register {}{} out of bounds (frame has {})",
                    bank_name(bank),
                    reg,
                    counts[bank_idx(bank)]
                ),
            ));
        }
    }

    // Pass 2: must-defined forward dataflow. `defs[pc]` = registers
    // definitely written on every path reaching `pc`; join is
    // intersection; entry starts empty.
    let n = instrs.len();
    let empty = [
        Bits::empty(n_fregs as usize),
        Bits::empty(n_iregs as usize),
        Bits::empty(n_vregs as usize),
    ];
    let full = [
        Bits::full(n_fregs as usize),
        Bits::full(n_iregs as usize),
        Bits::full(n_vregs as usize),
    ];
    // `None` = unreachable (join identity).
    let mut inb: Vec<Option<[Bits; 3]>> = vec![None; n];
    inb[0] = Some(empty.clone());
    let mut work: Vec<usize> = vec![0];
    let mut steps = 0usize;
    while let Some(pc) = work.pop() {
        steps += 1;
        if steps > 64 * n + 1024 {
            return Err(err(
                ObligationKind::Dataflow,
                "dataflow fixpoint budget exceeded".to_string(),
            ));
        }
        let Some(state) = inb[pc].clone() else { continue };
        let mut out = state;
        instr_io(&instrs[pc], |bank, reg, is_write| {
            if is_write {
                out[bank_idx(bank)].set(reg);
            }
        });
        for (t, _) in successors(instrs, pc) {
            match &mut inb[t] {
                Some(existing) => {
                    let mut changed = false;
                    for (e, o) in existing.iter_mut().zip(&out) {
                        changed |= e.intersect(o);
                    }
                    if changed {
                        work.push(t);
                    }
                }
                slot @ None => {
                    *slot = Some(out.clone());
                    work.push(t);
                }
            }
        }
    }
    let _ = full;

    // Pass 3: verify every read against the fixpoint.
    for (pc, ins) in instrs.iter().enumerate() {
        let Some(state) = &inb[pc] else { continue }; // unreachable pc
        let mut bad: Option<(RegBank, u32)> = None;
        let mut reads = 0u32;
        instr_io(ins, |bank, reg, is_write| {
            if !is_write {
                reads += 1;
                if !state[bank_idx(bank)].get(reg) && bad.is_none() {
                    bad = Some((bank, reg));
                }
            }
        });
        if let Some((bank, reg)) = bad {
            return Err(err(
                ObligationKind::Dataflow,
                format!(
                    "pc {pc}: read of {}{} not definitely assigned ({ins:?})",
                    bank_name(bank),
                    reg
                ),
            ));
        }
        rep.dataflow += reads;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Symbolic domain (shared by batch and scalar equivalence)
// ---------------------------------------------------------------------

/// A hash-consed symbolic value. Equal ids ⇔ structurally equal terms,
/// so equivalence comparison is integer equality.
type Sym = u32;

#[derive(Clone, Debug, Hash, PartialEq, Eq)]
enum SymKey {
    /// The current source element of a batch loop.
    SrcElem,
    /// An f64 constant, by bit pattern (so `-0.0 != 0.0`, `NaN == NaN`:
    /// the optimizer must preserve bits, not just numeric value).
    ConstF(u64),
    ConstI(i64),
    ConstB(bool),
    /// A boxed constant, by its `Debug` rendering.
    ConstV(String),
    /// A loop-invariant parameter of a batch/fused loop.
    ParamF(u8),
    ParamI(u8),
    /// The unknown value of register `reg` of `bank` at cut-point
    /// `pair` — shared by shadow and optimized states.
    CutVal(u32, u8, u32),
    /// A register the shadow side treats as havocked (not live-in) at
    /// cut-point `pair`. Reading one is not itself an error — only
    /// letting it flow into an effect or a live exit register is, and
    /// then the symbolic comparison fails naturally.
    Undef(u32, u8, u32),
    /// The optimized side's join of disagreeing values for a non-live
    /// register at cut-point `pair` (monotone top).
    TDiff(u32, u8, u32),
    /// The result `out` of the `idx`-th effect in segment `pair` —
    /// shared by both sides once their effect calls are proven equal.
    EffectRes(u32, u32, u32),
    /// A pure operator applied to interned arguments: the arity and a
    /// fixed argument buffer (checker operators take at most four), so
    /// constructing a key never heap-allocates.
    Apply(&'static str, u8, [Sym; 4]),
}

/// FNV-1a, a few instructions per byte. The interner is on the hot
/// path of every bisimulation visit (each segment step interns one to
/// three keys, almost always hits), and the default hasher's
/// per-lookup cost dominated the whole equivalence pass when profiled;
/// the keys are tiny and attacker-controlled collisions are not a
/// concern for a bounded in-process checker.
#[derive(Default)]
struct Fnv(u64);

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<Fnv>>;

#[derive(Default)]
struct Syms {
    map: FnvMap<SymKey, Sym>,
    n: u32,
}

impl Syms {
    fn intern(&mut self, k: SymKey) -> Sym {
        if let Some(&id) = self.map.get(&k) {
            return id;
        }
        let id = self.n;
        self.n += 1;
        self.map.insert(k, id);
        id
    }

    fn cf(&mut self, v: f64) -> Sym {
        self.intern(SymKey::ConstF(v.to_bits()))
    }
    fn ci(&mut self, v: i64) -> Sym {
        self.intern(SymKey::ConstI(v))
    }
    fn cb(&mut self, v: bool) -> Sym {
        self.intern(SymKey::ConstB(v))
    }

    /// Interns `tag(args)` after normalization: commutative operators
    /// sort their arguments; `>`/`>=` canonicalize to `<`/`<=` with
    /// swapped operands (exact for both IEEE f64 and i64, since the
    /// operands are the same runtime values either way).
    fn apply(&mut self, tag: &'static str, args: &[Sym]) -> Sym {
        debug_assert!(args.len() <= 4, "checker operators take at most 4 args");
        let mut buf = [0; 4];
        let n = args.len().min(4);
        buf[..n].copy_from_slice(&args[..n]);
        let args = &mut buf[..n];
        const COMMUTATIVE: &[&str] = &[
            "addi", "muli", "eqf", "nef", "eqi", "nei", "eqv", "eqfb",
            "nefb", "eqib", "neib", "eqbb", "nebb", "andb", "orb",
        ];
        let tag = match tag {
            "gtf" => {
                args.swap(0, 1);
                "ltf"
            }
            "gef" => {
                args.swap(0, 1);
                "lef"
            }
            "gti" => {
                args.swap(0, 1);
                "lti"
            }
            "gei" => {
                args.swap(0, 1);
                "lei"
            }
            "gtfb" => {
                args.swap(0, 1);
                "ltfb"
            }
            "gefb" => {
                args.swap(0, 1);
                "lefb"
            }
            "gtib" => {
                args.swap(0, 1);
                "ltib"
            }
            "geib" => {
                args.swap(0, 1);
                "leib"
            }
            t => t,
        };
        if COMMUTATIVE.contains(&tag) {
            args.sort_unstable();
        }
        self.intern(SymKey::Apply(tag, n as u8, buf))
    }
}

/// One observable action of a tape segment, in program order. Two
/// segments are equivalent when their effect streams match call-by-call
/// (same tag, same argument symbols) and their pure results agree.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Effect {
    /// Operation name.
    tag: &'static str,
    /// Static immediate (sink/src/udf id, acc index, loop identity);
    /// zero when the operation has none. Kept numeric so building an
    /// effect never allocates — effect streams are rebuilt on every
    /// bisimulation visit.
    id: u64,
    /// Interned operand symbols, in operand order.
    args: Vec<Sym>,
}

// ---------------------------------------------------------------------
// (c)+(d) Batch tapes: slot dataflow, div proofs, kernel equivalence
// ---------------------------------------------------------------------

/// Symbolic state of the three batch slot banks. `None` = never
/// written (reading it is a def-before-use violation: `pack_batch_slots`
/// must not move a read ahead of the write that feeds it).
struct BatchState {
    f: Vec<Option<Sym>>,
    i: Vec<Option<Sym>>,
    b: Vec<Option<Sym>>,
}

struct BatchRun {
    effects: Vec<Effect>,
    /// `(operand syms, is_rem)` per unchecked division, in tape order.
    unchecked: Vec<(Sym, Sym, bool)>,
    reads: u32,
}

/// Symbolically executes one prologue+tape over `syms`, producing the
/// ordered effect stream. Rejects out-of-bounds slots and reads of
/// never-written slots. `who` labels errors ("tape" or "shadow").
fn run_batch_tape(
    syms: &mut Syms,
    n_f: u8,
    n_i: u8,
    n_b: u8,
    prologue: &[BInit],
    tape: &[BOp],
    who: &str,
) -> Result<BatchRun, CheckError> {
    let mut st = BatchState {
        f: vec![None; n_f as usize],
        i: vec![None; n_i as usize],
        b: vec![None; n_b as usize],
    };
    let mut run = BatchRun { effects: Vec::new(), unchecked: Vec::new(), reads: 0 };

    fn oob(who: &str, lane: &str, s: u8, n: u8) -> CheckError {
        err(
            ObligationKind::Dataflow,
            format!("batch {who}: {lane} slot {s} out of bounds (bank has {n})"),
        )
    }
    macro_rules! rd {
        ($bank:ident, $n:expr, $lane:literal, $s:expr) => {{
            let s = $s;
            let slot = st
                .$bank
                .get(s as usize)
                .ok_or_else(|| oob(who, $lane, s, $n))?;
            run.reads += 1;
            slot.ok_or_else(|| {
                err(
                    ObligationKind::Dataflow,
                    format!(
                        "batch {who}: read of {} slot {} before any write",
                        $lane, s
                    ),
                )
            })?
        }};
    }
    macro_rules! wr {
        ($bank:ident, $n:expr, $lane:literal, $d:expr, $v:expr) => {{
            let d = $d;
            let v = $v;
            *st.$bank
                .get_mut(d as usize)
                .ok_or_else(|| oob(who, $lane, d, $n))? = Some(v);
        }};
    }

    for init in prologue {
        match *init {
            BInit::ConstF(d, v) => {
                let s = syms.cf(v);
                wr!(f, n_f, "f64", d, s);
            }
            BInit::ConstI(d, v) => {
                let s = syms.ci(v);
                wr!(i, n_i, "i64", d, s);
            }
            BInit::ConstB(d, v) => {
                let s = syms.cb(v);
                wr!(b, n_b, "bool", d, s);
            }
            BInit::ParamF(d, p) => {
                let s = syms.intern(SymKey::ParamF(p));
                wr!(f, n_f, "f64", d, s);
            }
            BInit::ParamI(d, p) => {
                let s = syms.intern(SymKey::ParamI(p));
                wr!(i, n_i, "i64", d, s);
            }
            BInit::ParamB(d, p) => {
                // Bool params ride the i64 param snapshot in the VM.
                let pi = syms.intern(SymKey::ParamI(p));
                let s = syms.apply("i2b", &[pi]);
                wr!(b, n_b, "bool", d, s);
            }
        }
    }

    let src = syms.intern(SymKey::SrcElem);
    for op in tape {
        match *op {
            BOp::LoadF(d) => wr!(f, n_f, "f64", d, src),
            BOp::LoadI(d) => wr!(i, n_i, "i64", d, src),
            BOp::LoadB(d) => wr!(b, n_b, "bool", d, src),

            BOp::AddF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("addf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::SubF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("subf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::MulF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("mulf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::DivF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("divf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::RemF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("remf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::MinF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("minf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::MaxF(d, a, b) => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply("maxf", &[x, y]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::NegF(d, a) => {
                let x = rd!(f, n_f, "f64", a);
                let s = syms.apply("negf", &[x]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::AbsF(d, a) => {
                let x = rd!(f, n_f, "f64", a);
                let s = syms.apply("absf", &[x]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::SqrtF(d, a) => {
                let x = rd!(f, n_f, "f64", a);
                let s = syms.apply("sqrtf", &[x]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::FloorF(d, a) => {
                let x = rd!(f, n_f, "f64", a);
                let s = syms.apply("floorf", &[x]);
                wr!(f, n_f, "f64", d, s);
            }

            BOp::AddI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let s = syms.apply("addi", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::SubI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let s = syms.apply("subi", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::MulI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let s = syms.apply("muli", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::MinI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let s = syms.apply("mini", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::MaxI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let s = syms.apply("maxi", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::NegI(d, a) => {
                let x = rd!(i, n_i, "i64", a);
                let s = syms.apply("negi", &[x]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::AbsI(d, a) => {
                let x = rd!(i, n_i, "i64", a);
                let s = syms.apply("absi", &[x]);
                wr!(i, n_i, "i64", d, s);
            }

            BOp::DivI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                // Traps on live zero divisors: the check is an
                // observable effect and must stay in order.
                run.effects.push(Effect { tag: "divi.trap", id: 0, args: vec![x, y] });
                let s = syms.apply("divi", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::RemI(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                run.effects.push(Effect { tag: "remi.trap", id: 0, args: vec![x, y] });
                let s = syms.apply("remi", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::DivIUnchecked(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                run.unchecked.push((x, y, false));
                let s = syms.apply("diviu", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::RemIUnchecked(d, a, b) => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                run.unchecked.push((x, y, true));
                let s = syms.apply("remiu", &[x, y]);
                wr!(i, n_i, "i64", d, s);
            }

            BOp::EqFB(d, a, b) | BOp::NeFB(d, a, b) | BOp::LtFB(d, a, b)
            | BOp::LeFB(d, a, b) | BOp::GtFB(d, a, b) | BOp::GeFB(d, a, b) => {
                let tag = match op {
                    BOp::EqFB(..) => "eqfb",
                    BOp::NeFB(..) => "nefb",
                    BOp::LtFB(..) => "ltfb",
                    BOp::LeFB(..) => "lefb",
                    BOp::GtFB(..) => "gtfb",
                    _ => "gefb",
                };
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let s = syms.apply(tag, &[x, y]);
                wr!(b, n_b, "bool", d, s);
            }
            BOp::EqIB(d, a, b) | BOp::NeIB(d, a, b) | BOp::LtIB(d, a, b)
            | BOp::LeIB(d, a, b) | BOp::GtIB(d, a, b) | BOp::GeIB(d, a, b) => {
                let tag = match op {
                    BOp::EqIB(..) => "eqib",
                    BOp::NeIB(..) => "neib",
                    BOp::LtIB(..) => "ltib",
                    BOp::LeIB(..) => "leib",
                    BOp::GtIB(..) => "gtib",
                    _ => "geib",
                };
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let s = syms.apply(tag, &[x, y]);
                wr!(b, n_b, "bool", d, s);
            }
            BOp::EqBB(d, a, b) => {
                let (x, y) = (rd!(b, n_b, "bool", a), rd!(b, n_b, "bool", b));
                let s = syms.apply("eqbb", &[x, y]);
                wr!(b, n_b, "bool", d, s);
            }
            BOp::NeBB(d, a, b) => {
                let (x, y) = (rd!(b, n_b, "bool", a), rd!(b, n_b, "bool", b));
                let s = syms.apply("nebb", &[x, y]);
                wr!(b, n_b, "bool", d, s);
            }
            BOp::AndB(d, a, b) => {
                let (x, y) = (rd!(b, n_b, "bool", a), rd!(b, n_b, "bool", b));
                let s = syms.apply("andb", &[x, y]);
                wr!(b, n_b, "bool", d, s);
            }
            BOp::OrB(d, a, b) => {
                let (x, y) = (rd!(b, n_b, "bool", a), rd!(b, n_b, "bool", b));
                let s = syms.apply("orb", &[x, y]);
                wr!(b, n_b, "bool", d, s);
            }
            BOp::NotB(d, a) => {
                let x = rd!(b, n_b, "bool", a);
                let s = syms.apply("notb", &[x]);
                wr!(b, n_b, "bool", d, s);
            }

            BOp::F2I(d, a) => {
                let x = rd!(f, n_f, "f64", a);
                let s = syms.apply("f2i", &[x]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::I2F(d, a) => {
                let x = rd!(i, n_i, "i64", a);
                let s = syms.apply("i2f", &[x]);
                wr!(f, n_f, "f64", d, s);
            }

            BOp::SelF { dst, mask, t, e } => {
                let m = rd!(b, n_b, "bool", mask);
                let (x, y) = (rd!(f, n_f, "f64", t), rd!(f, n_f, "f64", e));
                let s = syms.apply("self", &[m, x, y]);
                wr!(f, n_f, "f64", dst, s);
            }
            BOp::SelI { dst, mask, t, e } => {
                let m = rd!(b, n_b, "bool", mask);
                let (x, y) = (rd!(i, n_i, "i64", t), rd!(i, n_i, "i64", e));
                let s = syms.apply("seli", &[m, x, y]);
                wr!(i, n_i, "i64", dst, s);
            }
            BOp::SelB { dst, mask, t, e } => {
                let m = rd!(b, n_b, "bool", mask);
                let (x, y) = (rd!(b, n_b, "bool", t), rd!(b, n_b, "bool", e));
                let s = syms.apply("selb", &[m, x, y]);
                wr!(b, n_b, "bool", dst, s);
            }

            BOp::Filter(m) => {
                let x = rd!(b, n_b, "bool", m);
                run.effects.push(Effect { tag: "filter", id: 0, args: vec![x] });
            }

            BOp::RedAddF { acc, val } => {
                let x = rd!(f, n_f, "f64", val);
                run.effects.push(Effect { tag: "redaddf", id: u64::from(acc), args: vec![x] });
            }
            BOp::RedMinF { acc, val } => {
                let x = rd!(f, n_f, "f64", val);
                run.effects.push(Effect { tag: "redminf", id: u64::from(acc), args: vec![x] });
            }
            BOp::RedMaxF { acc, val } => {
                let x = rd!(f, n_f, "f64", val);
                run.effects.push(Effect { tag: "redmaxf", id: u64::from(acc), args: vec![x] });
            }
            BOp::RedAddI { acc, val } => {
                let x = rd!(i, n_i, "i64", val);
                run.effects.push(Effect { tag: "redaddi", id: u64::from(acc), args: vec![x] });
            }
            BOp::RedMinI { acc, val } => {
                let x = rd!(i, n_i, "i64", val);
                run.effects.push(Effect { tag: "redmini", id: u64::from(acc), args: vec![x] });
            }
            BOp::RedMaxI { acc, val } => {
                let x = rd!(i, n_i, "i64", val);
                run.effects.push(Effect { tag: "redmaxi", id: u64::from(acc), args: vec![x] });
            }

            BOp::GroupAddF { sink, key, val } => {
                let k = match key {
                    KeyRef::F(s) => rd!(f, n_f, "f64", s),
                    KeyRef::I(s) => rd!(i, n_i, "i64", s),
                    KeyRef::B(s) => rd!(b, n_b, "bool", s),
                };
                let v = rd!(f, n_f, "f64", val);
                run.effects.push(Effect { tag: "groupaddf", id: u64::from(sink), args: vec![k, v] });
            }
            BOp::GroupAddI { sink, key, val } => {
                let k = match key {
                    KeyRef::F(s) => rd!(f, n_f, "f64", s),
                    KeyRef::I(s) => rd!(i, n_i, "i64", s),
                    KeyRef::B(s) => rd!(b, n_b, "bool", s),
                };
                let v = rd!(i, n_i, "i64", val);
                run.effects.push(Effect { tag: "groupaddi", id: u64::from(sink), args: vec![k, v] });
            }

            BOp::OutF(s) => {
                let x = rd!(f, n_f, "f64", s);
                run.effects.push(Effect { tag: "outf", id: 0, args: vec![x] });
            }
            BOp::OutI(s) => {
                let x = rd!(i, n_i, "i64", s);
                run.effects.push(Effect { tag: "outi", id: 0, args: vec![x] });
            }
            BOp::OutB(s) => {
                let x = rd!(b, n_b, "bool", s);
                run.effects.push(Effect { tag: "outb", id: 0, args: vec![x] });
            }

            BOp::MulAddF(d, a, b, c) => {
                // Two roundings, product first: model exactly as the
                // unfused pair so the shadow comparison is honest.
                let (x, y, z) =
                    (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b), rd!(f, n_f, "f64", c));
                let m = syms.apply("mulf", &[x, y]);
                let s = syms.apply("addf", &[m, z]);
                wr!(f, n_f, "f64", d, s);
            }
            BOp::MulAddI(d, a, b, c) => {
                let (x, y, z) =
                    (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b), rd!(i, n_i, "i64", c));
                let m = syms.apply("muli", &[x, y]);
                let s = syms.apply("addi", &[m, z]);
                wr!(i, n_i, "i64", d, s);
            }
            BOp::MulRedAddF { acc, a, b } => {
                let (x, y) = (rd!(f, n_f, "f64", a), rd!(f, n_f, "f64", b));
                let m = syms.apply("mulf", &[x, y]);
                run.effects.push(Effect { tag: "redaddf", id: u64::from(acc), args: vec![m] });
            }
            BOp::MulRedAddI { acc, a, b } => {
                let (x, y) = (rd!(i, n_i, "i64", a), rd!(i, n_i, "i64", b));
                let m = syms.apply("muli", &[x, y]);
                run.effects.push(Effect { tag: "redaddi", id: u64::from(acc), args: vec![m] });
            }
        }
    }
    Ok(run)
}

/// Checks one vectorized loop: slot dataflow on the optimized tape,
/// effect-stream equivalence against the shadow tape, re-derived
/// interval proofs for every unchecked division, and fused whole-loop
/// kernel validation.
fn check_batch(bp: &BatchProgram, rep: &mut TapeReport) -> Result<(), CheckError> {
    let mut syms = Syms::default();
    let final_run = run_batch_tape(
        &mut syms, bp.n_f, bp.n_i, bp.n_b, &bp.prologue, &bp.tape, "tape",
    )?;
    rep.dataflow += final_run.reads;

    let Some(shadow) = &bp.shadow else {
        // Hand-assembled batch program: still hold it to the div-proof
        // obligation against its own tape.
        check_div_proofs(&final_run, bp, rep)?;
        return Ok(());
    };
    let shadow_run = run_batch_tape(
        &mut syms,
        shadow.n_f,
        shadow.n_i,
        shadow.n_b,
        &shadow.prologue,
        &shadow.tape,
        "shadow",
    )?;

    // A dropped zero-guard turns a trapping DivI into DivIUnchecked
    // *after* shadow capture. Check it before the effect streams so the
    // violation is reported under the division obligation rather than
    // as the generic stream divergence it also causes.
    if final_run.unchecked.len() != shadow_run.unchecked.len() {
        return Err(err(
            ObligationKind::Div,
            format!(
                "tape has {} unchecked divisions but shadow has {} — a \
                 guard was dropped after proof recording",
                final_run.unchecked.len(),
                shadow_run.unchecked.len()
            ),
        ));
    }

    // The optimized tape must observe exactly what the shadow observes,
    // in the same order, with the same symbolic operands. Slot packing
    // may rename every register; the streams see through the renaming.
    if final_run.effects != shadow_run.effects {
        let at = final_run
            .effects
            .iter()
            .zip(&shadow_run.effects)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| final_run.effects.len().min(shadow_run.effects.len()));
        return Err(err(
            ObligationKind::Equiv,
            format!(
                "batch effect streams diverge at call {at}: tape has {:?}, shadow has {:?}",
                final_run.effects.get(at),
                shadow_run.effects.get(at)
            ),
        ));
    }
    rep.equiv += shadow_run.effects.len() as u32 + 1;

    check_div_proofs(&shadow_run, bp, rep)?;

    if let Some(fused) = &bp.fused {
        check_fused(&mut syms, fused, bp, &shadow_run, rep)?;
    }
    Ok(())
}

/// Re-derives the interval proof for every unchecked division: the k-th
/// unchecked op pairs with `div_proofs[k]` (the peephole never adds or
/// removes unchecked ops, so emission order is stable), and the proof's
/// divisor expression must *independently* re-analyze to an interval
/// excluding zero — the checker trusts `steno_analysis`, not compile.rs.
fn check_div_proofs(
    run: &BatchRun,
    bp: &BatchProgram,
    rep: &mut TapeReport,
) -> Result<(), CheckError> {
    if run.unchecked.len() != bp.div_proofs.len() {
        return Err(err(
            ObligationKind::Div,
            format!(
                "{} unchecked divisions but {} recorded proofs",
                run.unchecked.len(),
                bp.div_proofs.len()
            ),
        ));
    }
    for (k, proof) in bp.div_proofs.iter().enumerate() {
        let mut env = steno_expr::typecheck::TyEnv::new();
        for (name, ty) in &proof.env {
            env = env.with(name.clone(), ty.clone());
        }
        let facts = steno_analysis::analyze(&proof.divisor, &env);
        let ok = facts.range.is_some_and(|r| r.excludes_zero());
        if !ok {
            return Err(err(
                ObligationKind::Div,
                format!(
                    "unchecked division #{k}: recorded divisor {:?} does \
                     not re-derive an interval excluding zero (got {:?})",
                    proof.divisor, facts.range
                ),
            ));
        }
        rep.div += 1;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// (d) Fused whole-loop kernels
// ---------------------------------------------------------------------

/// Validates a fused whole-tape kernel against the shadow effect
/// stream: the kernel shape is symbolically expanded into the effect
/// stream(s) it claims to implement, and one of them must equal what
/// the shadow tape actually observes per element. Multiple candidates
/// arise where distinct tapes legally map to one shape (`a*x+b` with
/// `a == 1` also matches a plain `x + b` tape).
fn check_fused(
    syms: &mut Syms,
    fused: &crate::fuse_kernels::FusedTape,
    bp: &BatchProgram,
    shadow_run: &BatchRun,
    rep: &mut TapeReport,
) -> Result<(), CheckError> {
    use crate::fuse_kernels::{CmpK, FoldKind, FusedTape, MapF, MapI, PredI, ScalF, ScalI};

    let x = syms.intern(SymKey::SrcElem);
    let sf = |syms: &mut Syms, s: ScalF| match s {
        ScalF::Lit(v) => syms.cf(v),
        ScalF::Param(p) => syms.intern(SymKey::ParamF(p)),
    };
    let si = |syms: &mut Syms, s: ScalI| match s {
        ScalI::Lit(v) => syms.ci(v),
        ScalI::Param(p) => syms.intern(SymKey::ParamI(p)),
    };
    fn cmp_tag(k: CmpK, float: bool) -> &'static str {
        match (k, float) {
            (CmpK::Eq, true) => "eqfb",
            (CmpK::Ne, true) => "nefb",
            (CmpK::Lt, true) => "ltfb",
            (CmpK::Le, true) => "lefb",
            (CmpK::Gt, true) => "gtfb",
            (CmpK::Ge, true) => "gefb",
            (CmpK::Eq, false) => "eqib",
            (CmpK::Ne, false) => "neib",
            (CmpK::Lt, false) => "ltib",
            (CmpK::Le, false) => "leib",
            (CmpK::Gt, false) => "gtib",
            (CmpK::Ge, false) => "geib",
        }
    }
    let acc_ok = |acc: u8, float: bool| -> Result<(), CheckError> {
        let n = if float { bp.f_accs.len() } else { bp.i_accs.len() };
        if (acc as usize) < n {
            Ok(())
        } else {
            Err(err(
                ObligationKind::Dataflow,
                format!(
                    "fused kernel accumulator {} out of bounds ({} {} accs)",
                    acc,
                    n,
                    if float { "f64" } else { "i64" }
                ),
            ))
        }
    };

    // Candidate map symbols (each a per-element value).
    let map_f = |syms: &mut Syms, m: &MapF| -> Vec<Sym> {
        match *m {
            MapF::X => vec![x],
            MapF::Sq => vec![syms.apply("mulf", &[x, x])],
            MapF::MulKR(k) => {
                let k = sf(syms, k);
                vec![syms.apply("mulf", &[x, k])]
            }
            MapF::MulKL(k) => {
                let k = sf(syms, k);
                vec![syms.apply("mulf", &[k, x])]
            }
            MapF::K(k) => vec![sf(syms, k)],
        }
    };
    let map_i = |syms: &mut Syms, m: &MapI| -> Vec<Sym> {
        match *m {
            MapI::X => vec![x],
            MapI::Sq => vec![syms.apply("muli", &[x, x])],
            MapI::MulK(k) => {
                let k = si(syms, k);
                vec![syms.apply("muli", &[x, k])]
            }
            MapI::Lin(a, b) => {
                let (av, bv) = (si(syms, a), si(syms, b));
                let ax = syms.apply("muli", &[av, x]);
                let mut c = vec![syms.apply("addi", &[ax, bv])];
                if a == ScalI::Lit(1) {
                    c.push(syms.apply("addi", &[x, bv]));
                }
                c
            }
            MapI::K(k) => vec![si(syms, k)],
        }
    };
    let pred_f = |syms: &mut Syms, p: &(CmpK, ScalF)| -> Vec<Sym> {
        let c = sf(syms, p.1);
        vec![syms.apply(cmp_tag(p.0, true), &[x, c])]
    };
    let pred_i = |syms: &mut Syms, p: &PredI| -> Vec<Sym> {
        match *p {
            PredI::Cmp(k, c) => {
                let c = si(syms, c);
                vec![syms.apply(cmp_tag(k, false), &[x, c])]
            }
            PredI::RemCmp { m, r, ne } => {
                let (mv, rv) = (si(syms, m), si(syms, r));
                let rem = syms.apply("remiu", &[x, mv]);
                vec![syms.apply(if ne { "neib" } else { "eqib" }, &[rem, rv])]
            }
        }
    };

    // Expected streams: cross product of pred candidates × map/value
    // candidates, each `[Filter?, reduction]`.
    let streams = |preds: Vec<Option<Sym>>, tag: &'static str, id: u64, vals: Vec<Sym>| -> Vec<Vec<Effect>> {
        let mut out = Vec::new();
        for p in &preds {
            for &v in &vals {
                let mut s = Vec::new();
                if let Some(m) = p {
                    s.push(Effect { tag: "filter", id: 0, args: vec![*m] });
                }
                s.push(Effect { tag, id, args: vec![v] });
                out.push(s);
            }
        }
        out
    };

    let candidates: Vec<Vec<Effect>> = match fused {
        FusedTape::SumF { pred, map, acc } => {
            acc_ok(*acc, true)?;
            let preds = match pred {
                Some(p) => pred_f(syms, p).into_iter().map(Some).collect(),
                None => vec![None],
            };
            let vals = map_f(syms, map);
            streams(preds, "redaddf", u64::from(*acc), vals)
        }
        FusedTape::SumI { pred, map, acc } => {
            acc_ok(*acc, false)?;
            let preds = match pred {
                Some(p) => pred_i(syms, p).into_iter().map(Some).collect(),
                None => vec![None],
            };
            let vals = map_i(syms, map);
            streams(preds, "redaddi", u64::from(*acc), vals)
        }
        FusedTape::FoldF { kind, pred, map, acc } => {
            acc_ok(*acc, true)?;
            let preds = match pred {
                Some(p) => pred_f(syms, p).into_iter().map(Some).collect(),
                None => vec![None],
            };
            let vals = map_f(syms, map);
            let tag = match kind {
                FoldKind::Min => "redminf",
                FoldKind::Max => "redmaxf",
            };
            streams(preds, tag, u64::from(*acc), vals)
        }
        FusedTape::FoldI { kind, pred, map, acc } => {
            acc_ok(*acc, false)?;
            let preds = match pred {
                Some(p) => pred_i(syms, p).into_iter().map(Some).collect(),
                None => vec![None],
            };
            let vals = map_i(syms, map);
            let tag = match kind {
                FoldKind::Min => "redmini",
                FoldKind::Max => "redmaxi",
            };
            streams(preds, tag, u64::from(*acc), vals)
        }
        FusedTape::SelRemDivLinI { m, r, d, a, b, acc } => {
            // acc += x%m==r ? x/d : a*x+b — the tape form is an
            // unconditional reduction of a lane-wise select; both the
            // `==`-ordered and `!=`-branch-swapped selects are legal.
            acc_ok(*acc, false)?;
            let (mv, rv, dv, av, bv) =
                (syms.ci(*m), syms.ci(*r), syms.ci(*d), syms.ci(*a), syms.ci(*b));
            let rem = syms.apply("remiu", &[x, mv]);
            let div = syms.apply("diviu", &[x, dv]);
            let ax = syms.apply("muli", &[av, x]);
            let mut lins = vec![syms.apply("addi", &[ax, bv])];
            if *a == 1 {
                lins.push(syms.apply("addi", &[x, bv]));
            }
            let ceq = syms.apply("eqib", &[rem, rv]);
            let cne = syms.apply("neib", &[rem, rv]);
            let mut out = Vec::new();
            for &lin in &lins {
                for &val in &[
                    syms.apply("seli", &[ceq, div, lin]),
                    syms.apply("seli", &[cne, lin, div]),
                ] {
                    out.push(vec![Effect {
                        tag: "redaddi",
                        id: u64::from(*acc),
                        args: vec![val],
                    }]);
                }
            }
            out
        }
    };

    if !candidates.contains(&shadow_run.effects) {
        return Err(err(
            ObligationKind::Equiv,
            format!(
                "fused kernel `{}` does not match the shadow tape: expected \
                 one of {} candidate effect streams, shadow observes {:?}",
                fused.label(),
                candidates.len(),
                shadow_run.effects
            ),
        ));
    }
    rep.equiv += 1;
    Ok(())
}

// ---------------------------------------------------------------------
// (d) Scalar equivalence: cut-point bisimulation against the shadow
// ---------------------------------------------------------------------

/// Per-pc live-in register sets of the shadow tape (backward dataflow
/// over [`instr_io`]). Only registers the *shadow* still needs are
/// compared at cut points; everything else the optimizer may freely
/// clobber, reuse, or leave stale.
fn shadow_liveness(instrs: &[Instr], counts: [u32; 3]) -> Vec<[Bits; 3]> {
    let n = instrs.len();
    let empty = [
        Bits::empty(counts[0] as usize),
        Bits::empty(counts[1] as usize),
        Bits::empty(counts[2] as usize),
    ];
    let mut live_in: Vec<[Bits; 3]> = vec![empty; n];
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= 4 * n + 8 {
        changed = false;
        rounds += 1;
        for pc in (0..n).rev() {
            // live_out = union of successors' live_in.
            let mut out = [
                Bits::empty(counts[0] as usize),
                Bits::empty(counts[1] as usize),
                Bits::empty(counts[2] as usize),
            ];
            for (t, _) in successors(instrs, pc) {
                if let Some(succ) = live_in.get(t) {
                    for (o, s) in out.iter_mut().zip(succ) {
                        o.union(s);
                    }
                }
            }
            // live_in = (live_out - writes) ∪ reads.
            let mut writes = [
                Bits::empty(counts[0] as usize),
                Bits::empty(counts[1] as usize),
                Bits::empty(counts[2] as usize),
            ];
            let mut reads = writes.clone();
            instr_io(&instrs[pc], |bank, reg, is_write| {
                if is_write {
                    writes[bank_idx(bank)].set(reg);
                } else {
                    reads[bank_idx(bank)].set(reg);
                }
            });
            for b in 0..3 {
                for w in 0..out[b].0.len() {
                    let v = (out[b].0[w] & !writes[b].0[w]) | reads[b].0[w];
                    if v != live_in[pc][b].0[w] {
                        live_in[pc][b].0[w] = v;
                        changed = true;
                    }
                }
            }
        }
    }
    live_in
}

/// Symbolic register file for one side of a bisimulation segment.
#[derive(Clone)]
struct SegState {
    f: Vec<Sym>,
    i: Vec<Sym>,
    v: Vec<Sym>,
}

/// How a straight-line segment ended.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Ending {
    /// Halted: which halt instruction, with its operand symbol.
    Halt(&'static str, Option<Sym>),
    /// Unconditional transfer to `target`.
    Uncond(usize),
    /// Conditional transfer: `t` when `cond` is true, else `f`.
    Cond { cond: Sym, t: usize, f: usize },
}

fn scalar_cmp_tag(op: crate::instr::CmpOp, float: bool) -> &'static str {
    use crate::instr::CmpOp;
    match (op, float) {
        (CmpOp::Eq, true) => "eqf",
        (CmpOp::Ne, true) => "nef",
        (CmpOp::Lt, true) => "ltf",
        (CmpOp::Le, true) => "lef",
        (CmpOp::Gt, true) => "gtf",
        (CmpOp::Ge, true) => "gef",
        (CmpOp::Eq, false) => "eqi",
        (CmpOp::Ne, false) => "nei",
        (CmpOp::Lt, false) => "lti",
        (CmpOp::Le, false) => "lei",
        (CmpOp::Gt, false) => "gti",
        (CmpOp::Ge, false) => "gei",
    }
}

/// Executes the straight-line segment starting at `pc` until a control
/// transfer or halt, updating `st` and appending observed effects.
/// Effect results are drawn from `EffectRes(pair, k, out)` so that the
/// two sides — once their effect calls are proven identical — continue
/// with the same unknowns.
fn run_scalar_seg(
    syms: &mut Syms,
    st: &mut SegState,
    instrs: &[Instr],
    mut pc: usize,
    pair: u32,
    effects: &mut Vec<Effect>,
    who: &str,
) -> Result<Ending, CheckError> {
    let mut steps = 0usize;
    loop {
        steps += 1;
        if steps > instrs.len() + 1 {
            return Err(err(
                ObligationKind::Equiv,
                format!("{who} segment at pc {pc} does not reach a transfer"),
            ));
        }
        let Some(ins) = instrs.get(pc) else {
            return Err(err(
                ObligationKind::Equiv,
                format!("{who} segment ran past the end of the tape at pc {pc}"),
            ));
        };
        // Effect helper: record the call, mint shared result symbols.
        macro_rules! eff {
            ($tag:expr, $id:expr, $args:expr) => {{
                let k = effects.len() as u32;
                effects.push(Effect { tag: $tag, id: $id, args: $args });
                move |out: u32, syms: &mut Syms| {
                    syms.intern(SymKey::EffectRes(pair, k, out))
                }
            }};
        }
        match ins {
            // ---- transfers & halts: end the segment -----------------
            Instr::Jump(t) => return Ok(Ending::Uncond(*t as usize)),
            Instr::JumpIfTrue(r, t) => {
                return Ok(Ending::Cond {
                    cond: st.i[*r as usize],
                    t: *t as usize,
                    f: pc + 1,
                })
            }
            Instr::JumpIfFalse(r, t) => {
                return Ok(Ending::Cond {
                    cond: st.i[*r as usize],
                    t: pc + 1,
                    f: *t as usize,
                })
            }
            Instr::BrCmpF { op, a, b, on_true, target } => {
                let (x, y) = (st.f[*a as usize], st.f[*b as usize]);
                let cond = syms.apply(scalar_cmp_tag(*op, true), &[x, y]);
                let (t, f) = if *on_true {
                    (*target as usize, pc + 1)
                } else {
                    (pc + 1, *target as usize)
                };
                return Ok(Ending::Cond { cond, t, f });
            }
            Instr::BrCmpI { op, a, b, on_true, target } => {
                let (x, y) = (st.i[*a as usize], st.i[*b as usize]);
                let cond = syms.apply(scalar_cmp_tag(*op, false), &[x, y]);
                let (t, f) = if *on_true {
                    (*target as usize, pc + 1)
                } else {
                    (pc + 1, *target as usize)
                };
                return Ok(Ending::Cond { cond, t, f });
            }
            Instr::IncJump { r, target } => {
                let one = syms.ci(1);
                let x = st.i[*r as usize];
                st.i[*r as usize] = syms.apply("addi", &[x, one]);
                return Ok(Ending::Uncond(*target as usize));
            }
            Instr::HaltF(r) => return Ok(Ending::Halt("haltf", Some(st.f[*r as usize]))),
            Instr::HaltI(r) => return Ok(Ending::Halt("halti", Some(st.i[*r as usize]))),
            Instr::HaltB(r) => return Ok(Ending::Halt("haltb", Some(st.i[*r as usize]))),
            Instr::HaltV(r) => return Ok(Ending::Halt("haltv", Some(st.v[*r as usize]))),
            Instr::HaltOut => return Ok(Ending::Halt("haltout", None)),

            // ---- pure scalar compute --------------------------------
            Instr::ConstF(d, v) => st.f[*d as usize] = syms.cf(*v),
            Instr::ConstI(d, v) => st.i[*d as usize] = syms.ci(*v),
            Instr::ConstV(d, v) => {
                st.v[*d as usize] = syms.intern(SymKey::ConstV(format!("{v:?}")))
            }
            Instr::MovF(d, s) => st.f[*d as usize] = st.f[*s as usize],
            Instr::MovI(d, s) => st.i[*d as usize] = st.i[*s as usize],
            Instr::MovV(d, s) => st.v[*d as usize] = st.v[*s as usize],
            Instr::AddF(d, a, b) | Instr::SubF(d, a, b) | Instr::MulF(d, a, b)
            | Instr::DivF(d, a, b) | Instr::RemF(d, a, b) | Instr::MinF(d, a, b)
            | Instr::MaxF(d, a, b) => {
                let tag = match ins {
                    Instr::AddF(..) => "addf",
                    Instr::SubF(..) => "subf",
                    Instr::MulF(..) => "mulf",
                    Instr::DivF(..) => "divf",
                    Instr::RemF(..) => "remf",
                    Instr::MinF(..) => "minf",
                    _ => "maxf",
                };
                let (x, y) = (st.f[*a as usize], st.f[*b as usize]);
                st.f[*d as usize] = syms.apply(tag, &[x, y]);
            }
            Instr::NegF(d, a) | Instr::AbsF(d, a) | Instr::SqrtF(d, a)
            | Instr::FloorF(d, a) => {
                let tag = match ins {
                    Instr::NegF(..) => "negf",
                    Instr::AbsF(..) => "absf",
                    Instr::SqrtF(..) => "sqrtf",
                    _ => "floorf",
                };
                let x = st.f[*a as usize];
                st.f[*d as usize] = syms.apply(tag, &[x]);
            }
            Instr::AddI(d, a, b) | Instr::SubI(d, a, b) | Instr::MulI(d, a, b)
            | Instr::MinI(d, a, b) | Instr::MaxI(d, a, b) => {
                let tag = match ins {
                    Instr::AddI(..) => "addi",
                    Instr::SubI(..) => "subi",
                    Instr::MulI(..) => "muli",
                    Instr::MinI(..) => "mini",
                    _ => "maxi",
                };
                let (x, y) = (st.i[*a as usize], st.i[*b as usize]);
                st.i[*d as usize] = syms.apply(tag, &[x, y]);
            }
            Instr::NegI(d, a) | Instr::AbsI(d, a) | Instr::NotB(d, a) => {
                let tag = match ins {
                    Instr::NegI(..) => "negi",
                    Instr::AbsI(..) => "absi",
                    _ => "notb",
                };
                let x = st.i[*a as usize];
                st.i[*d as usize] = syms.apply(tag, &[x]);
            }
            Instr::IncI(r) => {
                let one = syms.ci(1);
                let x = st.i[*r as usize];
                st.i[*r as usize] = syms.apply("addi", &[x, one]);
            }
            Instr::EqF(d, a, b) | Instr::NeF(d, a, b) | Instr::LtF(d, a, b)
            | Instr::LeF(d, a, b) | Instr::GtF(d, a, b) | Instr::GeF(d, a, b) => {
                let tag = match ins {
                    Instr::EqF(..) => "eqf",
                    Instr::NeF(..) => "nef",
                    Instr::LtF(..) => "ltf",
                    Instr::LeF(..) => "lef",
                    Instr::GtF(..) => "gtf",
                    _ => "gef",
                };
                let (x, y) = (st.f[*a as usize], st.f[*b as usize]);
                st.i[*d as usize] = syms.apply(tag, &[x, y]);
            }
            Instr::EqI(d, a, b) | Instr::NeI(d, a, b) | Instr::LtI(d, a, b)
            | Instr::LeI(d, a, b) | Instr::GtI(d, a, b) | Instr::GeI(d, a, b) => {
                let tag = match ins {
                    Instr::EqI(..) => "eqi",
                    Instr::NeI(..) => "nei",
                    Instr::LtI(..) => "lti",
                    Instr::LeI(..) => "lei",
                    Instr::GtI(..) => "gti",
                    _ => "gei",
                };
                let (x, y) = (st.i[*a as usize], st.i[*b as usize]);
                st.i[*d as usize] = syms.apply(tag, &[x, y]);
            }
            Instr::EqV(d, a, b) => {
                let (x, y) = (st.v[*a as usize], st.v[*b as usize]);
                st.i[*d as usize] = syms.apply("eqv", &[x, y]);
            }
            Instr::CmpV(d, a, b) => {
                let (x, y) = (st.v[*a as usize], st.v[*b as usize]);
                st.i[*d as usize] = syms.apply("cmpv", &[x, y]);
            }
            Instr::F2I(d, a) => {
                let x = st.f[*a as usize];
                st.i[*d as usize] = syms.apply("f2i", &[x]);
            }
            Instr::I2F(d, a) => {
                let x = st.i[*a as usize];
                st.f[*d as usize] = syms.apply("i2f", &[x]);
            }
            Instr::FToV(d, a) => {
                let x = st.f[*a as usize];
                st.v[*d as usize] = syms.apply("ftov", &[x]);
            }
            Instr::IToV(d, a) => {
                let x = st.i[*a as usize];
                st.v[*d as usize] = syms.apply("itov", &[x]);
            }
            Instr::BToV(d, a) => {
                let x = st.i[*a as usize];
                st.v[*d as usize] = syms.apply("btov", &[x]);
            }
            Instr::MkPair(d, a, b) => {
                let (x, y) = (st.v[*a as usize], st.v[*b as usize]);
                st.v[*d as usize] = syms.apply("mkpair", &[x, y]);
            }
            Instr::MulAddF(d, a, b, c) => {
                // Exactly the pair it fuses: two roundings, product left.
                let (x, y, z) =
                    (st.f[*a as usize], st.f[*b as usize], st.f[*c as usize]);
                let m = syms.apply("mulf", &[x, y]);
                st.f[*d as usize] = syms.apply("addf", &[m, z]);
            }
            Instr::MulAddI(d, a, b, c) => {
                let (x, y, z) =
                    (st.i[*a as usize], st.i[*b as usize], st.i[*c as usize]);
                let m = syms.apply("muli", &[x, y]);
                st.i[*d as usize] = syms.apply("addi", &[m, z]);
            }

            // ---- effects (can trap or touch shared state; order is
            // observable and must match the shadow call-by-call) ------
            Instr::VToF(d, a) => {
                let x = st.v[*a as usize];
                let res = eff!("vtof", 0, vec![x]);
                st.f[*d as usize] = res(0, syms);
            }
            Instr::VToI(d, a) => {
                let x = st.v[*a as usize];
                let res = eff!("vtoi", 0, vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::VToB(d, a) => {
                let x = st.v[*a as usize];
                let res = eff!("vtob", 0, vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::Field0(d, v) => {
                let x = st.v[*v as usize];
                let res = eff!("field0", 0, vec![x]);
                st.v[*d as usize] = res(0, syms);
            }
            Instr::Field1(d, v) => {
                let x = st.v[*v as usize];
                let res = eff!("field1", 0, vec![x]);
                st.v[*d as usize] = res(0, syms);
            }
            Instr::RowIdx(d, v, i) => {
                let (x, y) = (st.v[*v as usize], st.i[*i as usize]);
                let res = eff!("rowidx", 0, vec![x, y]);
                st.f[*d as usize] = res(0, syms);
            }
            Instr::RowLen(d, v) => {
                let x = st.v[*v as usize];
                let res = eff!("rowlen", 0, vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::SeqLen(d, v) => {
                let x = st.v[*v as usize];
                let res = eff!("seqlen", 0, vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::SeqIdx(d, v, i) => {
                let (x, y) = (st.v[*v as usize], st.i[*i as usize]);
                let res = eff!("seqidx", 0, vec![x, y]);
                st.v[*d as usize] = res(0, syms);
            }
            Instr::DivI(d, a, b) => {
                let (x, y) = (st.i[*a as usize], st.i[*b as usize]);
                let res = eff!("divi.trap", 0, vec![x, y]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::RemI(d, a, b) => {
                let (x, y) = (st.i[*a as usize], st.i[*b as usize]);
                let res = eff!("remi.trap", 0, vec![x, y]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::CallUdf { dst, udf, args } => {
                let ops: Vec<Sym> = args.iter().map(|r| st.v[*r as usize]).collect();
                let res = eff!("calludf", u64::from(*udf), ops);
                st.v[*dst as usize] = res(0, syms);
            }
            Instr::SrcLen(d, src) => {
                let res = eff!("srclen", u64::from(*src), vec![]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::SrcGetF(d, src, i) => {
                let x = st.i[*i as usize];
                let res = eff!("srcgetf", u64::from(*src), vec![x]);
                st.f[*d as usize] = res(0, syms);
            }
            Instr::SrcGetI(d, src, i) => {
                let x = st.i[*i as usize];
                let res = eff!("srcgeti", u64::from(*src), vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::SrcGetB(d, src, i) => {
                let x = st.i[*i as usize];
                let res = eff!("srcgetb", u64::from(*src), vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::SrcGetV(d, src, i) => {
                let x = st.i[*i as usize];
                let res = eff!("srcgetv", u64::from(*src), vec![x]);
                st.v[*d as usize] = res(0, syms);
            }
            Instr::SinkNewGroup(s) => {
                let _ = eff!("sinknewgroup", u64::from(*s), vec![]);
            }
            Instr::SinkNewGroupAggV(s, r) => {
                let x = st.v[*r as usize];
                let _ = eff!("sinknewgroupaggv", u64::from(*s), vec![x]);
            }
            Instr::SinkNewGroupAggF(s, r) => {
                let x = st.f[*r as usize];
                let _ = eff!("sinknewgroupaggf", u64::from(*s), vec![x]);
            }
            Instr::SinkNewGroupAggI(s, r) => {
                let x = st.i[*r as usize];
                let _ = eff!("sinknewgroupaggi", u64::from(*s), vec![x]);
            }
            Instr::SinkNewGroupAggSF(s, r) => {
                let x = st.f[*r as usize];
                let _ = eff!("sinknewgroupaggsf", u64::from(*s), vec![x]);
            }
            Instr::SinkNewGroupAggSI(s, r) => {
                let x = st.i[*r as usize];
                let _ = eff!("sinknewgroupaggsi", u64::from(*s), vec![x]);
            }
            Instr::SinkNewSorted(s, desc) => {
                let _ = eff!("sinknewsorted", (u64::from(*s) << 1) | u64::from(*desc), vec![]);
            }
            Instr::SinkNewDistinct(s) => {
                let _ = eff!("sinknewdistinct", u64::from(*s), vec![]);
            }
            Instr::SinkNewVec(s) => {
                let _ = eff!("sinknewvec", u64::from(*s), vec![]);
            }
            Instr::GroupPut(s, k, v) => {
                let (x, y) = (st.v[*k as usize], st.v[*v as usize]);
                let _ = eff!("groupput", u64::from(*s), vec![x, y]);
            }
            Instr::GroupAccLoadV(s, d, k) => {
                let x = st.v[*k as usize];
                let res = eff!("gaccloadv", u64::from(*s), vec![x]);
                st.v[*d as usize] = res(0, syms);
            }
            Instr::GroupAccStoreV(s, r) => {
                let x = st.v[*r as usize];
                let _ = eff!("gaccstorev", u64::from(*s), vec![x]);
            }
            Instr::GroupAccLoadF(s, d, k) => {
                let x = st.v[*k as usize];
                let res = eff!("gaccloadf", u64::from(*s), vec![x]);
                st.f[*d as usize] = res(0, syms);
            }
            Instr::GroupAccStoreF(s, r) => {
                let x = st.f[*r as usize];
                let _ = eff!("gaccstoref", u64::from(*s), vec![x]);
            }
            Instr::GroupAccLoadI(s, d, k) => {
                let x = st.v[*k as usize];
                let res = eff!("gaccloadi", u64::from(*s), vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::GroupAccStoreI(s, r) => {
                let x = st.i[*r as usize];
                let _ = eff!("gaccstorei", u64::from(*s), vec![x]);
            }
            Instr::GroupAccLoadSF(s, d, k) => {
                let x = match k {
                    SKey::F(r) => st.f[*r as usize],
                    SKey::I(r) | SKey::B(r) => st.i[*r as usize],
                };
                let res = eff!("gaccloadsf", u64::from(*s), vec![x]);
                st.f[*d as usize] = res(0, syms);
            }
            Instr::GroupAccLoadSI(s, d, k) => {
                let x = match k {
                    SKey::F(r) => st.f[*r as usize],
                    SKey::I(r) | SKey::B(r) => st.i[*r as usize],
                };
                let res = eff!("gaccloadsi", u64::from(*s), vec![x]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::GroupAccStoreSF(s, r) => {
                let x = st.f[*r as usize];
                let _ = eff!("gaccstoresf", u64::from(*s), vec![x]);
            }
            Instr::GroupAccStoreSI(s, r) => {
                let x = st.i[*r as usize];
                let _ = eff!("gaccstoresi", u64::from(*s), vec![x]);
            }
            Instr::SinkPush(s, v) => {
                let x = st.v[*v as usize];
                let _ = eff!("sinkpush", u64::from(*s), vec![x]);
            }
            Instr::SinkPushKeyed(s, k, v) => {
                let (x, y) = (st.v[*k as usize], st.v[*v as usize]);
                let _ = eff!("sinkpushkeyed", u64::from(*s), vec![x, y]);
            }
            Instr::SinkSeal(s) => {
                let _ = eff!("sinkseal", u64::from(*s), vec![]);
            }
            Instr::SinkFreeze(s) => {
                let _ = eff!("sinkfreeze", u64::from(*s), vec![]);
            }
            Instr::SinkLen(d, s) => {
                let res = eff!("sinklen", u64::from(*s), vec![]);
                st.i[*d as usize] = res(0, syms);
            }
            Instr::SinkGet(d, s, i) => {
                let x = st.i[*i as usize];
                let res = eff!("sinkget", u64::from(*s), vec![x]);
                st.v[*d as usize] = res(0, syms);
            }
            Instr::OutPush(v) => {
                let x = st.v[*v as usize];
                let _ = eff!("outpush", 0, vec![x]);
            }
            Instr::FusedLoop(k) => {
                // Same Arc on both sides (the passes clone the instr
                // vec, not the kernel), so the pointer identifies it;
                // the kernel body itself is not re-verified here.
                let mut ops: Vec<Sym> =
                    k.params.iter().map(|r| st.f[*r as usize]).collect();
                ops.extend(k.accs.iter().map(|r| st.f[*r as usize]));
                let res = eff!("fusedloop", Arc::as_ptr(k) as u64, ops);
                for (out, r) in k.accs.iter().enumerate() {
                    st.f[*r as usize] = res(out as u32, syms);
                }
            }
            Instr::BatchLoop(b) => {
                let mut ops: Vec<Sym> =
                    b.f_params.iter().map(|r| st.f[*r as usize]).collect();
                ops.extend(b.i_params.iter().map(|r| st.i[*r as usize]));
                ops.extend(b.f_accs.iter().map(|r| st.f[*r as usize]));
                ops.extend(b.i_accs.iter().map(|r| st.i[*r as usize]));
                let res = eff!("batchloop", Arc::as_ptr(b) as u64, ops);
                let mut out = 0u32;
                for r in &b.f_accs {
                    st.f[*r as usize] = res(out, syms);
                    out += 1;
                }
                for r in &b.i_accs {
                    st.i[*r as usize] = res(out, syms);
                    out += 1;
                }
            }
        }
        pc += 1;
    }
}

/// Proves the optimized scalar tape equivalent to its pre-optimization
/// shadow by cut-point bisimulation.
///
/// Cut points are pairs `(shadow pc, optimized pc)` reached together,
/// starting from `(0, 0)`. At each pair the shadow side havocs every
/// register it no longer needs (per its own liveness) and binds the
/// live ones to fresh shared unknowns; both straight-line segments are
/// then executed symbolically and must observe identical effect
/// streams, end the same way (same halt value, same branch condition),
/// and agree on every live register along each outgoing edge. The
/// optimized side additionally carries the values it holds in
/// shadow-dead registers across cut points (joined monotonically), which
/// is what lets hoisted loop-invariant constants prove out: the shadow
/// recomputes the constant inside the loop, the optimized tape carries
/// it from the preamble, and both intern to the same symbol.
fn check_scalar_equiv(
    shadow: &ScalarShadow,
    p: &Program,
    rep: &mut TapeReport,
) -> Result<(), CheckError> {
    // The shadow must itself be well-formed before we treat it as the
    // reference semantics.
    check_cfg(&shadow.instrs, &mut TapeReport::default()).map_err(|e| {
        err(ObligationKind::Equiv, format!("shadow tape is malformed: {e}"))
    })?;

    // Size the symbolic register files to cover both tapes, whatever
    // their declared frame counts claim.
    let mut counts = [
        shadow.n_fregs.max(p.n_fregs),
        shadow.n_iregs.max(p.n_iregs),
        shadow.n_vregs.max(p.n_vregs),
    ];
    for ins in shadow.instrs.iter().chain(&p.instrs) {
        instr_io(ins, |bank, reg, _| {
            let c = &mut counts[bank_idx(bank)];
            *c = (*c).max(reg + 1);
        });
    }
    let live = shadow_liveness(
        &shadow.instrs,
        [shadow.n_fregs, shadow.n_iregs, shadow.n_vregs],
    );

    // Cut-point table: (shadow pc, optimized pc) → pair id.
    let mut pair_ids: HashMap<(usize, usize), u32> = HashMap::new();
    let mut pair_pcs: Vec<(usize, usize)> = Vec::new();
    // Optimized-side entry values per pair, joined over incoming edges.
    let mut t_entry: Vec<SegState> = Vec::new();
    // Shadow-side entry values per pair, fixed at creation: live-in
    // registers hold shared unknowns, dead ones are havocked. Interned
    // once here so each worklist visit is a plain clone, not a fresh
    // interner pass over the whole register file.
    let mut s_entry: Vec<SegState> = Vec::new();
    let mut syms = Syms::default();
    let mut work: Vec<u32> = Vec::new();

    let entry_state =
        |syms: &mut Syms, pair: u32, counts: [u32; 3], live_at: &[Bits; 3]| SegState {
            f: (0..counts[0])
                .map(|r| {
                    if live_at[0].get(r) {
                        syms.intern(SymKey::CutVal(pair, 0, r))
                    } else {
                        syms.intern(SymKey::Undef(pair, 0, r))
                    }
                })
                .collect(),
            i: (0..counts[1])
                .map(|r| {
                    if live_at[1].get(r) {
                        syms.intern(SymKey::CutVal(pair, 1, r))
                    } else {
                        syms.intern(SymKey::Undef(pair, 1, r))
                    }
                })
                .collect(),
            v: (0..counts[2])
                .map(|r| {
                    if live_at[2].get(r) {
                        syms.intern(SymKey::CutVal(pair, 2, r))
                    } else {
                        syms.intern(SymKey::Undef(pair, 2, r))
                    }
                })
                .collect(),
        };
    let no_live = [Bits::empty(0), Bits::empty(0), Bits::empty(0)];

    pair_ids.insert((0, 0), 0);
    pair_pcs.push((0, 0));
    let live0 = live.first().unwrap_or(&no_live).clone();
    let e0 = entry_state(&mut syms, 0, counts, &live0);
    // The optimized side enters with the same shared unknowns in
    // live-in registers; dead registers start as the shadow's havoc
    // values too (nothing has been carried in yet).
    t_entry.push(e0.clone());
    s_entry.push(e0);
    work.push(0);

    let pair_cap = 4 * (shadow.instrs.len() + p.instrs.len()) + 16;
    let mut steps = 0usize;
    while let Some(pair) = work.pop() {
        steps += 1;
        if steps > 16 * pair_cap {
            return Err(err(
                ObligationKind::Equiv,
                "bisimulation budget exceeded".to_string(),
            ));
        }
        let (s_pc, t_pc) = pair_pcs[pair as usize];
        let live_at = live.get(s_pc).unwrap_or(&no_live);

        // Shadow side: live-in registers get shared unknowns, the rest
        // are havocked (any value the optimizer left there is fine).
        // Both were interned when the pair was created.
        let mut s_st = s_entry[pair as usize].clone();
        // Optimized side: carried values, except live registers are the
        // same shared unknowns (proven equal when this edge was taken).
        let mut t_st = t_entry[pair as usize].clone();
        for (b, (bank, cuts)) in [
            (&mut t_st.f, &s_st.f),
            (&mut t_st.i, &s_st.i),
            (&mut t_st.v, &s_st.v),
        ]
        .into_iter()
        .enumerate()
        {
            for (r, slot) in bank.iter_mut().enumerate() {
                if live_at[b].get(r as u32) {
                    *slot = cuts[r];
                }
            }
        }

        let mut s_eff = Vec::new();
        let mut t_eff = Vec::new();
        let s_end = run_scalar_seg(
            &mut syms, &mut s_st, &shadow.instrs, s_pc, pair, &mut s_eff, "shadow",
        )?;
        let t_end = run_scalar_seg(
            &mut syms, &mut t_st, &p.instrs, t_pc, pair, &mut t_eff, "tape",
        )?;

        if s_eff != t_eff {
            let at = s_eff
                .iter()
                .zip(&t_eff)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| s_eff.len().min(t_eff.len()));
            return Err(err(
                ObligationKind::Equiv,
                format!(
                    "cut (pc {s_pc}, pc {t_pc}): effect streams diverge at \
                     call {at}: shadow {:?}, tape {:?}",
                    s_eff.get(at),
                    t_eff.get(at)
                ),
            ));
        }

        // Match endings and collect successor cut pairs.
        let succ: Vec<(usize, usize)> = match (&s_end, &t_end) {
            (Ending::Halt(st_, sv), Ending::Halt(tt, tv)) => {
                if st_ != tt || sv != tv {
                    return Err(err(
                        ObligationKind::Equiv,
                        format!(
                            "cut (pc {s_pc}, pc {t_pc}): halts disagree: \
                             shadow {s_end:?}, tape {t_end:?}"
                        ),
                    ));
                }
                vec![]
            }
            (Ending::Uncond(st_), Ending::Uncond(tt)) => vec![(*st_, *tt)],
            (
                Ending::Cond { cond: sc, t: st_, f: sf_ },
                Ending::Cond { cond: tc, t: tt, f: tf },
            ) => {
                if sc != tc {
                    return Err(err(
                        ObligationKind::Equiv,
                        format!(
                            "cut (pc {s_pc}, pc {t_pc}): branch conditions \
                             disagree (shadow sym {sc}, tape sym {tc})"
                        ),
                    ));
                }
                vec![(*st_, *tt), (*sf_, *tf)]
            }
            _ => {
                return Err(err(
                    ObligationKind::Equiv,
                    format!(
                        "cut (pc {s_pc}, pc {t_pc}): segment endings \
                         disagree: shadow {s_end:?}, tape {t_end:?}"
                    ),
                ));
            }
        };

        for (s_next, t_next) in succ {
            // Edge obligation: every register the shadow still needs at
            // the target must hold the same symbolic value on both
            // sides. (A havocked value cannot leak through here: live
            // at the target and unwritten in the segment implies live
            // at this cut, hence a shared unknown, not an Undef.)
            let live_next = live.get(s_next).ok_or_else(|| {
                err(
                    ObligationKind::Equiv,
                    format!("shadow successor pc {s_next} out of bounds"),
                )
            })?;
            for (b, (s_bank, t_bank)) in
                [(&s_st.f, &t_st.f), (&s_st.i, &t_st.i), (&s_st.v, &t_st.v)]
                    .into_iter()
                    .enumerate()
            {
                for r in 0..counts[b] {
                    if live_next[b].get(r)
                        && s_bank.get(r as usize) != t_bank.get(r as usize)
                    {
                        let bank_name = ["F", "I", "V"][b];
                        return Err(err(
                            ObligationKind::Equiv,
                            format!(
                                "edge (pc {s_pc}, pc {t_pc}) → (pc {s_next}, \
                                 pc {t_next}): live register {bank_name}{r} \
                                 differs between shadow and optimized tape"
                            ),
                        ));
                    }
                }
            }
            match pair_ids.get(&(s_next, t_next)) {
                Some(&next) => {
                    // Join the optimized side's carried values; any
                    // disagreement over a shadow-dead register demotes
                    // it to a monotone "unknown, differs by path" top.
                    let entry = &mut t_entry[next as usize];
                    let mut changed = false;
                    for (b, (bank, exit)) in [
                        (&mut entry.f, &t_st.f),
                        (&mut entry.i, &t_st.i),
                        (&mut entry.v, &t_st.v),
                    ]
                    .into_iter()
                    .enumerate()
                    {
                        for (r, slot) in bank.iter_mut().enumerate() {
                            let new = exit[r];
                            if *slot != new {
                                let top = syms.intern(SymKey::TDiff(
                                    next, b as u8, r as u32,
                                ));
                                if *slot != top {
                                    *slot = top;
                                    changed = true;
                                }
                            }
                        }
                    }
                    if changed {
                        work.push(next);
                    }
                }
                None => {
                    if pair_pcs.len() >= pair_cap {
                        return Err(err(
                            ObligationKind::Equiv,
                            "cut-point budget exceeded".to_string(),
                        ));
                    }
                    let next = pair_pcs.len() as u32;
                    pair_ids.insert((s_next, t_next), next);
                    pair_pcs.push((s_next, t_next));
                    t_entry.push(SegState {
                        f: t_st.f.clone(),
                        i: t_st.i.clone(),
                        v: t_st.v.clone(),
                    });
                    let live_n = live.get(s_next).unwrap_or(&no_live).clone();
                    let se = entry_state(&mut syms, next, counts, &live_n);
                    s_entry.push(se);
                    work.push(next);
                    rep.equiv += 1;
                }
            }
        }
    }
    rep.equiv += 1; // the entry pair itself
    Ok(())
}
