//! Criterion version of Figure 14: one distributed k-means iteration at a
//! low and a high dimension, unoptimized vs Steno vertices (run the
//! `fig14` binary for the full dimension sweep).

use bench::harness::{BenchmarkId, Criterion};
use bench::{criterion_group, criterion_main};
use steno_cluster::{execute_distributed, ClusterSpec, DistributedCollection, VertexEngine};
use steno_expr::DataContext;

fn fig14(c: &mut Criterion) {
    let total = 1 << 16;
    let k = 10;
    let mut group = c.benchmark_group("fig14_kmeans");
    group.sample_size(10);
    for dim in [10usize, 200] {
        let n = total / dim;
        let data = bench::kmeans::clustered_points(n, dim, k, 7);
        let centroids: Vec<Vec<f64>> = (0..k)
            .map(|i| data[i * dim..(i + 1) * dim].to_vec())
            .collect();
        let input = DistributedCollection::from_rows("points", data, dim, 8);
        let broadcast = DataContext::new()
            .with_source("centroids", bench::kmeans::centroid_column(&centroids));
        let udfs = bench::kmeans::kmeans_udfs(dim);
        let q = bench::kmeans::assignment_query();
        let spec = ClusterSpec { workers: 4 };
        for (label, engine) in [("linq", VertexEngine::Linq), ("steno", VertexEngine::Steno)] {
            group.bench_function(BenchmarkId::new(label, dim), |b| {
                b.iter(|| {
                    let (v, _) =
                        execute_distributed(&q, &input, &broadcast, &udfs, &spec, engine)
                            .unwrap();
                    std::hint::black_box(v)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig14);
criterion_main!(benches);
