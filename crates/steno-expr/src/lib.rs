//! Typed expression trees: the `Expression<T>` substrate of Steno.
//!
//! The Steno optimizer (Murray, Isard & Yu, PLDI 2011) works on a runtime
//! representation of the *query*, including the lambda expressions passed to
//! each operator. In .NET this representation is provided by the LINQ query
//! provider as `Expression<T>` trees; this crate provides the Rust
//! equivalent:
//!
//! * [`Ty`] — the small monomorphic type language used by queries,
//! * [`Expr`] / [`Lambda`] — expression trees with variables, arithmetic,
//!   comparisons, pair/row projections and user-defined function calls,
//! * [`typecheck`] — a checker that rejects ill-typed trees,
//! * [`eval`] — a reference tree-walking evaluator,
//! * [`subst`] — capture-avoiding substitution (the paper's rewriting of the
//!   outer element variable into nested queries, §5.2),
//! * [`Value`] / [`DataContext`] / [`UdfRegistry`] — the runtime data model
//!   shared by the LINQ interpreter and the Steno VM.
//!
//! # Example
//!
//! ```
//! use steno_expr::{Expr, eval::Env, eval::eval, udf::UdfRegistry, Value};
//!
//! // x * x + 1.0
//! let e = Expr::var("x") * Expr::var("x") + Expr::litf(1.0);
//! let mut env = Env::new();
//! env.bind("x", Value::F64(3.0));
//! let udfs = UdfRegistry::new();
//! assert_eq!(eval(&e, &env, &udfs).unwrap(), Value::F64(10.0));
//! ```

pub mod data;
pub mod error;
pub mod eval;
pub mod expr;
pub mod subst;
pub mod ty;
pub mod typecheck;
pub mod udf;
pub mod value;

pub use data::{Column, DataContext};
pub use error::{EvalError, TypeError};
pub use expr::{BinOp, Expr, Lambda, UnOp};
pub use ty::Ty;
pub use udf::{Udf, UdfRegistry};
pub use value::Value;
