/root/repo/target/debug/examples/quickstart-1beb497748a28cba.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1beb497748a28cba: examples/quickstart.rs

examples/quickstart.rs:
