/root/repo/target/debug/deps/pipeline_properties-eac31a8e2d6c9f96.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-eac31a8e2d6c9f96: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
