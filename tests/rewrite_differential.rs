//! Differential testing of the feedback-directed rewrite pass: every
//! query in the corpus is compiled twice — once with the algebraic
//! rewrite pass enabled and fed selectivities measured from the live
//! data, once with rewrites disabled entirely — and the two plans must
//! agree *bit-for-bit* on their results (`f64` compared by bit pattern,
//! not `==`). Trap parity is part of the contract: a query that traps
//! without rewrites must trap identically with them, which is exactly
//! what the may-trap gate on reordering protects. Two controls bracket
//! the purity reasoning: an impure UDF must block filter pushdown, and
//! the same function registered pure must permit it.

use steno_expr::{DataContext, Expr, UdfRegistry, Value};
use steno_query::typing::SourceTypes;
use steno_query::{Query, QueryExpr};
use steno_vm::query::CompileFeedback;
use steno_vm::{CompiledQuery, StenoOptions, VmError};

/// Sources sized so the rewrite pass sees meaningful selectivities:
/// thresholds in the corpus split `xs`/`ns` at various densities.
fn ctx() -> DataContext {
    DataContext::new()
        .with_source(
            "xs",
            (0..400).map(|i| f64::from(i) * 0.25 - 30.0).collect::<Vec<_>>(),
        )
        .with_source("ns", (1..=100i64).collect::<Vec<_>>())
        .with_source("ys", vec![0.5f64, -1.5, 2.0, 4.0])
}

/// Compiles `q` with the rewrite pass on (fed a sampling context) and
/// off. `None` when the shape is unsupported by the optimizer — in
/// which case both modes must agree it is.
fn compile_pair(
    q: &QueryExpr,
    data: &DataContext,
    udfs: &UdfRegistry,
) -> Option<(CompiledQuery, CompiledQuery)> {
    let on = StenoOptions::default();
    assert!(on.rewrites, "rewrites must default on");
    let off = StenoOptions {
        rewrites: false,
        ..on
    };
    let fb = CompileFeedback {
        sample_ctx: Some(data),
        loop_stats: None,
    };
    let with = CompiledQuery::compile_tuned_feedback(q, SourceTypes::from(data), udfs, on, fb);
    let without = CompiledQuery::compile_tuned(q, SourceTypes::from(data), udfs, off);
    match (with, without) {
        (Ok(a), Ok(b)) => Some((a, b)),
        (Err(_), Err(_)) => None,
        (a, b) => panic!(
            "rewrite toggle changed compilability for `{q}`: with={} without={}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}

/// Bit-for-bit equality: floats by bit pattern (so `-0.0` vs `0.0` or a
/// NaN payload difference is a failure, not a pass).
fn assert_bits_eq(a: &Value, b: &Value, q: &str) {
    match (a, b) {
        (Value::F64(x), Value::F64(y)) => {
            assert_eq!(x.to_bits(), y.to_bits(), "f64 bits differ for `{q}`: {x} vs {y}");
        }
        (Value::Row(xs), Value::Row(ys)) => {
            assert_eq!(xs.len(), ys.len(), "row length differs for `{q}`");
            for (x, y) in xs.iter().zip(ys.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "row f64 bits differ for `{q}`");
            }
        }
        (Value::Pair(p), Value::Pair(r)) => {
            assert_bits_eq(&p.0, &r.0, q);
            assert_bits_eq(&p.1, &r.1, q);
        }
        (Value::Seq(xs), Value::Seq(ys)) => {
            assert_eq!(xs.len(), ys.len(), "sequence length differs for `{q}`");
            for (x, y) in xs.iter().zip(ys.iter()) {
                assert_bits_eq(x, y, q);
            }
        }
        _ => assert_eq!(a, b, "values differ for `{q}`"),
    }
}

/// Runs both plans and checks agreement — on values bit-for-bit, and on
/// traps by exact error. Returns how many rewrites were applied, so
/// callers can assert the suite actually exercised the pass.
fn check_agreement(q: &QueryExpr, data: &DataContext, udfs: &UdfRegistry) -> usize {
    let Some((with, without)) = compile_pair(q, data, udfs) else {
        return 0;
    };
    // Belt and braces: the final rewritten chain re-passes the
    // independent verifier (each individual rewrite already did).
    steno_analysis::verify(with.chain(), udfs)
        .unwrap_or_else(|e| panic!("rewritten chain failed verification for `{q}`: {e}"));
    match (with.run(data, udfs), without.run(data, udfs)) {
        (Ok(a), Ok(b)) => assert_bits_eq(&a, &b, &q.to_string()),
        (Err(a), Err(b)) => assert_eq!(a, b, "trap identity differs for `{q}`"),
        (a, b) => panic!(
            "trap parity broken for `{q}`: with-rewrites ok={} without ok={}",
            a.is_ok(),
            b.is_ok()
        ),
    }
    with.rewrite_log().iter().filter(|ev| ev.applied).count()
}

/// Text-spellable corpus: the end-to-end shapes plus multi-filter and
/// limit-bearing pipelines the rewrite rules target (adjacent takes,
/// hoistable limits, reorderable filters, pushable predicates).
const TEXT_CORPUS: &[&str] = &[
    "from x in ns where x % 2 == 0 select x * x",
    "(from x in xs select x * x).sum()",
    "xs.where(|x| x > -100.0).where(|x| x > 60.0).sum()",
    "xs.where(|x| x > 60.0).where(|x| x > -100.0).sum()",
    "xs.select(|x| x + 1.5).where(|x| x < 0.0).sum()",
    "xs.select(|x| x * 2.0).select(|x| x + 1.0).sum()",
    "xs.select(|x| x * 2.0).where(|x| x > 100.0).count()",
    "(from x in ns select x).skip(20).take(30).sum()",
    "ns.take(50).take(10).sum()",
    "ns.skip(5).skip(5).sum()",
    "ns.select(|x| x * 3).take(7).sum()",
    "xs.where(|x| x > 0.0).select(|x| x + 1.5).where(|x| x < 40.0).sum()",
    "ns.where(|x| x % 3 == 0).where(|x| x > 90).count()",
    "xs.min()",
    "xs.max()",
    "xs.average()",
    "xs.take_while(|x| x < 50.0).count()",
    "xs.skip_while(|x| x < 0.0).min()",
    "from x in xs where x > 0.0 orderby x descending select x + 1.0",
    "from x in ns group x * x by x % 7",
    "ns.select(|x| x % 9).distinct().order_by(|x| x)",
    "ns.where(|x| x != 0).select(|x| 60 / x).sum()",
    "xs.order_by(|x| x).take(3).sum()",
];

#[test]
fn text_corpus_agrees_bit_for_bit() {
    let data = ctx();
    let udfs = UdfRegistry::new();
    let mut applied = 0usize;
    for text in TEXT_CORPUS {
        let (q, _) = steno_syntax::parse_query(text)
            .unwrap_or_else(|e| panic!("corpus query failed to parse: `{text}`: {e}"));
        applied += check_agreement(&q, &data, &udfs);
    }
    assert!(
        applied >= 5,
        "corpus must actually exercise the rewrite pass, applied {applied}"
    );
}

#[test]
fn trap_parity_is_preserved() {
    let data = ctx();
    let udfs = UdfRegistry::new();
    // `60 / (x - 50)` traps at x = 50, which `ns` contains. The
    // trailing selective filter must NOT be pushed past the trapping
    // map (the may-trap gate), so both plans trap — identically.
    let trapping = Query::source("ns")
        .select(Expr::liti(60) / (Expr::var("x") - Expr::liti(50)), "x")
        .where_(Expr::var("y").gt(Expr::liti(1000)), "y")
        .sum()
        .build();
    let (with, without) = compile_pair(&trapping, &data, &udfs).expect("supported shape");
    assert!(
        !with
            .rewrite_log()
            .iter()
            .any(|ev| ev.applied && ev.rule == "pushdown-filter"),
        "filter must not push past a trapping map: {:?}",
        with.rewrite_log()
    );
    let a = with.run(&data, &udfs);
    let b = without.run(&data, &udfs);
    assert_eq!(a, b, "trap behavior must agree");
    assert_eq!(a, Err(VmError::DivisionByZero));

    // The guarded variant computes a value in both modes.
    let guarded = Query::source("ns")
        .where_(Expr::var("x").ne(Expr::liti(50)), "x")
        .select(Expr::liti(60) / (Expr::var("x") - Expr::liti(50)), "x")
        .sum()
        .build();
    assert!(compile_pair(&guarded, &data, &udfs).is_some());
    check_agreement(&guarded, &data, &udfs);
}

#[test]
fn impure_udf_blocks_pushdown() {
    // Negative control: `scale` is registered WITHOUT a purity fact, so
    // the selective filter after it must stay put even though moving it
    // would be profitable (observed selectivity ~0.25).
    let data = ctx();
    let mut udfs = UdfRegistry::new();
    udfs.register(
        "scale",
        vec![steno_expr::Ty::F64],
        steno_expr::Ty::F64,
        |args: &[Value]| Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0),
    );
    let q = Query::source("xs")
        .select(Expr::call("scale", vec![Expr::var("x")]), "x")
        .where_(Expr::var("y").lt(Expr::litf(-25.0)), "y")
        .sum()
        .build();
    let Some((with, without)) = compile_pair(&q, &data, &udfs) else {
        panic!("UDF query must compile");
    };
    assert!(
        !with
            .rewrite_log()
            .iter()
            .any(|ev| ev.applied && ev.rule == "pushdown-filter"),
        "impure UDF must block pushdown: {:?}",
        with.rewrite_log()
    );
    let a = with.run(&data, &udfs).unwrap();
    assert_bits_eq(&a, &without.run(&data, &udfs).unwrap(), "impure-udf control");
}

#[test]
fn pure_udf_permits_pushdown() {
    // Positive control: the identical pipeline with `scale` registered
    // pure. The purity fact is the only difference, and it must be
    // exactly what unlocks the rewrite.
    let data = ctx();
    let mut udfs = UdfRegistry::new();
    udfs.register_pure(
        "scale",
        vec![steno_expr::Ty::F64],
        steno_expr::Ty::F64,
        |args: &[Value]| Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0),
    );
    let q = Query::source("xs")
        .select(Expr::call("scale", vec![Expr::var("x")]), "x")
        .where_(Expr::var("y").lt(Expr::litf(-25.0)), "y")
        .sum()
        .build();
    let Some((with, without)) = compile_pair(&q, &data, &udfs) else {
        panic!("UDF query must compile");
    };
    assert!(
        with.rewrite_log()
            .iter()
            .any(|ev| ev.applied && ev.rule == "pushdown-filter"),
        "pure UDF must permit pushdown: {:?}",
        with.rewrite_log()
    );
    let a = with.run(&data, &udfs).unwrap();
    assert_bits_eq(&a, &without.run(&data, &udfs).unwrap(), "pure-udf control");
}

#[test]
fn reorder_depends_on_observed_selectivity_but_never_the_result() {
    // The pessimal order (unselective filter first) and the optimal one
    // must produce identical bits; the rewrite log records the reorder
    // only for the pessimal spelling.
    let data = ctx();
    let udfs = UdfRegistry::new();
    let pessimal = Query::source("xs")
        .where_(Expr::var("x").gt(Expr::litf(-1000.0)), "x") // keeps all
        .where_(Expr::var("x").gt(Expr::litf(65.0)), "x") // keeps ~4%
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();
    let (with, without) = compile_pair(&pessimal, &data, &udfs).expect("supported");
    assert!(
        with.rewrite_log()
            .iter()
            .any(|ev| ev.applied && ev.rule == "reorder-filters"),
        "pessimal order must be reordered: {:?}",
        with.rewrite_log()
    );
    let a = with.run(&data, &udfs).unwrap();
    assert_bits_eq(&a, &without.run(&data, &udfs).unwrap(), "reorder control");
}
