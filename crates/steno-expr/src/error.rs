//! Error types for type checking and evaluation.

use std::fmt;

use crate::ty::Ty;

/// An error produced by the type checker.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// A variable was not bound in the environment.
    UnboundVariable(String),
    /// An operator was applied to operands of the wrong type.
    Mismatch {
        /// Human-readable description of the context.
        context: String,
        /// The type that was expected.
        expected: String,
        /// The type that was found.
        found: Ty,
    },
    /// A user-defined function is not registered or has the wrong arity.
    BadCall(String),
    /// A cast between unsupported types.
    BadCast(Ty, Ty),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            TypeError::Mismatch {
                context,
                expected,
                found,
            } => write!(f, "type mismatch in {context}: expected {expected}, found {found}"),
            TypeError::BadCall(msg) => write!(f, "bad call: {msg}"),
            TypeError::BadCast(from, to) => write!(f, "unsupported cast from {from} to {to}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// An error produced by the reference evaluator.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A variable was not bound at evaluation time.
    UnboundVariable(String),
    /// A value had the wrong runtime shape for the operation.
    TypeMismatch(String),
    /// Row index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// Length of the indexed row.
        len: usize,
    },
    /// A user-defined function is not registered.
    UnknownUdf(String),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// Cooperative cancellation: an interrupt probe asked the evaluator
    /// to stop. `deadline` distinguishes a deadline expiry from an
    /// explicit cancel.
    Interrupted {
        /// `true` when a deadline expired rather than an explicit cancel.
        deadline: bool,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            EvalError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for length {len}")
            }
            EvalError::UnknownUdf(name) => write!(f, "unknown user-defined function `{name}`"),
            EvalError::DivisionByZero => write!(f, "integer division by zero"),
            EvalError::Interrupted { deadline: true } => write!(f, "deadline exceeded"),
            EvalError::Interrupted { deadline: false } => write!(f, "cancelled"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = TypeError::Mismatch {
            context: "operator +".into(),
            expected: "f64".into(),
            found: Ty::Bool,
        };
        assert_eq!(e.to_string(), "type mismatch in operator +: expected f64, found bool");
        assert_eq!(
            EvalError::IndexOutOfBounds { index: 9, len: 3 }.to_string(),
            "row index 9 out of bounds for length 3"
        );
    }
}
