//! The typed QUIL chain representation.
//!
//! A [`QuilChain`] is the canonical operator chain Steno builds by
//! post-order traversal of the query AST (§3.1). Its structure mirrors the
//! grammar `(query) ::= Src (Trans | Pred | Sink | (query))* Agg? Ret`:
//! the `Agg? Ret` suffix is represented structurally by the optional
//! [`QuilChain::agg`] field, which makes "Agg may only appear as the
//! penultimate symbol" true by construction.
//!
//! Every operator is annotated with its input and output element types —
//! the information the C# compiler's type checking would have provided —
//! so back ends can generate type-specialized code (§4.2).

use std::fmt;

use steno_expr::{Expr, Ty, Value};

use crate::grammar::{QuilSym, Tok};

/// The `Src` symbol: an enumerable source, "annotated with the collection's
/// run-time type" (§4.1).
#[derive(Clone, Debug, PartialEq)]
pub enum SrcDesc {
    /// A named collection with the given element type.
    Collection {
        /// Source name in the data context.
        name: String,
        /// Element type.
        elem_ty: Ty,
    },
    /// `Range(start, count)`, elements of type `i64`.
    Range {
        /// First integer.
        start: i64,
        /// Number of integers.
        count: usize,
    },
    /// `Repeat(value, count)`.
    Repeat {
        /// The repeated value.
        value: Value,
        /// Number of copies.
        count: usize,
    },
    /// A source computed from an expression over in-scope variables
    /// (nested queries iterating a group or an outer element).
    Expr {
        /// The sequence-valued expression.
        expr: Expr,
        /// Element type of the sequence.
        elem_ty: Ty,
    },
}

impl SrcDesc {
    /// The element type this source yields.
    pub fn elem_ty(&self) -> Ty {
        match self {
            SrcDesc::Collection { elem_ty, .. } | SrcDesc::Expr { elem_ty, .. } => elem_ty.clone(),
            SrcDesc::Range { .. } => Ty::I64,
            SrcDesc::Repeat { value, .. } => value.ty(),
        }
    }
}

/// A nested chain substituting for a transformation function (§5).
///
/// If the nested chain is aggregate-terminated the transform produces one
/// scalar per outer element (a nested `Select`); otherwise its yielded
/// elements are spliced into the outer stream (a `SelectMany`).
#[derive(Clone, Debug, PartialEq)]
pub struct NestedTrans {
    /// The nested query chain; the outer element variable appears free in
    /// it.
    pub chain: Box<QuilChain>,
    /// Optional wrapper applied to the nested result before it becomes the
    /// next element: `(param, expr)`. Used when a result selector combines
    /// the aggregate with other in-scope values (e.g. the group key).
    pub wrap: Option<(String, Expr)>,
}

/// Provenance of a QUIL operator: which query-level operator produced
/// it, so verifier and lint diagnostics can point at the offending
/// source operator instead of a lowered position.
///
/// Provenance is metadata, not plan structure: `PartialEq` always
/// returns `true`, so two chains that differ only in spans compare
/// equal (rewrite passes and their tests rely on structural equality).
#[derive(Clone, Copy, Debug, Default, Eq)]
pub struct OpSpan {
    /// Zero-based position of the originating operator in the lowered
    /// chain, when known.
    pub op_index: Option<u32>,
    /// Query-operator name (`"Select"`, `"Where"`, `"GroupBy"`, …).
    pub operator: Option<&'static str>,
}

impl OpSpan {
    /// A span for a synthesized operator with no source counterpart.
    pub fn none() -> Self {
        Self::default()
    }

    /// A span at the given chain position for the named query operator.
    pub fn at(op_index: u32, operator: &'static str) -> Self {
        Self {
            op_index: Some(op_index),
            operator: Some(operator),
        }
    }
}

impl PartialEq for OpSpan {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl fmt::Display for OpSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.operator, self.op_index) {
            (Some(name), Some(i)) => write!(f, "{name} (op #{i})"),
            (Some(name), None) => write!(f, "{name}"),
            (None, Some(i)) => write!(f, "op #{i}"),
            (None, None) => write!(f, "synthesized operator"),
        }
    }
}

/// The payload of a `Trans` symbol.
#[derive(Clone, Debug, PartialEq)]
pub enum TransKind {
    /// An inlined expression body (`Select(x => f(x))`, Fig. 6a).
    Expr(Expr),
    /// A nested query (§5).
    Nested(NestedTrans),
}

/// The payload of a `Pred` symbol. `Where` carries an expression or nested
/// boolean query; `Take`/`Skip` and the `While` forms are the stateful
/// predicates Table 1 also assigns to this class.
#[derive(Clone, Debug, PartialEq)]
pub enum PredKind {
    /// `Where(x => p(x))` (Fig. 6b).
    Expr(Expr),
    /// `Where` with a nested boolean query.
    Nested(Box<QuilChain>),
    /// `Take(n)`.
    Take(usize),
    /// `Skip(n)`.
    Skip(usize),
    /// `TakeWhile(p)`.
    TakeWhile(Expr),
    /// `SkipWhile(p)`.
    SkipWhile(Expr),
}

/// Which aggregate a canonical [`AggDesc`] came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `Sum`.
    Sum,
    /// `Min`.
    Min,
    /// `Max`.
    Max,
    /// `Count`.
    Count,
    /// `Average`.
    Average,
    /// `Any`.
    Any,
    /// `All`.
    All,
    /// `FirstOrDefault`.
    First,
    /// User `Aggregate(seed, func)`.
    Fold,
}

/// A canonicalized aggregate: declaration, per-element update, optional
/// finishing projection, and an optional associative combiner.
///
/// The shape matches Fig. 7(a): the `init` expression is emitted at the α
/// insertion point, the `update` expression at μ, and the optional
/// `finish` at ω. `combine` merges two partial accumulators and exists for
/// every built-in aggregate; its presence is what permits the `Agg_i` /
/// `Agg*` decomposition of §6.
#[derive(Clone, Debug, PartialEq)]
pub struct AggDesc {
    /// Which operator this fold implements.
    pub kind: AggKind,
    /// Accumulator type.
    pub acc_ty: Ty,
    /// Result type after `finish`.
    pub out_ty: Ty,
    /// Element type consumed.
    pub elem_ty: Ty,
    /// Seed expression (evaluated once, before the loop).
    pub init: Expr,
    /// Name binding the accumulator in `update`/`finish`/`combine`.
    pub acc_param: String,
    /// Name binding the element in `update`.
    pub elem_param: String,
    /// Name binding the right-hand accumulator in `combine`.
    pub rhs_param: String,
    /// Per-element update: `acc' = update(acc, elem)`.
    pub update: Expr,
    /// Optional final projection `out = finish(acc)`.
    pub finish: Option<Expr>,
    /// Optional associative combiner `acc' = combine(acc, rhs)`.
    pub combine: Option<Expr>,
}

impl AggDesc {
    /// `true` if the aggregate can be decomposed into per-partition
    /// partials plus a combining step (§6).
    pub fn is_associative(&self) -> bool {
        self.combine.is_some()
    }
}

/// The payload of a `Sink` symbol: operators that build an intermediate
/// collection (§4.1).
// IR nodes are built once per query, not per element; variant size
// imbalance is irrelevant here.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum SinkKind {
    /// `GroupBy`: builds a key → bag multimap; yields `(key, seq)` pairs.
    GroupBy {
        /// Key selector over `param`.
        key: Expr,
        /// Optional element selector over `param`.
        elem: Option<Expr>,
        /// Key type.
        key_ty: Ty,
        /// Grouped-value type.
        val_ty: Ty,
    },
    /// The specialized `GroupByAggregate` (§4.3): stores per-key partial
    /// aggregates instead of bags.
    GroupByAggregate {
        /// Key selector over `param`.
        key: Expr,
        /// Optional element selector over `param`, applied before `agg`.
        elem: Option<Expr>,
        /// The per-group aggregate.
        agg: AggDesc,
        /// Result selector: binds `(key_param, agg_param)` in `result`.
        key_param: String,
        /// Name binding the aggregate in `result`.
        agg_param: String,
        /// The per-group result expression.
        result: Expr,
        /// Key type.
        key_ty: Ty,
    },
    /// `OrderBy`: buffers and sorts by key.
    OrderBy {
        /// Sort-key selector over `param`.
        key: Expr,
        /// Sort direction.
        descending: bool,
    },
    /// `Distinct`: buffers unique elements in first-appearance order.
    Distinct,
    /// `ToArray`: explicit materialization (§4.2, footnote 3).
    ToVec,
}

/// A `Sink` operator with its element binding and types.
#[derive(Clone, Debug, PartialEq)]
pub struct SinkOp {
    /// Name binding the incoming element in the selectors.
    pub param: String,
    /// The sink variant.
    pub kind: SinkKind,
    /// Incoming element type.
    pub in_ty: Ty,
    /// Element type of the sink collection.
    pub out_ty: Ty,
    /// Source provenance (ignored by equality).
    pub span: OpSpan,
}

/// One operator in a QUIL chain.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum QuilOp {
    /// Element-wise transformation.
    Trans {
        /// Name binding the incoming element.
        param: String,
        /// The transformation.
        kind: TransKind,
        /// Incoming element type.
        in_ty: Ty,
        /// Outgoing element type.
        out_ty: Ty,
        /// Source provenance (ignored by equality).
        span: OpSpan,
    },
    /// Element-wise predicate (possibly stateful).
    Pred {
        /// Name binding the incoming element.
        param: String,
        /// The predicate.
        kind: PredKind,
        /// Element type (unchanged by predicates).
        elem_ty: Ty,
        /// Source provenance (ignored by equality).
        span: OpSpan,
    },
    /// Sink into an intermediate collection.
    Sink(SinkOp),
}

impl QuilOp {
    /// The flat QUIL symbol of this operator.
    pub fn symbol(&self) -> QuilSym {
        match self {
            QuilOp::Trans { .. } => QuilSym::Trans,
            QuilOp::Pred { .. } => QuilSym::Pred,
            QuilOp::Sink(_) => QuilSym::Sink,
        }
    }

    /// The operator's source provenance.
    pub fn span(&self) -> OpSpan {
        match self {
            QuilOp::Trans { span, .. } | QuilOp::Pred { span, .. } => *span,
            QuilOp::Sink(s) => s.span,
        }
    }

    /// The element type produced by this operator.
    pub fn out_ty(&self) -> Ty {
        match self {
            QuilOp::Trans { out_ty, .. } => out_ty.clone(),
            QuilOp::Pred { elem_ty, .. } => elem_ty.clone(),
            QuilOp::Sink(s) => s.out_ty.clone(),
        }
    }

    /// `true` if the operator applies to each element independently, so a
    /// partitioned input may be processed in parallel (§6). `Take`/`Skip`
    /// and the `While` predicates consult global positions and are not
    /// homomorphic; sinks coordinate across the whole collection.
    pub fn is_homomorphic(&self) -> bool {
        match self {
            QuilOp::Trans { .. } => true,
            QuilOp::Pred { kind, .. } => matches!(kind, PredKind::Expr(_) | PredKind::Nested(_)),
            QuilOp::Sink(_) => false,
        }
    }
}

/// A complete QUIL chain: `Src (Trans|Pred|Sink|nested)* Agg? Ret`.
#[derive(Clone, Debug, PartialEq)]
pub struct QuilChain {
    /// The source.
    pub src: SrcDesc,
    /// The operator sequence.
    pub ops: Vec<QuilOp>,
    /// The optional penultimate aggregate.
    pub agg: Option<AggDesc>,
}

impl QuilChain {
    /// The element type flowing *out of* the last operator (before any
    /// aggregate).
    pub fn elem_ty(&self) -> Ty {
        self.ops
            .last()
            .map(QuilOp::out_ty)
            .unwrap_or_else(|| self.src.elem_ty())
    }

    /// The type of the whole chain's result: the aggregate output type, or
    /// `seq<elem>`.
    pub fn result_ty(&self) -> Ty {
        match &self.agg {
            Some(a) => a.out_ty.clone(),
            None => Ty::seq(self.elem_ty()),
        }
    }

    /// `true` if the chain ends in an aggregate.
    pub fn is_scalar(&self) -> bool {
        self.agg.is_some()
    }

    /// The flat symbol sentence of this chain (nested queries appear as a
    /// single `Trans`/`Pred`), ending in `Ret` — the input alphabet of the
    /// Fig. 4 FSM.
    pub fn symbols(&self) -> Vec<QuilSym> {
        let mut out = vec![QuilSym::Src];
        out.extend(self.ops.iter().map(QuilOp::symbol));
        if self.agg.is_some() {
            out.push(QuilSym::Agg);
        }
        out.push(QuilSym::Ret);
        out
    }

    /// The deep token sentence, with nested chains expanded between
    /// [`Tok::Open`]/[`Tok::Close`] markers — the input of the pushdown
    /// recognizer (§5.1).
    pub fn tokens(&self) -> Vec<Tok> {
        let mut out = vec![Tok::Sym(QuilSym::Src)];
        for op in &self.ops {
            match op {
                QuilOp::Trans {
                    kind: TransKind::Nested(n),
                    ..
                } => {
                    out.push(Tok::Open);
                    out.extend(n.chain.tokens());
                    out.push(Tok::Close);
                }
                QuilOp::Pred {
                    kind: PredKind::Nested(chain),
                    ..
                } => {
                    out.push(Tok::Open);
                    out.extend(chain.tokens());
                    out.push(Tok::Close);
                }
                other => out.push(Tok::Sym(other.symbol())),
            }
        }
        if self.agg.is_some() {
            out.push(Tok::Sym(QuilSym::Agg));
        }
        out.push(Tok::Sym(QuilSym::Ret));
        out
    }

    /// The maximum nesting depth (1 for a flat chain).
    pub fn depth(&self) -> usize {
        let mut max_inner = 0;
        for op in &self.ops {
            let d = match op {
                QuilOp::Trans {
                    kind: TransKind::Nested(n),
                    ..
                } => n.chain.depth(),
                QuilOp::Pred {
                    kind: PredKind::Nested(c),
                    ..
                } => c.depth(),
                _ => 0,
            };
            max_inner = max_inner.max(d);
        }
        1 + max_inner
    }
}

impl fmt::Display for QuilChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Src")?;
        for op in &self.ops {
            match op {
                QuilOp::Trans {
                    kind: TransKind::Nested(_),
                    ..
                } => write!(f, " (nested)")?,
                QuilOp::Pred {
                    kind: PredKind::Nested(_),
                    ..
                } => write!(f, " (nested-pred)")?,
                QuilOp::Trans { .. } => write!(f, " Trans")?,
                QuilOp::Pred { .. } => write!(f, " Pred")?,
                QuilOp::Sink(s) => {
                    let name = match &s.kind {
                        SinkKind::GroupBy { .. } => "Sink[GroupBy]",
                        SinkKind::GroupByAggregate { .. } => "Sink[GroupByAggregate]",
                        SinkKind::OrderBy { .. } => "Sink[OrderBy]",
                        SinkKind::Distinct => "Sink[Distinct]",
                        SinkKind::ToVec => "Sink[ToVec]",
                    };
                    write!(f, " {name}")?;
                }
            }
        }
        if let Some(a) = &self.agg {
            write!(f, " Agg[{:?}]", a.kind)?;
        }
        write!(f, " Ret")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;

    fn f64_src() -> SrcDesc {
        SrcDesc::Collection {
            name: "xs".into(),
            elem_ty: Ty::F64,
        }
    }

    fn sum_desc() -> AggDesc {
        AggDesc {
            kind: AggKind::Sum,
            acc_ty: Ty::F64,
            out_ty: Ty::F64,
            elem_ty: Ty::F64,
            init: Expr::litf(0.0),
            acc_param: "acc".into(),
            elem_param: "x".into(),
            rhs_param: "rhs".into(),
            update: Expr::var("acc") + Expr::var("x"),
            finish: None,
            combine: Some(Expr::var("acc") + Expr::var("rhs")),
        }
    }

    fn trans_sq() -> QuilOp {
        QuilOp::Trans {
            param: "x".into(),
            kind: TransKind::Expr(Expr::var("x") * Expr::var("x")),
            in_ty: Ty::F64,
            out_ty: Ty::F64,
            span: OpSpan::none(),
        }
    }

    #[test]
    fn symbols_of_flat_chain() {
        let chain = QuilChain {
            src: f64_src(),
            ops: vec![trans_sq()],
            agg: Some(sum_desc()),
        };
        assert_eq!(
            chain.symbols(),
            vec![QuilSym::Src, QuilSym::Trans, QuilSym::Agg, QuilSym::Ret]
        );
        assert!(chain.is_scalar());
        assert_eq!(chain.result_ty(), Ty::F64);
        assert_eq!(chain.depth(), 1);
        assert_eq!(chain.to_string(), "Src Trans Agg[Sum] Ret");
    }

    #[test]
    fn tokens_of_nested_chain() {
        let inner = QuilChain {
            src: f64_src(),
            ops: vec![],
            agg: Some(sum_desc()),
        };
        let outer = QuilChain {
            src: f64_src(),
            ops: vec![QuilOp::Trans {
                param: "x".into(),
                kind: TransKind::Nested(NestedTrans {
                    chain: Box::new(inner),
                    wrap: None,
                }),
                in_ty: Ty::F64,
                out_ty: Ty::F64,
                span: OpSpan::none(),
            }],
            agg: None,
        };
        assert_eq!(outer.depth(), 2);
        let toks = outer.tokens();
        assert_eq!(
            toks,
            vec![
                Tok::Sym(QuilSym::Src),
                Tok::Open,
                Tok::Sym(QuilSym::Src),
                Tok::Sym(QuilSym::Agg),
                Tok::Sym(QuilSym::Ret),
                Tok::Close,
                Tok::Sym(QuilSym::Ret),
            ]
        );
        // Flat view shows the nested query as a single Trans.
        assert_eq!(
            outer.symbols(),
            vec![QuilSym::Src, QuilSym::Trans, QuilSym::Ret]
        );
    }

    #[test]
    fn homomorphism_classification() {
        assert!(trans_sq().is_homomorphic());
        let wher = QuilOp::Pred {
            param: "x".into(),
            kind: PredKind::Expr(Expr::var("x").gt(Expr::litf(0.0))),
            elem_ty: Ty::F64,
            span: OpSpan::none(),
        };
        assert!(wher.is_homomorphic());
        let take = QuilOp::Pred {
            param: "x".into(),
            kind: PredKind::Take(5),
            elem_ty: Ty::F64,
            span: OpSpan::none(),
        };
        assert!(!take.is_homomorphic());
        let sink = QuilOp::Sink(SinkOp {
            param: "x".into(),
            kind: SinkKind::Distinct,
            in_ty: Ty::F64,
            out_ty: Ty::F64,
            span: OpSpan::none(),
        });
        assert!(!sink.is_homomorphic());
    }

    #[test]
    fn elem_ty_follows_last_operator() {
        let chain = QuilChain {
            src: SrcDesc::Range { start: 0, count: 9 },
            ops: vec![QuilOp::Trans {
                param: "i".into(),
                kind: TransKind::Expr(Expr::var("i").cast(Ty::F64)),
                in_ty: Ty::I64,
                out_ty: Ty::F64,
                span: OpSpan::none(),
            }],
            agg: None,
        };
        assert_eq!(chain.src.elem_ty(), Ty::I64);
        assert_eq!(chain.elem_ty(), Ty::F64);
        assert_eq!(chain.result_ty(), Ty::seq(Ty::F64));
    }
}
