/root/repo/target/debug/examples/cartesian-3b6eed3b0a08dae9.d: examples/cartesian.rs Cargo.toml

/root/repo/target/debug/examples/libcartesian-3b6eed3b0a08dae9.rmeta: examples/cartesian.rs Cargo.toml

examples/cartesian.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
