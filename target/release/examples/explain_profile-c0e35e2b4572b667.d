/root/repo/target/release/examples/explain_profile-c0e35e2b4572b667.d: examples/explain_profile.rs

/root/repo/target/release/examples/explain_profile-c0e35e2b4572b667: examples/explain_profile.rs

examples/explain_profile.rs:
