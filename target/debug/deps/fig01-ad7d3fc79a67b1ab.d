/root/repo/target/debug/deps/fig01-ad7d3fc79a67b1ab.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-ad7d3fc79a67b1ab.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
