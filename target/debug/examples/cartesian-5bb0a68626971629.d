/root/repo/target/debug/examples/cartesian-5bb0a68626971629.d: examples/cartesian.rs

/root/repo/target/debug/examples/cartesian-5bb0a68626971629: examples/cartesian.rs

examples/cartesian.rs:
