//! IR-level optimization passes.
//!
//! The main pass is the GroupBy→GroupByAggregate specialization of §4.3:
//! "Steno identifies GroupBy operators with an aggregating result selector
//! when building the operator chain, and inserts a specialized
//! GroupByAggregate Sink operator in place of a conventional GroupBy."
//! Lowering already inserts the specialized sink for the explicit result-
//! selector overload; this pass additionally recognizes the *pattern* of a
//! `GroupBy` sink followed by a transform that aggregates each group, as
//! produced by `GroupBy(key).Select(kv => agg(kv.1))` chains.

use steno_expr::expr::Expr;

use crate::ir::{QuilChain, QuilOp, SinkKind, SinkOp, TransKind};
use crate::lower::compose_group_aggregate_over;
use crate::substitute::subst_chain;

/// `true` if the chain references `name` as a free variable anywhere.
pub fn chain_refs_var(chain: &QuilChain, name: &str) -> bool {
    // Substituting a sentinel changes the chain iff the variable occurs free.
    subst_chain(chain, name, &Expr::var("__probe__")) != *chain
}

/// Rewrites every occurrence of `param.0` to `key_var`, failing if `param`
/// is used in any other way.
fn rewrite_key_projection(e: &Expr, param: &str, key_var: &str) -> Option<Expr> {
    match e {
        Expr::Field(inner, 0) if **inner == Expr::Var(param.to_string()) => {
            Some(Expr::var(key_var))
        }
        Expr::Var(v) if v == param => None,
        Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_) => Some(e.clone()),
        Expr::Bin(op, a, b) => Some(Expr::bin(
            *op,
            rewrite_key_projection(a, param, key_var)?,
            rewrite_key_projection(b, param, key_var)?,
        )),
        Expr::Un(op, a) => Some(Expr::un(*op, rewrite_key_projection(a, param, key_var)?)),
        Expr::Call(f, args) => Some(Expr::Call(
            f.clone(),
            args.iter()
                .map(|a| rewrite_key_projection(a, param, key_var))
                .collect::<Option<Vec<_>>>()?,
        )),
        Expr::Field(a, i) => Some(Expr::Field(
            Box::new(rewrite_key_projection(a, param, key_var)?),
            *i,
        )),
        Expr::RowIndex(a, i) => Some(Expr::RowIndex(
            Box::new(rewrite_key_projection(a, param, key_var)?),
            Box::new(rewrite_key_projection(i, param, key_var)?),
        )),
        Expr::RowLen(a) => Some(Expr::RowLen(Box::new(rewrite_key_projection(
            a, param, key_var,
        )?))),
        Expr::MkPair(a, b) => Some(Expr::MkPair(
            Box::new(rewrite_key_projection(a, param, key_var)?),
            Box::new(rewrite_key_projection(b, param, key_var)?),
        )),
        Expr::If(c, t, els) => Some(Expr::if_(
            rewrite_key_projection(c, param, key_var)?,
            rewrite_key_projection(t, param, key_var)?,
            rewrite_key_projection(els, param, key_var)?,
        )),
        Expr::Cast(ty, a) => Some(Expr::Cast(
            ty.clone(),
            Box::new(rewrite_key_projection(a, param, key_var)?),
        )),
    }
}

/// Attempts to fuse `ops[i] = Sink(GroupBy)` with `ops[i+1] = Trans(nested
/// aggregation over the group)` into a single `GroupByAggregate` sink.
fn try_fuse_at(ops: &[QuilOp], i: usize) -> Option<QuilOp> {
    let QuilOp::Sink(SinkOp {
        param: sink_param,
        kind:
            SinkKind::GroupBy {
                key,
                elem,
                key_ty,
                val_ty: _,
            },
        in_ty,
        ..
    }) = &ops[i]
    else {
        return None;
    };
    let QuilOp::Trans {
        param: pair_param,
        kind: TransKind::Nested(nested),
        out_ty,
        ..
    } = ops.get(i + 1)?
    else {
        return None;
    };
    // The nested chain must iterate exactly the group contents,
    // `pair.1`, and be fusable into a single fold.
    let group_src = Expr::var(pair_param.clone()).field(1);
    let agg = compose_group_aggregate_over(&nested.chain, &group_src)?;
    // No other use of the pair inside the nested chain.
    let residual = subst_chain(&nested.chain, pair_param, &Expr::var("__probe__"));
    let probed = subst_chain(&nested.chain, pair_param, &group_src);
    if residual != *nested.chain && probed != *nested.chain {
        // The chain mentions the pair beyond its source; after substituting
        // the source reference the rest must be unchanged.
        let mut src_only = nested.chain.as_ref().clone();
        src_only.src = probed.src.clone();
        if src_only != probed {
            return None;
        }
    }
    let key_param = "__k".to_string();
    let (agg_param, result) = match &nested.wrap {
        None => ("__a".to_string(), Expr::var("__a")),
        Some((p, w)) => {
            let rewritten = rewrite_key_projection(w, pair_param, &key_param)?;
            (p.clone(), rewritten)
        }
    };
    Some(QuilOp::Sink(SinkOp {
        param: sink_param.clone(),
        kind: SinkKind::GroupByAggregate {
            key: key.clone(),
            elem: elem.clone(),
            agg,
            key_param,
            agg_param,
            result,
            key_ty: key_ty.clone(),
        },
        in_ty: in_ty.clone(),
        out_ty: out_ty.clone(),
        // The fused sink stands in for the original GroupBy.
        span: ops[i].span(),
    }))
}

/// Applies the GroupByAggregate specialization (§4.3) throughout a chain,
/// including nested chains. Returns the rewritten chain and whether any
/// rewrite fired.
pub fn specialize_group_aggregate(chain: &QuilChain) -> (QuilChain, bool) {
    let mut changed = false;
    // Recurse into nested chains first.
    let mut ops: Vec<QuilOp> = chain
        .ops
        .iter()
        .map(|op| match op {
            QuilOp::Trans {
                param,
                kind: TransKind::Nested(n),
                in_ty,
                out_ty,
                span,
            } => {
                let (inner, ch) = specialize_group_aggregate(&n.chain);
                changed |= ch;
                QuilOp::Trans {
                    param: param.clone(),
                    kind: TransKind::Nested(crate::ir::NestedTrans {
                        chain: Box::new(inner),
                        wrap: n.wrap.clone(),
                    }),
                    in_ty: in_ty.clone(),
                    out_ty: out_ty.clone(),
                    span: *span,
                }
            }
            other => other.clone(),
        })
        .collect();
    // Fuse GroupBy + aggregating transform pairs.
    let mut i = 0;
    while i + 1 < ops.len() {
        if let Some(fused) = try_fuse_at(&ops, i) {
            ops.splice(i..=i + 1, [fused]);
            changed = true;
        } else {
            i += 1;
        }
    }
    (
        QuilChain {
            src: chain.src.clone(),
            ops,
            agg: chain.agg.clone(),
        },
        changed,
    )
}

/// Constant-folds trivially reducible expressions in every operator body.
///
/// This is the "simple for a compiler to optimize" property of the
/// generated code made concrete: inlining lambdas often produces
/// `literal ∘ literal` nodes, which fold here before code generation.
pub fn fold_constants(chain: &QuilChain) -> QuilChain {
    fn fold(e: &Expr) -> Expr {
        use steno_expr::expr::BinOp;
        match e {
            Expr::Bin(op, a, b) => {
                let (fa, fb) = (fold(a), fold(b));
                match (op, &fa, &fb) {
                    (BinOp::Add, Expr::LitF64(x), Expr::LitF64(y)) => Expr::litf(x + y),
                    (BinOp::Sub, Expr::LitF64(x), Expr::LitF64(y)) => Expr::litf(x - y),
                    (BinOp::Mul, Expr::LitF64(x), Expr::LitF64(y)) => Expr::litf(x * y),
                    (BinOp::Add, Expr::LitI64(x), Expr::LitI64(y)) => {
                        Expr::liti(x.wrapping_add(*y))
                    }
                    (BinOp::Sub, Expr::LitI64(x), Expr::LitI64(y)) => {
                        Expr::liti(x.wrapping_sub(*y))
                    }
                    (BinOp::Mul, Expr::LitI64(x), Expr::LitI64(y)) => {
                        Expr::liti(x.wrapping_mul(*y))
                    }
                    _ => Expr::bin(*op, fa, fb),
                }
            }
            Expr::Un(op, a) => {
                let fa = fold(a);
                match (op, &fa) {
                    (steno_expr::expr::UnOp::Neg, Expr::LitF64(x)) => Expr::litf(-x),
                    (steno_expr::expr::UnOp::Neg, Expr::LitI64(x)) => {
                        Expr::liti(x.wrapping_neg())
                    }
                    (steno_expr::expr::UnOp::Not, Expr::LitBool(b)) => Expr::litb(!b),
                    _ => Expr::un(*op, fa),
                }
            }
            Expr::If(c, t, els) => {
                let fc = fold(c);
                match fc {
                    Expr::LitBool(true) => fold(t),
                    Expr::LitBool(false) => fold(els),
                    _ => Expr::if_(fc, fold(t), fold(els)),
                }
            }
            Expr::Field(a, i) => Expr::Field(Box::new(fold(a)), *i),
            Expr::RowIndex(a, i) => Expr::RowIndex(Box::new(fold(a)), Box::new(fold(i))),
            Expr::RowLen(a) => Expr::RowLen(Box::new(fold(a))),
            Expr::MkPair(a, b) => Expr::MkPair(Box::new(fold(a)), Box::new(fold(b))),
            Expr::Call(f, args) => Expr::Call(f.clone(), args.iter().map(fold).collect()),
            Expr::Cast(ty, a) => Expr::Cast(ty.clone(), Box::new(fold(a))),
            other => other.clone(),
        }
    }
    // Reuse substitution plumbing: substituting an unused name maps every
    // expression through a closure would be nicer, but the IR is small, so
    // walk directly.
    let mut out = chain.clone();
    for op in &mut out.ops {
        match op {
            QuilOp::Trans { kind, .. } => match kind {
                TransKind::Expr(e) => *e = fold(e),
                TransKind::Nested(n) => {
                    *n.chain = fold_constants(&n.chain);
                    if let Some((p, w)) = &n.wrap {
                        n.wrap = Some((p.clone(), fold(w)));
                    }
                }
            },
            QuilOp::Pred { kind, .. } => match kind {
                crate::ir::PredKind::Expr(e)
                | crate::ir::PredKind::TakeWhile(e)
                | crate::ir::PredKind::SkipWhile(e) => *e = fold(e),
                crate::ir::PredKind::Nested(c) => **c = fold_constants(c),
                _ => {}
            },
            QuilOp::Sink(s) => match &mut s.kind {
                SinkKind::GroupBy { key, elem, .. } => {
                    *key = fold(key);
                    if let Some(e) = elem {
                        *e = fold(e);
                    }
                }
                SinkKind::GroupByAggregate {
                    key, elem, agg, result, ..
                } => {
                    *key = fold(key);
                    if let Some(e) = elem {
                        *e = fold(e);
                    }
                    agg.init = fold(&agg.init);
                    agg.update = fold(&agg.update);
                    agg.finish = agg.finish.as_ref().map(fold);
                    agg.combine = agg.combine.as_ref().map(fold);
                    *result = fold(result);
                }
                SinkKind::OrderBy { key, .. } => *key = fold(key),
                SinkKind::Distinct | SinkKind::ToVec => {}
            },
        }
    }
    if let Some(agg) = &mut out.agg {
        agg.init = fold(&agg.init);
        agg.update = fold(&agg.update);
        agg.finish = agg.finish.as_ref().map(fold);
        agg.combine = agg.combine.as_ref().map(fold);
    }
    out
}

/// The standard optimization pipeline applied between lowering and code
/// generation: operator specialization (§4.3), element-wise fusion, and
/// constant folding.
pub fn optimize(chain: &QuilChain) -> QuilChain {
    let (chain, _) = specialize_group_aggregate(chain);
    let (chain, _) = fuse_elementwise(&chain);
    fold_constants(&chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, lower_with, LowerOptions};
    use steno_expr::typecheck::TyEnv;
    use steno_expr::{Ty, UdfRegistry};
    use steno_query::typing::SourceTypes;
    use steno_query::{GroupResult, Query};

    fn srcs() -> SourceTypes {
        SourceTypes::new().with("ns", Ty::I64)
    }

    fn keyed_group_sum() -> steno_query::QueryExpr {
        Query::source("ns")
            .group_by_result(
                Expr::var("x") % Expr::liti(3),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
            )
            .build()
    }

    #[test]
    fn pass_recovers_specialization_from_naive_plan() {
        // Lower with specialization disabled, then let the pass fuse it.
        let naive = lower_with(
            &keyed_group_sum(),
            &srcs(),
            &TyEnv::new(),
            &UdfRegistry::new(),
            LowerOptions {
                specialize_group_aggregate: false,
            },
        )
        .unwrap();
        assert_eq!(naive.ops.len(), 2);
        let (fused, changed) = specialize_group_aggregate(&naive);
        assert!(changed);
        assert_eq!(fused.ops.len(), 1);
        match &fused.ops[0] {
            QuilOp::Sink(SinkOp {
                kind: SinkKind::GroupByAggregate { result, .. },
                ..
            }) => {
                assert_eq!(result.to_string(), "(__k, __agg)");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The pass result matches direct specialized lowering up to naming.
        let direct = lower(&keyed_group_sum(), &srcs(), &UdfRegistry::new()).unwrap();
        assert_eq!(fused.symbols(), direct.symbols());
    }

    #[test]
    fn pass_is_idempotent() {
        let direct = lower(&keyed_group_sum(), &srcs(), &UdfRegistry::new()).unwrap();
        let (again, changed) = specialize_group_aggregate(&direct);
        assert!(!changed);
        assert_eq!(again, direct);
    }

    #[test]
    fn pass_leaves_plain_group_by_alone() {
        let q = Query::source("ns")
            .group_by(Expr::var("x") % Expr::liti(3), "x")
            .build();
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        let (out, changed) = specialize_group_aggregate(&chain);
        assert!(!changed);
        assert_eq!(out, chain);
    }

    #[test]
    fn constant_folding_reduces_literals() {
        let q = Query::source("ns")
            .select(
                Expr::var("x") * (Expr::liti(2) + Expr::liti(3)),
                "x",
            )
            .build();
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        let folded = fold_constants(&chain);
        match &folded.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Expr(e),
                ..
            } => assert_eq!(e.to_string(), "(x * 5)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn chain_refs_var_detects_free_occurrences() {
        let q = Query::source("ns")
            .select(Expr::var("x") + Expr::var("outer"), "x")
            .build();
        let chain = lower_with(
            &q,
            &srcs(),
            &TyEnv::new().with("outer", Ty::I64),
            &UdfRegistry::new(),
            LowerOptions::default(),
        )
        .unwrap();
        assert!(chain_refs_var(&chain, "outer"));
        assert!(!chain_refs_var(&chain, "x"), "x is bound by the Trans");
        assert!(!chain_refs_var(&chain, "zzz"));
    }
}

/// Counts free occurrences of `name` in `e`.
fn occurrences(e: &Expr, name: &str) -> usize {
    let mut n = 0;
    e.visit(&mut |node| {
        if matches!(node, Expr::Var(v) if v == name) {
            n += 1;
        }
    });
    n
}

/// `true` for expressions cheap enough to duplicate during fusion.
fn is_trivial(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_)
    ) || matches!(e, Expr::Field(inner, _) if matches!(**inner, Expr::Var(_)))
}

/// Fuses adjacent element-wise operators at the IR level:
///
/// * `Trans(f) ∘ Trans(g)` → `Trans(g ∘ f)` — guarded against work
///   duplication: only when the second body uses its parameter at most
///   once, or the first body is trivial to recompute;
/// * `Pred(p) ∘ Pred(q)` → `Pred(p && q)` (sequential guards and a
///   short-circuit conjunction are equivalent for pure predicates);
/// * `Pred(p)` after `Trans(f)` stays put (it must see the transformed
///   element), but `Trans` after `Pred` may still fuse with a later
///   `Trans` across it when the predicate is untouched — not attempted
///   here; the code generator already emits straight-line loop bodies, so
///   this pass is about shrinking the IR, not correctness.
///
/// Returns the rewritten chain and whether anything fused.
pub fn fuse_elementwise(chain: &QuilChain) -> (QuilChain, bool) {
    use crate::ir::PredKind;
    use steno_expr::subst::subst;

    let mut changed = false;
    // Recurse into nested chains first.
    let mut ops: Vec<QuilOp> = chain
        .ops
        .iter()
        .map(|op| match op {
            QuilOp::Trans {
                param,
                kind: TransKind::Nested(n),
                in_ty,
                out_ty,
                span,
            } => {
                let (inner, ch) = fuse_elementwise(&n.chain);
                changed |= ch;
                QuilOp::Trans {
                    param: param.clone(),
                    kind: TransKind::Nested(crate::ir::NestedTrans {
                        chain: Box::new(inner),
                        wrap: n.wrap.clone(),
                    }),
                    in_ty: in_ty.clone(),
                    out_ty: out_ty.clone(),
                    span: *span,
                }
            }
            other => other.clone(),
        })
        .collect();

    let mut i = 0;
    while i + 1 < ops.len() {
        let fused = match (&ops[i], &ops[i + 1]) {
            (
                QuilOp::Trans {
                    param: p1,
                    kind: TransKind::Expr(e1),
                    in_ty,
                    span,
                    ..
                },
                QuilOp::Trans {
                    param: p2,
                    kind: TransKind::Expr(e2),
                    out_ty,
                    ..
                },
            ) if occurrences(e2, p2) <= 1 || is_trivial(e1) => Some(QuilOp::Trans {
                param: p1.clone(),
                kind: TransKind::Expr(subst(e2, p2, e1)),
                in_ty: in_ty.clone(),
                out_ty: out_ty.clone(),
                span: *span,
            }),
            (
                QuilOp::Pred {
                    param: p1,
                    kind: PredKind::Expr(e1),
                    elem_ty,
                    span,
                },
                QuilOp::Pred {
                    param: p2,
                    kind: PredKind::Expr(e2),
                    ..
                },
            ) => Some(QuilOp::Pred {
                param: p1.clone(),
                kind: PredKind::Expr(
                    e1.clone()
                        .and(steno_expr::subst::rename(e2, p2, p1)),
                ),
                elem_ty: elem_ty.clone(),
                span: *span,
            }),
            _ => None,
        };
        match fused {
            Some(op) => {
                ops.splice(i..=i + 1, [op]);
                changed = true;
            }
            None => i += 1,
        }
    }
    (
        QuilChain {
            src: chain.src.clone(),
            ops,
            agg: chain.agg.clone(),
        },
        changed,
    )
}

#[cfg(test)]
mod fuse_tests {
    use super::*;
    use crate::lower::lower;
    use steno_expr::{Ty, UdfRegistry};
    use steno_query::typing::SourceTypes;
    use steno_query::Query;

    fn srcs() -> SourceTypes {
        SourceTypes::new().with("xs", Ty::F64)
    }

    #[test]
    fn adjacent_transforms_fuse_when_linear() {
        let q = Query::source("xs")
            .select(Expr::var("x") + Expr::litf(1.0), "x")
            .select(Expr::var("y") * Expr::litf(2.0), "y")
            .sum()
            .build();
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        let (fused, changed) = fuse_elementwise(&chain);
        assert!(changed);
        assert_eq!(fused.ops.len(), 1);
        match &fused.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Expr(e),
                ..
            } => assert_eq!(e.to_string(), "((x + 1.0) * 2.0)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nonlinear_use_of_expensive_transform_does_not_fuse() {
        // select(x + 1).select(y * y): fusing would evaluate x + 1 twice.
        let q = Query::source("xs")
            .select(Expr::var("x") + Expr::litf(1.0), "x")
            .select(Expr::var("y") * Expr::var("y"), "y")
            .sum()
            .build();
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        let (fused, changed) = fuse_elementwise(&chain);
        assert!(!changed);
        assert_eq!(fused.ops.len(), 2);
    }

    #[test]
    fn trivial_first_transform_fuses_even_nonlinearly() {
        // select(x.abs()).select(y * y) — abs(x) is not trivial; but
        // select(x).field-style projections are. Use a Field projection.
        let srcs = SourceTypes::new().with("kvs", Ty::pair(Ty::F64, Ty::F64));
        let q = Query::source("kvs")
            .select(Expr::var("kv").field(0), "kv")
            .select(Expr::var("y") * Expr::var("y"), "y")
            .sum()
            .build();
        let chain = lower(&q, &srcs, &UdfRegistry::new()).unwrap();
        let (fused, changed) = fuse_elementwise(&chain);
        assert!(changed);
        assert_eq!(fused.ops.len(), 1);
        match &fused.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Expr(e),
                ..
            } => assert_eq!(e.to_string(), "(kv.0 * kv.0)"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn adjacent_predicates_conjoin() {
        let q = Query::source("xs")
            .where_(Expr::var("a").gt(Expr::litf(0.0)), "a")
            .where_(Expr::var("b").lt(Expr::litf(10.0)), "b")
            .count()
            .build();
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        let (fused, changed) = fuse_elementwise(&chain);
        assert!(changed);
        assert_eq!(fused.ops.len(), 1);
        match &fused.ops[0] {
            QuilOp::Pred {
                kind: crate::ir::PredKind::Expr(e),
                ..
            } => assert_eq!(e.to_string(), "((a > 0.0) && (a < 10.0))"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fusion_preserves_results() {
        use steno_expr::eval::Env;
        // Differential check through the chain interpreter semantics:
        // compare the fused and unfused chains element-for-element via the
        // reference evaluator embedded in a manual fold.
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::litf(0.5), "x")
            .select(Expr::var("y") + Expr::litf(3.0), "y")
            .where_(Expr::var("z").gt(Expr::litf(2.0)), "z")
            .where_(Expr::var("w").lt(Expr::litf(40.0)), "w")
            .sum()
            .build();
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        let (fused, changed) = fuse_elementwise(&chain);
        assert!(changed);
        assert!(fused.ops.len() < chain.ops.len());
        let _ = Env::new();
        // Shape sanity: Src Trans Pred Agg Ret after fusion.
        assert_eq!(fused.to_string(), "Src Trans Pred Agg[Sum] Ret");
    }
}
