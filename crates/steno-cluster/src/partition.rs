//! Partitioned collections.
//!
//! "To execute a query on a large data set, a common strategy is to
//! divide the data set into partitions, and execute the query in parallel
//! on each partition" (§6).

use steno_expr::{Column, Value};

/// A named collection split into partitions, one per (simulated) storage
/// node.
#[derive(Clone, Debug)]
pub struct DistributedCollection {
    /// The source name queries refer to.
    pub name: String,
    /// The partitions.
    pub partitions: Vec<Column>,
}

impl DistributedCollection {
    /// Partitions an f64 column into `n` contiguous chunks.
    pub fn from_f64(name: impl Into<String>, data: Vec<f64>, n: usize) -> DistributedCollection {
        let n = n.max(1);
        let chunk = data.len().div_ceil(n);
        let partitions = if data.is_empty() {
            vec![Column::from_f64(Vec::new()); n]
        } else {
            data.chunks(chunk.max(1))
                .map(|c| Column::from_f64(c.to_vec()))
                .collect()
        };
        DistributedCollection {
            name: name.into(),
            partitions,
        }
    }

    /// Partitions an i64 column into `n` contiguous chunks.
    pub fn from_i64(name: impl Into<String>, data: Vec<i64>, n: usize) -> DistributedCollection {
        let n = n.max(1);
        let chunk = data.len().div_ceil(n);
        let partitions = if data.is_empty() {
            vec![Column::from_i64(Vec::new()); n]
        } else {
            data.chunks(chunk.max(1))
                .map(|c| Column::from_i64(c.to_vec()))
                .collect()
        };
        DistributedCollection {
            name: name.into(),
            partitions,
        }
    }

    /// Partitions a row collection (points) into `n` contiguous chunks.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_rows(
        name: impl Into<String>,
        data: Vec<f64>,
        dim: usize,
        n: usize,
    ) -> DistributedCollection {
        let n = n.max(1);
        let rows = data.len() / dim;
        assert_eq!(data.len(), rows * dim, "ragged row data");
        let rows_per = rows.div_ceil(n).max(1);
        let mut partitions = Vec::new();
        let mut offset = 0;
        while offset < rows {
            let take = rows_per.min(rows - offset);
            partitions.push(Column::from_rows(
                data[offset * dim..(offset + take) * dim].to_vec(),
                dim,
            ));
            offset += take;
        }
        if partitions.is_empty() {
            partitions.push(Column::from_rows(Vec::new(), dim));
        }
        DistributedCollection {
            name: name.into(),
            partitions,
        }
    }

    /// Partitions boxed values into `n` contiguous chunks.
    pub fn from_values(
        name: impl Into<String>,
        data: Vec<Value>,
        n: usize,
    ) -> DistributedCollection {
        let n = n.max(1);
        let chunk = data.len().div_ceil(n);
        let partitions = if data.is_empty() {
            vec![Column::from_values(Vec::new()); n]
        } else {
            data.chunks(chunk.max(1))
                .map(|c| Column::from_values(c.to_vec()))
                .collect()
        };
        DistributedCollection {
            name: name.into(),
            partitions,
        }
    }

    /// The number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of elements across partitions.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Column::len).sum()
    }

    /// `true` when every partition is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reassembles the collection (partition order) for serial baselines.
    pub fn to_column(&self) -> Column {
        let mut values = Vec::with_capacity(self.len());
        for p in &self.partitions {
            values.extend(p.to_values());
        }
        Column::from_values(values)
    }
}

/// Hash-partitions boxed values by key image into `n` buckets — the
/// exchange operator used between map and reduce stages when keys must be
/// co-located.
pub fn hash_exchange(values: &[Value], n: usize, key: impl Fn(&Value) -> Value) -> Vec<Vec<Value>> {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let n = n.max(1);
    let mut buckets = vec![Vec::new(); n];
    for v in values {
        let mut h = DefaultHasher::new();
        key(v).key().hash(&mut h);
        let b = (h.finish() % n as u64) as usize;
        buckets[b].push(v.clone());
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_partitioning_covers_all_elements() {
        let d = DistributedCollection::from_f64("xs", (0..10).map(|i| i as f64).collect(), 3);
        assert_eq!(d.partition_count(), 3);
        assert_eq!(d.len(), 10);
        let sizes: Vec<usize> = d.partitions.iter().map(Column::len).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        assert_eq!(d.to_column().len(), 10);
    }

    #[test]
    fn empty_collections_still_have_partitions() {
        let d = DistributedCollection::from_f64("xs", vec![], 4);
        assert!(d.is_empty());
        assert_eq!(d.partition_count(), 4);
    }

    #[test]
    fn row_partitioning_keeps_rows_intact() {
        let data: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let d = DistributedCollection::from_rows("pts", data, 3, 4);
        assert_eq!(d.len(), 10);
        for p in &d.partitions {
            // Every partition holds whole rows.
            assert_eq!(p.value_at(0).as_row().unwrap().len(), 3);
        }
    }

    #[test]
    fn hash_exchange_groups_equal_keys() {
        let values: Vec<Value> = (0..40)
            .map(|i| Value::pair(Value::I64(i % 5), Value::I64(i)))
            .collect();
        let buckets = hash_exchange(&values, 3, |v| v.as_pair().unwrap().0.clone());
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 40);
        // All pairs with the same key land in the same bucket.
        for k in 0..5 {
            let holders: Vec<usize> = buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| {
                    b.iter()
                        .any(|v| v.as_pair().unwrap().0 == &Value::I64(k))
                })
                .map(|(i, _)| i)
                .collect();
            assert_eq!(holders.len(), 1, "key {k} split across buckets");
        }
    }
}
