//! The public optimization entry point: compiled queries and the cache.
//!
//! `CompiledQuery::compile` runs the full Steno pipeline of §3 —
//! canonical chain extraction, QUIL lowering, specialization passes, the
//! pushdown-automaton code generator, and bytecode assembly — and records
//! how long it took. That duration is the reproduction's analogue of the
//! paper's one-off ~69 ms cost of invoking `csc` and loading the DLL
//! (§7.1), and it amortizes the same way: via the [`QueryCache`].

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::{Mutex, MutexGuard, PoisonError};

use steno_codegen::{generate, render_rust};
use steno_expr::typecheck::TyEnv;
use steno_expr::{DataContext, Ty, UdfRegistry, Value};
use steno_query::typing::SourceTypes;
use steno_query::QueryExpr;
use steno_quil::ir::QuilChain;
use steno_quil::lower::{lower_with, LowerOptions};
use steno_quil::passes;

use steno_opt::{
    choose_tier, observe_selectivities, rewrite as rewrite_chain, DriftConfig, LoopStats,
    ObservedRun, PlanStats, RewriteEvent,
};

use crate::compile::assemble_hinted;
use crate::exec::{run_program, run_program_with, VmError};
use crate::instr::Program;
use crate::interrupt::Interrupt;
use crate::prepared::Bindings;

/// An error from the optimization pipeline.
#[derive(Clone, Debug, PartialEq)]
pub enum OptimizeError {
    /// The query cannot be lowered to QUIL (type error or unsupported
    /// shape) — callers should fall back to the unoptimized executor.
    Lower(steno_quil::LowerError),
    /// Code generation failed (internal invariant).
    Gen(String),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Lower(e) => write!(f, "{e}"),
            OptimizeError::Gen(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

/// Whether the compiler may emit batch-vectorized loops.
///
/// `Auto` (the default) vectorizes every eligible fused loop and falls
/// back to the scalar tiers otherwise; `Off` disables the tier entirely
/// (ablation baselines, debugging). Per-loop fallback reasons are
/// reported by [`CompiledQuery::batch_fallbacks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VectorizationPolicy {
    /// Vectorize when the operator chain and element types allow it.
    Auto,
    /// Never vectorize; use the scalar/fused tiers only.
    Off,
}

/// Which execution tier a compiled query's hot loops landed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// All loops run element-at-a-time (scalar or fused-scalar).
    Scalar,
    /// At least one loop runs on the typed column-batch engine.
    Vectorized,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineKind::Scalar => write!(f, "scalar"),
            EngineKind::Vectorized => write!(f, "vectorized"),
        }
    }
}

/// Tuning knobs for the optimization pipeline, used by the ablation
/// benchmarks. The defaults are the full Steno configuration.
#[derive(Clone, Copy, Debug)]
pub struct StenoOptions {
    /// QUIL-level options (GroupByAggregate specialization, §4.3).
    pub lower: LowerOptions,
    /// Whether the VM's loop-fusion tier runs.
    pub fusion: bool,
    /// Whether the VM's batch-vectorization tier runs.
    pub vectorize: VectorizationPolicy,
    /// Whether the verified algebraic rewrite pass (`steno-opt`) runs
    /// on the lowered chain. The statically sound rules always apply;
    /// the feedback-directed rules (filter reordering, predicate
    /// pushdown) additionally need observed selectivities via
    /// [`CompileFeedback::sample_ctx`].
    pub rewrites: bool,
}

impl Default for StenoOptions {
    fn default() -> StenoOptions {
        StenoOptions {
            lower: LowerOptions::default(),
            fusion: true,
            vectorize: VectorizationPolicy::Auto,
            rewrites: true,
        }
    }
}

/// Run-time facts fed back into a (re)compilation — the input half of
/// the profile→plan loop. [`CompileFeedback::default`] (no facts)
/// reproduces a blind first compile.
#[derive(Clone, Copy, Debug, Default)]
pub struct CompileFeedback<'a> {
    /// Source data to sample per-predicate selectivities from, enabling
    /// the feedback-directed rewrite rules (filter reordering,
    /// predicate pushdown). Sampling reads at most a few hundred
    /// elements through the reference evaluator.
    pub sample_ctx: Option<&'a DataContext>,
    /// Observed per-loop element counts and selection density, driving
    /// the §7.1 cost-based tier choice.
    pub loop_stats: Option<LoopStats>,
}

/// Elements sampled per source when measuring predicate selectivities.
const SELECTIVITY_SAMPLE: usize = 512;

/// A Steno-optimized query, ready to run against any compatible context.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    program: Program,
    rust_source: String,
    compile_time: Duration,
    quil: String,
    chain: QuilChain,
    rewrites: Vec<RewriteEvent>,
    measured: Option<LoopStats>,
}

impl CompiledQuery {
    /// Runs the full optimization pipeline on a canonicalized query.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::Lower`] for queries Steno does not
    /// optimize; execute those with `steno_linq::interp` instead.
    pub fn compile(
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
    ) -> Result<CompiledQuery, OptimizeError> {
        Self::compile_with(q, sources, udfs, LowerOptions::default())
    }

    /// As [`CompiledQuery::compile`] with explicit lowering options (used
    /// by the specialization ablation).
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::compile`].
    pub fn compile_with(
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        opts: LowerOptions,
    ) -> Result<CompiledQuery, OptimizeError> {
        Self::compile_tuned(
            q,
            sources,
            udfs,
            StenoOptions {
                lower: opts,
                ..StenoOptions::default()
            },
        )
    }

    /// The fully-tunable entry point (ablation benchmarks).
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::compile`].
    pub fn compile_tuned(
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        opts: StenoOptions,
    ) -> Result<CompiledQuery, OptimizeError> {
        Self::compile_tuned_feedback(q, sources, udfs, opts, CompileFeedback::default())
    }

    /// The feedback-directed entry point: as
    /// [`CompiledQuery::compile_tuned`], additionally consuming measured
    /// run facts. With a [`CompileFeedback::sample_ctx`] the rewrite
    /// pass measures per-predicate selectivities and may reorder or push
    /// down filters; with [`CompileFeedback::loop_stats`] the backend
    /// applies the §7.1 break-even to pick loop tiers instead of the
    /// static order.
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::compile`].
    pub fn compile_tuned_feedback(
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        opts: StenoOptions,
        feedback: CompileFeedback<'_>,
    ) -> Result<CompiledQuery, OptimizeError> {
        let start = Instant::now();
        let chain = lower_with(q, &sources, &TyEnv::new(), udfs, opts.lower)
            .map_err(OptimizeError::Lower)?;
        let chain = if opts.lower.specialize_group_aggregate {
            passes::specialize_group_aggregate(&chain).0
        } else {
            chain
        };
        // The algebraic rewrite pass runs *before* element-wise fusion:
        // reordering has to see individual filters, not the conjunction
        // the fuser folds them into (which then preserves the chosen
        // order inside its short-circuit `&&`).
        let (chain, rewrites) = if opts.rewrites {
            let sampled = feedback
                .sample_ctx
                .map(|ctx| observe_selectivities(&chain, ctx, udfs, SELECTIVITY_SAMPLE));
            let out = rewrite_chain(&chain, udfs, sampled.as_ref());
            (out.chain, out.log)
        } else {
            (chain, Vec::new())
        };
        let chain = if opts.lower.specialize_group_aggregate {
            passes::fuse_elementwise(&chain).0
        } else {
            chain
        };
        let chain = passes::fold_constants(&chain);
        Self::finish_feedback(
            chain,
            udfs,
            start,
            opts.fusion,
            opts.vectorize == VectorizationPolicy::Auto,
            rewrites,
            feedback.loop_stats,
        )
    }

    /// Compiles a pre-lowered QUIL chain (used by the distributed planner,
    /// which optimizes per-vertex subchains separately, §6).
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError::Gen`] for internal failures.
    pub fn from_chain(chain: &QuilChain, udfs: &UdfRegistry) -> Result<CompiledQuery, OptimizeError> {
        Self::finish_tuned(chain.clone(), udfs, Instant::now(), true, true)
    }

    fn finish_tuned(
        chain: QuilChain,
        udfs: &UdfRegistry,
        start: Instant,
        fusion: bool,
        vectorize: bool,
    ) -> Result<CompiledQuery, OptimizeError> {
        Self::finish_feedback(chain, udfs, start, fusion, vectorize, Vec::new(), None)
    }

    fn finish_feedback(
        chain: QuilChain,
        udfs: &UdfRegistry,
        start: Instant,
        fusion: bool,
        vectorize: bool,
        rewrites: Vec<RewriteEvent>,
        loop_stats: Option<LoopStats>,
    ) -> Result<CompiledQuery, OptimizeError> {
        let quil = chain.to_string();
        let imp = generate(&chain).map_err(|e| OptimizeError::Gen(e.to_string()))?;
        let rust_source = render_rust(&imp);
        let tier_hint = loop_stats.map(|ls| choose_tier(&ls, crate::batch::BATCH));
        let program = assemble_hinted(&imp, udfs, fusion, vectorize, tier_hint)
            .map_err(|e| OptimizeError::Gen(e.to_string()))?;
        Ok(CompiledQuery {
            program,
            rust_source,
            compile_time: start.elapsed(),
            quil,
            chain,
            rewrites,
            measured: loop_stats,
        })
    }

    /// The optimized QUIL chain this query compiled from — the input to
    /// the plan verifier (`steno-analysis`) and the lint framework.
    pub fn chain(&self) -> &QuilChain {
        &self.chain
    }

    /// The compiled register program — the input to the tape verifier
    /// ([`crate::check::check_program`]).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Executes the compiled query against a context.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] for missing sources/UDFs or data-dependent
    /// failures.
    pub fn run(&self, ctx: &DataContext, udfs: &UdfRegistry) -> Result<Value, VmError> {
        let bindings = Bindings::resolve(&self.program, ctx, udfs)?;
        run_program(&self.program, &bindings)
    }

    /// As [`CompiledQuery::run`], polling `interrupt` at loop back-edges
    /// and batch boundaries so a cancelled or past-deadline execution
    /// aborts in bounded time with [`VmError::Cancelled`] /
    /// [`VmError::DeadlineExceeded`]. This is the entry point the
    /// `steno-serve` worker pool uses to enforce per-query deadlines.
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::run`], plus the two interruption errors.
    pub fn run_with(
        &self,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        interrupt: &Interrupt,
    ) -> Result<Value, VmError> {
        let bindings = Bindings::resolve(&self.program, ctx, udfs)?;
        run_program_with(&self.program, &bindings, interrupt)
    }

    /// As [`CompiledQuery::run`], additionally returning a
    /// [`crate::profile::QueryProfile`] of where elements and time went.
    /// Runs the profiled monomorphization of the interpreter; use
    /// [`CompiledQuery::run`] when the counters are not needed.
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::run`].
    pub fn run_profiled(
        &self,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<(Value, crate::profile::QueryProfile), VmError> {
        let bindings = Bindings::resolve(&self.program, ctx, udfs)?;
        crate::exec::run_program_profiled(&self.program, &bindings)
    }

    /// As [`CompiledQuery::run_profiled`] with cooperative interruption
    /// (see [`CompiledQuery::run_with`]) — profiled adaptive execution
    /// under a deadline.
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::run_with`].
    pub fn run_profiled_with(
        &self,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        interrupt: &Interrupt,
    ) -> Result<(Value, crate::profile::QueryProfile), VmError> {
        let bindings = Bindings::resolve(&self.program, ctx, udfs)?;
        crate::exec::run_program_profiled_with(&self.program, &bindings, interrupt)
    }

    /// As [`CompiledQuery::run_profiled_with`], additionally recording
    /// `vm.run`/`vm.loop` spans into `tracer` (see
    /// [`crate::exec::run_program_traced`]). With a disabled tracer this
    /// is exactly [`CompiledQuery::run_profiled_with`].
    ///
    /// # Errors
    ///
    /// As [`CompiledQuery::run_with`].
    pub fn run_traced(
        &self,
        ctx: &DataContext,
        udfs: &UdfRegistry,
        interrupt: &Interrupt,
        tracer: &steno_obs::Tracer,
        parent: Option<steno_obs::SpanId>,
    ) -> Result<(Value, crate::profile::QueryProfile), VmError> {
        let bindings = Bindings::resolve(&self.program, ctx, udfs)?;
        crate::exec::run_program_traced(&self.program, &bindings, interrupt, tracer, parent)
    }

    /// The measured per-loop observations this plan was compiled
    /// against ([`CompileFeedback::loop_stats`]); `None` for a blind
    /// first compile. EXPLAIN surfaces this as the `measured:` line.
    pub fn measured_stats(&self) -> Option<LoopStats> {
        self.measured
    }

    /// The algebraic rewrite log: every rewrite the optimizer attempted
    /// on this plan, in application order, including rewrites the plan
    /// verifier rejected (`applied: false`). Empty when
    /// [`StenoOptions::rewrites`] was off or nothing matched.
    pub fn rewrite_log(&self) -> &[RewriteEvent] {
        &self.rewrites
    }

    /// The generated Rust source (the paper's generated C#, Fig. 5–8).
    pub fn rust_source(&self) -> &str {
        &self.rust_source
    }

    /// The QUIL sentence this query lowered to.
    pub fn quil(&self) -> &str {
        &self.quil
    }

    /// How long optimization + code generation took (the one-off cost of
    /// §7.1).
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// The result type.
    pub fn result_ty(&self) -> &Ty {
        &self.program.result_ty
    }

    /// The number of bytecode instructions.
    pub fn instr_count(&self) -> usize {
        self.program.len()
    }

    /// How many loops the fusion tier compiled to whole-loop kernels.
    pub fn fused_loops(&self) -> u32 {
        self.program.n_fused
    }

    /// How many loops the vectorization tier compiled to column-batch
    /// programs (§9's MonetDB/X100-style execution).
    pub fn vectorized_loops(&self) -> u32 {
        self.program.n_batch
    }

    /// Which engine the query's hot loops run on.
    pub fn engine(&self) -> EngineKind {
        if self.program.n_batch > 0 {
            EngineKind::Vectorized
        } else {
            EngineKind::Scalar
        }
    }

    /// The batch size used by the vectorized engine.
    pub fn batch_size(&self) -> usize {
        crate::batch::BATCH
    }

    /// Why loops fell back from the vectorized tier (deduplicated, in
    /// first-occurrence order; empty when everything vectorized or
    /// vectorization was off).
    pub fn batch_fallbacks(&self) -> &[crate::instr::FallbackReason] {
        &self.program.batch_fallbacks
    }

    /// How many per-lane integer-division trap guards the compiler
    /// dropped because range analysis proved the divisor non-zero.
    pub fn guards_dropped(&self) -> u32 {
        self.program.n_guards_dropped
    }

    /// The compiler's tier decision per loop, in compilation order
    /// (outer loops before the loops nested inside them). This is what
    /// `Steno::explain` renders.
    pub fn loop_plans(&self) -> &[crate::instr::LoopPlan] {
        &self.program.loop_plans
    }

    /// Names of the fused batch kernels the backend selected, in
    /// compilation order: whole-tape shapes (e.g.
    /// `"filter(x%3==0)·sum(x*x):i64"`) followed by any pairwise kernel
    /// fusions (`"muladd:f64"`, `"mulred:i64"`). Empty when every loop
    /// runs the plain kernel sequence.
    pub fn fused_kernels(&self) -> &[String] {
        &self.program.fused_kernels
    }

    /// How many batch columns the lifetime packer recycled instead of
    /// allocating fresh (each saved column is 1024 lanes of traffic the
    /// kernel sequence no longer touches).
    pub fn slots_reused(&self) -> u32 {
        self.program.n_slots_reused
    }

    /// How many loop-invariant constants the backend hoisted out of
    /// scalar loop bodies to the program entry.
    pub fn hoisted(&self) -> u32 {
        self.program.n_hoisted
    }

    /// How many adjacent scalar instruction pairs the backend threaded
    /// into superinstructions (compare→branch, increment→jump,
    /// multiply→add).
    pub fn superinstrs(&self) -> u32 {
        self.program.n_superinstrs
    }
}

/// Aggregate counters for a [`QueryCache`]: the admission-control view
/// of the plan cache a multi-tenant service watches (hit rate, pressure
/// via evictions, occupancy vs the cap).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled fresh.
    pub misses: u64,
    /// Entries evicted to enforce the capacity cap.
    pub evictions: u64,
    /// Current number of cached plans.
    pub len: usize,
    /// The capacity cap, `None` for an unbounded cache.
    pub capacity: Option<usize>,
}

/// One cached plan plus its LRU stamp and decayed run statistics (the
/// drift-detection state behind [`QueryCache::note_run`]).
struct CacheEntry {
    compiled: Arc<CompiledQuery>,
    last_used: u64,
    stats: PlanStats,
    reopt_events: Vec<String>,
    /// Total executions of this plan (every run, not just the profiled
    /// ones folded into `stats`) — the adaptive sampling cadence.
    execs: u64,
}

/// Map, LRU clock, and counters behind one lock, so a hit's
/// `last_used` bump and counter increment are atomic together.
#[derive(Default)]
struct CacheInner {
    entries: HashMap<String, CacheEntry>,
    tick: u64,
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl CacheInner {
    /// Looks `key` up, stamping the entry most-recently-used on a hit.
    fn get(&mut self, key: &str) -> Option<Arc<CompiledQuery>> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&e.compiled))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `key`, evicting least-recently-used entries while the
    /// cache is at capacity. The LRU scan is linear, which is fine at
    /// plan-cache sizes (hundreds of distinct query texts, not
    /// millions of rows).
    fn insert(&mut self, key: String, compiled: Arc<CompiledQuery>) {
        if let Some(cap) = self.capacity {
            while self.entries.len() >= cap && !self.entries.contains_key(&key) {
                let victim = self
                    .entries
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        self.entries.remove(&k);
                        self.evictions += 1;
                    }
                    None => break,
                }
            }
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(
            key,
            CacheEntry {
                compiled,
                last_used: tick,
                stats: PlanStats::new(),
                reopt_events: Vec::new(),
                execs: 0,
            },
        );
    }
}

/// A cache of compiled queries, keyed by their printed AST — "the query
/// object may be cached between invocations" (§3.3; the paper points at
/// Nectar \[18\] for a full design). Optionally bounded
/// ([`QueryCache::with_capacity`]) with least-recently-used eviction,
/// so a multi-tenant plan cache cannot grow without limit under a churn
/// of distinct query texts.
#[derive(Default)]
pub struct QueryCache {
    inner: Mutex<CacheInner>,
}

/// Locks a mutex, recovering from poisoning: cache state is always
/// internally consistent (plain inserts and counter bumps), so a panic
/// elsewhere must not wedge the cache.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl QueryCache {
    /// Creates an empty, unbounded cache.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    /// Creates an empty cache holding at most `capacity` plans
    /// (clamped to at least 1); inserting past the cap evicts the
    /// least-recently-used plan and bumps [`CacheStats::evictions`].
    pub fn with_capacity(capacity: usize) -> QueryCache {
        let cache = QueryCache::new();
        lock(&cache.inner).capacity = Some(capacity.max(1));
        cache
    }

    /// The capacity cap, `None` for an unbounded cache.
    pub fn capacity(&self) -> Option<usize> {
        lock(&self.inner).capacity
    }

    /// Returns the compiled form of `q`, compiling at most once per
    /// distinct query text.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (which are not cached).
    pub fn get_or_compile(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
    ) -> Result<Arc<CompiledQuery>, OptimizeError> {
        let key = q.to_string();
        if let Some(hit) = lock(&self.inner).get(&key) {
            return Ok(hit);
        }
        let compiled = Arc::new(CompiledQuery::compile(q, sources, udfs)?);
        lock(&self.inner).insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// As [`QueryCache::get_or_compile`] with explicit tuning options;
    /// distinct options compile (and cache) separately.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (which are not cached).
    pub fn get_or_compile_tuned(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        opts: StenoOptions,
    ) -> Result<Arc<CompiledQuery>, OptimizeError> {
        self.get_or_compile_tuned_traced(q, sources, udfs, opts)
            .map(|(compiled, _hit)| compiled)
    }

    /// As [`QueryCache::get_or_compile_tuned`], additionally reporting
    /// whether the lookup hit (`true`) or compiled fresh (`false`) —
    /// the per-query view of the aggregate [`QueryCache::stats`].
    ///
    /// # Errors
    ///
    /// Propagates compilation errors (which are not cached).
    pub fn get_or_compile_tuned_traced(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
        opts: StenoOptions,
    ) -> Result<(Arc<CompiledQuery>, bool), OptimizeError> {
        let key = format!("{opts:?}|{q}");
        if let Some(hit) = lock(&self.inner).get(&key) {
            return Ok((hit, true));
        }
        let compiled = Arc::new(CompiledQuery::compile_tuned(q, sources, udfs, opts)?);
        lock(&self.inner).insert(key, Arc::clone(&compiled));
        Ok((compiled, false))
    }

    /// `(hits, misses)` counters (see [`QueryCache::detailed_stats`]
    /// for the full set including evictions).
    pub fn stats(&self) -> (u64, u64) {
        let inner = lock(&self.inner);
        (inner.hits, inner.misses)
    }

    /// The full counter set: hits, misses, evictions, occupancy, cap.
    pub fn detailed_stats(&self) -> CacheStats {
        let inner = lock(&self.inner);
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            len: inner.entries.len(),
            capacity: inner.capacity,
        }
    }

    /// Folds one observed run into the cached plan's decayed statistics
    /// and checks for drift, returning a human-readable reason when the
    /// observed workload has departed the plan's assumptions far enough
    /// (and for long enough — see [`DriftConfig`]'s hysteresis gates)
    /// to justify re-optimizing. The caller recompiles with
    /// [`CompiledQuery::compile_tuned_feedback`] and installs the
    /// result via [`QueryCache::install_reoptimized`]; this method
    /// never blocks on compilation itself. Returns `None` for uncached
    /// queries and plans that still fit.
    pub fn note_run(
        &self,
        q: &QueryExpr,
        opts: StenoOptions,
        run: ObservedRun,
        cfg: &DriftConfig,
    ) -> Option<String> {
        let key = format!("{opts:?}|{q}");
        let mut inner = lock(&self.inner);
        let entry = inner.entries.get_mut(&key)?;
        entry.stats.observe(run, cfg);
        let compile_ns = entry.compiled.compile_time().as_nanos() as f64;
        entry.stats.drift(cfg, compile_ns)
    }

    /// Replaces the cached plan for `q` with a re-optimized compilation,
    /// rebasing the drift assumptions onto current observations (the
    /// hysteresis that stops the same drift re-triggering) and recording
    /// `reason` for `EXPLAIN`'s `reopt:` lines. A no-op when `q` is not
    /// cached (e.g. evicted between drift detection and recompilation).
    pub fn install_reoptimized(
        &self,
        q: &QueryExpr,
        opts: StenoOptions,
        compiled: Arc<CompiledQuery>,
        reason: &str,
    ) {
        let key = format!("{opts:?}|{q}");
        let mut inner = lock(&self.inner);
        if let Some(entry) = inner.entries.get_mut(&key) {
            entry.compiled = compiled;
            entry.stats.rebase();
            entry.reopt_events.push(reason.to_string());
        }
    }

    /// The re-optimization events recorded for `q`, oldest first; empty
    /// when the plan never drifted (or is not cached).
    pub fn reopt_events(&self, q: &QueryExpr, opts: StenoOptions) -> Vec<String> {
        let key = format!("{opts:?}|{q}");
        lock(&self.inner)
            .entries
            .get(&key)
            .map(|e| e.reopt_events.clone())
            .unwrap_or_default()
    }

    /// How many observed runs have been folded into `q`'s cached plan
    /// statistics ([`QueryCache::note_run`] calls).
    pub fn plan_runs(&self, q: &QueryExpr, opts: StenoOptions) -> u64 {
        let key = format!("{opts:?}|{q}");
        lock(&self.inner)
            .entries
            .get(&key)
            .map(|e| e.stats.runs)
            .unwrap_or(0)
    }

    /// Counts one execution of `q`'s cached plan, returning the
    /// 0-based index of this execution (0 for uncached queries). The
    /// adaptive engine uses this as its sampling clock: *every* run
    /// ticks it, profiled or not, unlike [`QueryCache::note_run`] which
    /// only the profiled runs reach.
    pub fn begin_run(&self, q: &QueryExpr, opts: StenoOptions) -> u64 {
        let key = format!("{opts:?}|{q}");
        let mut inner = lock(&self.inner);
        match inner.entries.get_mut(&key) {
            Some(e) => {
                let n = e.execs;
                e.execs += 1;
                n
            }
            None => 0,
        }
    }

    /// The decayed per-loop observations for `q`'s cached plan, in the
    /// shape [`CompiledQuery::compile_tuned_feedback`] consumes; `None`
    /// before the first observed run (or for uncached queries).
    pub fn plan_loop_stats(&self, q: &QueryExpr, opts: StenoOptions) -> Option<LoopStats> {
        let key = format!("{opts:?}|{q}");
        let inner = lock(&self.inner);
        let entry = inner.entries.get(&key)?;
        if entry.stats.runs == 0 {
            return None;
        }
        Some(LoopStats {
            elements: entry.stats.ewma_elements,
            density: entry.stats.ewma_density,
            ns_per_elem: entry.stats.ewma_ns_per_elem,
        })
    }

    /// Number of cached queries.
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;
    use steno_query::Query;

    fn ctx() -> DataContext {
        DataContext::new()
            .with_source("xs", vec![1.0, 2.0, 3.0, 4.0])
            .with_source("ns", vec![1i64, 2, 3, 4, 5, 6])
    }

    fn run(q: &QueryExpr) -> Value {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let compiled = CompiledQuery::compile(q, (&c).into(), &udfs).unwrap();
        compiled.run(&c, &udfs).unwrap()
    }

    #[test]
    fn sum_of_squares_runs() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        assert_eq!(run(&q), Value::F64(30.0));
    }

    #[test]
    fn even_squares_runs() {
        let q = Query::source("ns")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .build();
        assert_eq!(
            run(&q),
            Value::seq(vec![Value::I64(4), Value::I64(16), Value::I64(36)])
        );
    }

    #[test]
    fn cache_compiles_once() {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = QueryCache::new();
        let q = Query::source("xs").sum().build();
        let a = cache.get_or_compile(&q, (&c).into(), &udfs).unwrap();
        let b = cache.get_or_compile(&q, (&c).into(), &udfs).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn unsupported_queries_report_lower_errors() {
        let q = Query::source("xs").concat(Query::source("xs")).build();
        let c = ctx();
        let err = CompiledQuery::compile(&q, (&c).into(), &UdfRegistry::new());
        assert!(matches!(err, Err(OptimizeError::Lower(_))));
    }

    #[test]
    fn compiled_query_exposes_artifacts() {
        let q = Query::source("xs").sum().build();
        let c = ctx();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &UdfRegistry::new()).unwrap();
        assert!(compiled.rust_source().contains("agg_0"));
        assert_eq!(compiled.quil(), "Src Agg[Sum] Ret");
        assert!(compiled.instr_count() > 0);
        assert_eq!(compiled.result_ty(), &Ty::F64);
    }

    #[test]
    fn loop_plans_record_vectorized_tier() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let c = ctx();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &UdfRegistry::new()).unwrap();
        assert_eq!(compiled.vectorized_loops(), 1);
        let plans = compiled.loop_plans();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].tier, crate::instr::LoopTier::Vectorized);
        assert_eq!(plans[0].vectorize_fallback, None);
    }

    #[test]
    fn loop_plans_record_fallback_reason_when_refused() {
        // A UDF call is not batch-eligible, so the vectorizer must
        // refuse and the plan must carry its exact reason string, which
        // also appears in batch_fallbacks.
        let mut udfs = UdfRegistry::new();
        udfs.register("twice", vec![Ty::F64], Ty::F64, |args: &[Value]| {
            Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0)
        });
        let q = Query::source("xs")
            .select(Expr::call("twice", vec![Expr::var("x")]), "x")
            .sum()
            .build();
        let c = ctx();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &udfs).unwrap();
        assert_eq!(compiled.vectorized_loops(), 0);
        let plans = compiled.loop_plans();
        assert_eq!(plans.len(), 1);
        assert_ne!(plans[0].tier, crate::instr::LoopTier::Vectorized);
        let reason = plans[0].vectorize_fallback.clone().unwrap();
        assert_eq!(compiled.batch_fallbacks(), std::slice::from_ref(&reason));
        assert!(!reason.to_string().is_empty());
    }

    #[test]
    fn nonzero_divisor_proof_unlocks_conditional_division() {
        // `if x % 2 == 0 { x / 2 } else { 3x + 1 }`: the division sits
        // under a conditional, which used to refuse the whole loop
        // ("trapping op under a conditional branch"). Range analysis
        // proves the divisor 2 excludes zero, so the division is no
        // longer counted as trapping, the loop vectorizes, and the
        // per-lane zero-divisor guard is dropped.
        let x = || Expr::var("x");
        let collatz = Expr::if_(
            (x() % Expr::liti(2)).eq(Expr::liti(0)),
            x() / Expr::liti(2),
            Expr::liti(3) * x() + Expr::liti(1),
        );
        let q = Query::source("ns")
            .select(collatz, "x")
            .sum_by(Expr::var("y"), "y")
            .build();
        let c = ctx();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &UdfRegistry::new()).unwrap();
        assert_eq!(compiled.vectorized_loops(), 1, "{:?}", compiled.batch_fallbacks());
        assert!(compiled.guards_dropped() >= 1);
        // ns = [1..6]: collatz steps 4, 1, 10, 2, 16, 3 → 36.
        assert_eq!(compiled.run(&c, &UdfRegistry::new()).unwrap(), Value::I64(36));
    }

    #[test]
    fn unprovable_divisor_keeps_the_guard_and_the_refusal() {
        // Dividing by the element itself cannot be proven non-zero, so
        // the conditional-branch refusal still applies.
        let x = || Expr::var("x");
        let q = Query::source("ns")
            .select(
                Expr::if_(
                    x().gt(Expr::liti(0)),
                    Expr::liti(100) / x(),
                    Expr::liti(0),
                ),
                "x",
            )
            .sum_by(Expr::var("y"), "y")
            .build();
        let c = ctx();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &UdfRegistry::new()).unwrap();
        assert_eq!(compiled.vectorized_loops(), 0);
        assert_eq!(compiled.guards_dropped(), 0);
        assert_eq!(
            compiled.batch_fallbacks(),
            [crate::instr::FallbackReason::TrapUnderConditional]
        );
    }

    #[test]
    fn loop_plans_skip_fallbacks_when_tier_disabled() {
        let q = Query::source("xs").sum().build();
        let c = ctx();
        let opts = StenoOptions {
            vectorize: VectorizationPolicy::Off,
            ..StenoOptions::default()
        };
        let compiled =
            CompiledQuery::compile_tuned(&q, (&c).into(), &UdfRegistry::new(), opts).unwrap();
        assert_eq!(compiled.vectorized_loops(), 0);
        assert!(compiled.batch_fallbacks().is_empty());
        for plan in compiled.loop_plans() {
            assert_ne!(plan.tier, crate::instr::LoopTier::Vectorized);
            assert_eq!(plan.vectorize_fallback, None);
        }
    }

    #[test]
    fn tuned_cache_keys_on_options() {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = QueryCache::new();
        let q = Query::source("xs").sum().build();
        let auto = StenoOptions::default();
        let off = StenoOptions {
            vectorize: VectorizationPolicy::Off,
            ..StenoOptions::default()
        };
        // Distinct options must not collide.
        let a = cache.get_or_compile_tuned(&q, (&c).into(), &udfs, auto).unwrap();
        let b = cache.get_or_compile_tuned(&q, (&c).into(), &udfs, off).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(a.engine(), EngineKind::Vectorized);
        assert_eq!(b.engine(), EngineKind::Scalar);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
        // Identical options must hit.
        let a2 = cache.get_or_compile_tuned(&q, (&c).into(), &udfs, auto).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let b2 = cache.get_or_compile_tuned(&q, (&c).into(), &udfs, off).unwrap();
        assert!(Arc::ptr_eq(&b, &b2));
        // Counters must agree: every miss is a cached entry, every
        // lookup is either a hit or a miss.
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 2));
        assert_eq!(misses as usize, cache.len());
    }

    #[test]
    fn profiled_run_counts_batches_and_selection_density() {
        // Where keeps half the elements: density must land at 3/6.
        let q = Query::source("ns")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .build();
        let c = ctx();
        let udfs = UdfRegistry::new();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &udfs).unwrap();
        assert_eq!(compiled.engine(), EngineKind::Vectorized);
        let (value, prof) = compiled.run_profiled(&c, &udfs).unwrap();
        assert_eq!(compiled.run(&c, &udfs).unwrap(), value);
        assert_eq!(prof.batch_loops, 1);
        assert_eq!(prof.batches, 1);
        assert_eq!(prof.batch_elements_in, 6);
        assert_eq!(prof.batch_elements_selected, 3);
        assert_eq!(prof.selection_density(), Some(0.5));
        assert_eq!(prof.out_elements, 3);
        assert!(prof.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn profiled_run_counts_scalar_work_and_udf_calls() {
        let mut udfs = UdfRegistry::new();
        udfs.register("twice", vec![Ty::F64], Ty::F64, |args: &[Value]| {
            Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0)
        });
        let q = Query::source("xs")
            .select(Expr::call("twice", vec![Expr::var("x")]), "x")
            .sum()
            .build();
        let c = ctx();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &udfs).unwrap();
        let (value, prof) = compiled.run_profiled(&c, &udfs).unwrap();
        assert_eq!(value, Value::F64(20.0));
        assert_eq!(prof.udf_calls, 4);
        assert_eq!(prof.src_reads, 4);
        assert!(prof.scalar_instrs > 0);
        assert_eq!(prof.batch_loops, 0);
    }

    #[test]
    fn lru_eviction_caps_the_cache_and_counts() {
        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = QueryCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let q1 = Query::source("xs").sum().build();
        let q2 = Query::source("xs").count().build();
        let q3 = Query::source("ns").sum().build();
        cache.get_or_compile(&q1, (&c).into(), &udfs).unwrap();
        cache.get_or_compile(&q2, (&c).into(), &udfs).unwrap();
        // Touch q1 so q2 is the least recently used.
        cache.get_or_compile(&q1, (&c).into(), &udfs).unwrap();
        cache.get_or_compile(&q3, (&c).into(), &udfs).unwrap();
        let stats = cache.detailed_stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.capacity, Some(2));
        // q1 survived (recently used); q2 was evicted and recompiles.
        let (hits_before, misses_before) = cache.stats();
        cache.get_or_compile(&q1, (&c).into(), &udfs).unwrap();
        cache.get_or_compile(&q2, (&c).into(), &udfs).unwrap();
        let (hits, misses) = cache.stats();
        assert_eq!(hits, hits_before + 1, "q1 must still be cached");
        assert_eq!(misses, misses_before + 1, "q2 must have been evicted");
        assert_eq!(cache.detailed_stats().evictions, 2);
    }

    #[test]
    fn reinserting_a_cached_key_does_not_evict() {
        // Hitting an existing key at capacity must not push anything out.
        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = QueryCache::with_capacity(1);
        let q = Query::source("xs").sum().build();
        for _ in 0..5 {
            cache.get_or_compile(&q, (&c).into(), &udfs).unwrap();
        }
        let stats = cache.detailed_stats();
        assert_eq!((stats.len, stats.evictions), (1, 0));
        assert_eq!(stats.hits, 4);
    }

    #[test]
    fn cache_lock_recovers_from_panicking_holder() {
        // A thread panicking while holding the cache's internal lock
        // must not wedge it: the poison-recovering `lock` helper hands
        // the guard to the next caller and the cache state stays
        // intact (the satellite contract for the VM cache lock).
        use std::panic::{catch_unwind, AssertUnwindSafe};

        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = std::sync::Arc::new(QueryCache::new());
        let q = Query::source("xs").sum().build();
        cache.get_or_compile(&q, (&c).into(), &udfs).unwrap();

        let poisoner = std::sync::Arc::clone(&cache);
        let handle = std::thread::spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let _guard = lock(&poisoner.inner);
                panic!("poison the cache lock");
            }));
        });
        handle.join().ok();

        // The cache still serves hits and accepts inserts.
        let before = cache.detailed_stats();
        assert_eq!(before.len, 1);
        cache.get_or_compile(&q, (&c).into(), &udfs).unwrap();
        let q2 = Query::source("ns").sum().build();
        cache.get_or_compile(&q2, (&c).into(), &udfs).unwrap();
        let after = cache.detailed_stats();
        assert_eq!(after.len, 2);
        assert_eq!(after.hits, before.hits + 1);
    }

    #[test]
    fn run_with_honors_deadline_and_cancellation() {
        use crate::interrupt::{CancelProbe, Interrupt};

        // A large enough input that execution spans many batches.
        let big: Vec<i64> = (1..200_000).collect();
        let c = DataContext::new().with_source("ns", big);
        let udfs = UdfRegistry::new();
        let q = Query::source("ns")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum_by(Expr::var("y"), "y")
            .build();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &udfs).unwrap();

        // Inert interrupt: identical result to plain run.
        let plain = compiled.run(&c, &udfs).unwrap();
        let inert = compiled.run_with(&c, &udfs, &Interrupt::none()).unwrap();
        assert_eq!(plain, inert);

        // Expired deadline: aborts instead of completing.
        let expired = Interrupt::none()
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        assert_eq!(
            compiled.run_with(&c, &udfs, &expired),
            Err(VmError::DeadlineExceeded)
        );

        // Pre-fired cancellation probe: aborts with Cancelled.
        let probe = std::sync::Arc::new(|| true) as CancelProbe;
        let cancelled = Interrupt::none().with_cancel_probe(probe);
        assert_eq!(
            compiled.run_with(&c, &udfs, &cancelled),
            Err(VmError::Cancelled)
        );
    }

    #[test]
    fn scalar_tier_polls_interrupts_at_back_edges() {
        use crate::interrupt::{CancelProbe, Interrupt};

        // A UDF call forces the scalar tier; cancellation must still
        // land via the dispatch loop's back-edge polling.
        let mut udfs = UdfRegistry::new();
        udfs.register("twice", vec![Ty::F64], Ty::F64, |args: &[Value]| {
            Value::F64(args[0].as_f64().unwrap_or(0.0) * 2.0)
        });
        let big: Vec<f64> = (0..50_000).map(f64::from).collect();
        let c = DataContext::new().with_source("xs", big);
        let q = Query::source("xs")
            .select(Expr::call("twice", vec![Expr::var("x")]), "x")
            .sum()
            .build();
        let compiled = CompiledQuery::compile(&q, (&c).into(), &udfs).unwrap();
        assert_eq!(compiled.engine(), EngineKind::Scalar);
        let probe = std::sync::Arc::new(|| true) as CancelProbe;
        let cancelled = Interrupt::none().with_cancel_probe(probe);
        assert_eq!(
            compiled.run_with(&c, &udfs, &cancelled),
            Err(VmError::Cancelled)
        );
    }

    #[test]
    fn tuned_and_default_compiles_share_no_entries() {
        // The default-keyed and option-keyed entries are distinct even
        // for the same query text, so mixing entry points cannot serve a
        // differently-tuned program.
        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = QueryCache::new();
        let q = Query::source("xs").sum().build();
        let plain = cache.get_or_compile(&q, (&c).into(), &udfs).unwrap();
        let tuned = cache
            .get_or_compile_tuned(&q, (&c).into(), &udfs, StenoOptions::default())
            .unwrap();
        assert!(!Arc::ptr_eq(&plain, &tuned));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn drift_lifecycle_is_deterministic_and_does_not_flap() {
        // The full re-optimization state machine, driven with synthetic
        // observations so every gate (min_runs, break-even, hysteresis,
        // cooldown) fires deterministically: no wall clocks involved.
        let c = ctx();
        let udfs = UdfRegistry::new();
        let cache = QueryCache::new();
        let opts = StenoOptions::default();
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
            .sum()
            .build();

        // Uncached queries report run index 0 and no stats.
        assert_eq!(cache.begin_run(&q, opts), 0);
        assert_eq!(cache.plan_runs(&q, opts), 0);
        assert!(cache.plan_loop_stats(&q, opts).is_none());

        let compiled = cache
            .get_or_compile_tuned(&q, (&c).into(), &udfs, opts)
            .unwrap();
        // The exec clock ticks on every begin_run, independent of
        // profiled-run bookkeeping.
        assert_eq!(cache.begin_run(&q, opts), 0);
        assert_eq!(cache.begin_run(&q, opts), 1);
        assert_eq!(cache.plan_runs(&q, opts), 0);

        let cfg = DriftConfig::default();
        // exec_ns is synthetic and enormous so the break-even gate
        // (total execution must exceed compile cost) passes on run one.
        let steady = ObservedRun {
            elements: 1_000.0,
            density: Some(0.9),
            exec_ns: 1e12,
            loop_ns: 0.0,
        };
        // Warmup: below min_runs nothing can trigger; at and beyond it,
        // a steady workload must not either.
        for i in 0..cfg.min_runs + 2 {
            assert_eq!(cache.note_run(&q, opts, steady, &cfg), None, "run {i}");
        }
        assert_eq!(cache.plan_runs(&q, opts), cfg.min_runs + 2);
        let ls = cache.plan_loop_stats(&q, opts).unwrap();
        assert!((ls.elements - 1_000.0).abs() < 1e-6);
        assert_eq!(ls.density, Some(0.9));

        // Selectivity collapses: the decayed density must depart the
        // plan's assumed density by more than the hysteresis band.
        let shifted = ObservedRun {
            density: Some(0.05),
            ..steady
        };
        let mut reason = None;
        for _ in 0..4 {
            if let Some(r) = cache.note_run(&q, opts, shifted, &cfg) {
                reason = Some(r);
                break;
            }
        }
        let reason = reason.expect("density collapse must trigger drift");
        assert!(reason.contains("selectivity drift"), "got: {reason}");

        // Install the re-optimized plan: entry swaps, event recorded,
        // and rebasing resets the drift baseline.
        let recompiled = Arc::new(
            CompiledQuery::compile_tuned(&q, (&c).into(), &udfs, opts).unwrap(),
        );
        cache.install_reoptimized(&q, opts, Arc::clone(&recompiled), &reason);
        let current = cache
            .get_or_compile_tuned(&q, (&c).into(), &udfs, opts)
            .unwrap();
        assert!(Arc::ptr_eq(&current, &recompiled));
        assert!(!Arc::ptr_eq(&current, &compiled));
        let events = cache.reopt_events(&q, opts);
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("selectivity drift"));

        // Hysteresis: the same shifted workload, continued well past the
        // cooldown window, must never re-trigger — the baseline now IS
        // the shifted workload. This is the no-flapping guarantee.
        for i in 0..cfg.cooldown_runs + cfg.min_runs + 8 {
            assert_eq!(
                cache.note_run(&q, opts, shifted, &cfg),
                None,
                "flap at post-reopt run {i}"
            );
        }
        assert_eq!(cache.reopt_events(&q, opts).len(), 1);
    }

    #[test]
    fn feedback_tier_choice_prefers_scalar_below_break_even() {
        // With observed element counts far below the batch break-even,
        // the cost model must veto the batch tier and stamp the loop
        // with its rationale; results stay identical to the default.
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::litf(2.0), "x")
            .sum()
            .build();
        let c = ctx();
        let udfs = UdfRegistry::new();
        let opts = StenoOptions::default();
        let baseline = CompiledQuery::compile_tuned(&q, (&c).into(), &udfs, opts).unwrap();
        assert_eq!(baseline.engine(), EngineKind::Vectorized);

        let fb = CompileFeedback {
            sample_ctx: None,
            loop_stats: Some(steno_opt::LoopStats {
                elements: 10.0,
                density: None,
                ns_per_elem: None,
            }),
        };
        let tuned =
            CompiledQuery::compile_tuned_feedback(&q, (&c).into(), &udfs, opts, fb).unwrap();
        let plans = tuned.loop_plans();
        assert!(!plans.is_empty());
        let why = plans[0].chosen_by.as_deref().expect("rationale recorded");
        assert!(why.contains("break-even"), "got: {why}");
        assert_ne!(plans[0].tier, crate::instr::LoopTier::Vectorized);
        assert_eq!(
            tuned.run(&c, &udfs).unwrap(),
            baseline.run(&c, &udfs).unwrap()
        );

        // Counts comfortably above break-even keep the batch tier and
        // still record why.
        let fb = CompileFeedback {
            sample_ctx: None,
            loop_stats: Some(steno_opt::LoopStats {
                elements: 1e6,
                density: Some(0.5),
                ns_per_elem: None,
            }),
        };
        let tuned =
            CompiledQuery::compile_tuned_feedback(&q, (&c).into(), &udfs, opts, fb).unwrap();
        let plans = tuned.loop_plans();
        assert_eq!(plans[0].tier, crate::instr::LoopTier::Vectorized);
        let why = plans[0].chosen_by.as_deref().expect("rationale recorded");
        assert!(why.contains("break-even"), "got: {why}");
    }

    #[test]
    fn feedback_sampling_records_rewrites_and_preserves_results() {
        // A selective filter sitting after a cheap one: with a sample
        // context the rewrite pass measures selectivities and reorders,
        // logging the rewrite; the result is bit-identical either way.
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let c = DataContext::new().with_source("xs", xs);
        let udfs = UdfRegistry::new();
        let opts = StenoOptions::default();
        let q = Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(-1.0)), "x") // keeps all
            .where_(Expr::var("x").lt(Expr::litf(5.0)), "x") // keeps 5%
            .sum()
            .build();
        let baseline = CompiledQuery::compile_tuned(&q, (&c).into(), &udfs, opts).unwrap();
        let fb = CompileFeedback {
            sample_ctx: Some(&c),
            loop_stats: None,
        };
        let tuned =
            CompiledQuery::compile_tuned_feedback(&q, (&c).into(), &udfs, opts, fb).unwrap();
        let applied: Vec<_> = tuned
            .rewrite_log()
            .iter()
            .filter(|ev| ev.applied && ev.rule == "reorder-filters")
            .collect();
        assert!(
            !applied.is_empty(),
            "expected a reorder-filters rewrite, log: {:?}",
            tuned.rewrite_log()
        );
        assert_eq!(
            tuned.run(&c, &udfs).unwrap(),
            baseline.run(&c, &udfs).unwrap()
        );

        // Disabling rewrites suppresses the pass entirely.
        let no_rw = StenoOptions {
            rewrites: false,
            ..opts
        };
        let fb = CompileFeedback {
            sample_ctx: Some(&c),
            loop_stats: None,
        };
        let plain =
            CompiledQuery::compile_tuned_feedback(&q, (&c).into(), &udfs, no_rw, fb).unwrap();
        assert!(plain.rewrite_log().is_empty());
        assert_eq!(
            plain.run(&c, &udfs).unwrap(),
            baseline.run(&c, &udfs).unwrap()
        );
    }
}
