/root/repo/target/release/examples/distributed_kmeans-a48119f7ac5a68c4.d: examples/distributed_kmeans.rs

/root/repo/target/release/examples/distributed_kmeans-a48119f7ac5a68c4: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
