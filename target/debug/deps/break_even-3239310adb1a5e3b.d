/root/repo/target/debug/deps/break_even-3239310adb1a5e3b.d: crates/bench/src/bin/break_even.rs Cargo.toml

/root/repo/target/debug/deps/libbreak_even-3239310adb1a5e3b.rmeta: crates/bench/src/bin/break_even.rs Cargo.toml

crates/bench/src/bin/break_even.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
