//! The monomorphic type language used by query expressions.

use std::fmt;

/// A query-level type.
///
/// LINQ queries in the paper manipulate scalars (`double`, `int`, `bool`),
/// points (vectors of doubles, used by the k-means workload of §7.2),
/// key/value pairs (produced by `GroupBy`) and sequences (nested query
/// results). `Ty` is deliberately small: it is the set of types the Steno VM
/// can specialize code for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit floating point (`double` in the paper's benchmarks).
    F64,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
    /// A fixed-dimension vector of `f64` (a data point in k-means).
    Row,
    /// A pair of values, e.g. a `(key, value)` produced by grouping.
    Pair(Box<Ty>, Box<Ty>),
    /// A sequence of values, e.g. the result of a nested query or the bag of
    /// values in a group.
    Seq(Box<Ty>),
}

impl Ty {
    /// Convenience constructor for [`Ty::Pair`].
    pub fn pair(a: Ty, b: Ty) -> Ty {
        Ty::Pair(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`Ty::Seq`].
    pub fn seq(elem: Ty) -> Ty {
        Ty::Seq(Box::new(elem))
    }

    /// Returns `true` for the numeric scalar types (`F64`, `I64`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Ty::F64 | Ty::I64)
    }

    /// Returns `true` for scalar (non-compound) types.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Ty::F64 | Ty::I64 | Ty::Bool)
    }

    /// The element type if `self` is a sequence.
    pub fn seq_elem(&self) -> Option<&Ty> {
        match self {
            Ty::Seq(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::F64 => write!(f, "f64"),
            Ty::I64 => write!(f, "i64"),
            Ty::Bool => write!(f, "bool"),
            Ty::Row => write!(f, "row"),
            Ty::Pair(a, b) => write!(f, "({a}, {b})"),
            Ty::Seq(e) => write!(f, "seq<{e}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nested() {
        let t = Ty::seq(Ty::pair(Ty::I64, Ty::Seq(Box::new(Ty::F64))));
        assert_eq!(t.to_string(), "seq<(i64, seq<f64>)>");
    }

    #[test]
    fn predicates() {
        assert!(Ty::F64.is_numeric());
        assert!(Ty::I64.is_numeric());
        assert!(!Ty::Bool.is_numeric());
        assert!(Ty::Bool.is_scalar());
        assert!(!Ty::Row.is_scalar());
        assert!(!Ty::seq(Ty::F64).is_scalar());
    }

    #[test]
    fn seq_elem_accessor() {
        assert_eq!(Ty::seq(Ty::F64).seq_elem(), Some(&Ty::F64));
        assert_eq!(Ty::F64.seq_elem(), None);
    }
}
