//! The compile-pressure circuit breaker behind graceful degradation.
//!
//! The paper's §7.1 measures compilation at ~69 ms — three orders of
//! magnitude above executing a cached plan. In a service, a burst of
//! novel queries (a cache-busting tenant, a deploy that invalidates
//! keys) turns that into sustained compile pressure, and a verifier
//! that starts rejecting plans signals an optimizer bug that retrying
//! at full tier will only repeat. The breaker watches both signals and
//! trades plan quality for availability: while open, new compilations
//! are pinned to the scalar tier ([`VectorizationPolicy::Off`]), which
//! skips the vectorizer entirely — cheaper to compile, still correct,
//! and cached under its own options key so healthy plans are untouched.
//!
//! Classic three-state lifecycle:
//!
//! ```text
//!            trip_threshold consecutive
//!            slow/rejected compiles
//!   Closed ─────────────────────────────▶ Open
//!     ▲                                    │ cooldown elapses
//!     │  close_after healthy               ▼
//!     └──────────────────────────────── HalfOpen
//!              (any bad compile reopens: HalfOpen ──▶ Open)
//! ```

use std::time::{Duration, Instant};

use steno_cluster::sync::Mutex;
use steno_vm::{StenoOptions, VectorizationPolicy};

/// Tuning for the [`CompileBreaker`].
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Master switch; `false` pins the breaker closed.
    pub enabled: bool,
    /// A compile slower than this counts as a pressure signal.
    pub compile_budget: Duration,
    /// Consecutive bad compiles (slow or verifier-rejected) that trip
    /// the breaker open.
    pub trip_threshold: u32,
    /// How long the breaker stays open before probing via half-open.
    pub cooldown: Duration,
    /// Healthy compiles required in half-open before closing.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            // Generous relative to this VM's sub-millisecond compiles;
            // trips on pathological plans, not routine misses.
            compile_budget: Duration::from_millis(50),
            trip_threshold: 3,
            cooldown: Duration::from_millis(250),
            close_after: 2,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: compiles run at the engine's configured tier.
    Closed,
    /// Tripped: new compilations are degraded to the scalar tier.
    Open,
    /// Probing: still degraded, but counting healthy compiles toward
    /// closing.
    HalfOpen,
}

enum State {
    Closed { consecutive_bad: u32 },
    Open { since: Instant },
    HalfOpen { healthy: u32 },
}

/// Watches compile health and decides the compilation tier for new
/// plans. Shared by every worker; all transitions happen under one
/// poison-recovering mutex.
pub struct CompileBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    /// Cumulative count of open transitions, for observability.
    opened: Mutex<u64>,
}

impl CompileBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CompileBreaker {
        CompileBreaker {
            cfg,
            state: Mutex::new(State::Closed { consecutive_bad: 0 }),
            opened: Mutex::new(0),
        }
    }

    /// The current state. Reading promotes `Open` to `HalfOpen` once
    /// the cooldown has elapsed, so callers always see the state their
    /// next compile will run under.
    pub fn state(&self) -> BreakerState {
        if !self.cfg.enabled {
            return BreakerState::Closed;
        }
        let mut s = self.state.lock();
        if let State::Open { since } = *s {
            if since.elapsed() >= self.cfg.cooldown {
                *s = State::HalfOpen { healthy: 0 };
            }
        }
        match *s {
            State::Closed { .. } => BreakerState::Closed,
            State::Open { .. } => BreakerState::Open,
            State::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// How many times the breaker has tripped open.
    pub fn times_opened(&self) -> u64 {
        *self.opened.lock()
    }

    /// The options a new compilation should run under, and whether they
    /// are degraded from `base`. Open and half-open pin the scalar tier;
    /// the plan cache keys on options, so degraded plans never shadow
    /// healthy ones.
    pub fn plan_options(&self, base: &StenoOptions) -> (StenoOptions, bool) {
        match self.state() {
            BreakerState::Closed => (*base, false),
            BreakerState::Open | BreakerState::HalfOpen => (
                StenoOptions {
                    vectorize: VectorizationPolicy::Off,
                    ..*base
                },
                true,
            ),
        }
    }

    /// Records one compile: its wall time and whether the verifier
    /// accepted the plan (`verifier_ok` is `true` when verification is
    /// off). Drives all state transitions.
    pub fn record_compile(&self, took: Duration, verifier_ok: bool) {
        if !self.cfg.enabled {
            return;
        }
        let bad = !verifier_ok || took > self.cfg.compile_budget;
        // Promote a cooled-down Open before recording, mirroring state().
        let _ = self.state();
        let mut s = self.state.lock();
        match &mut *s {
            State::Closed { consecutive_bad } => {
                if bad {
                    *consecutive_bad += 1;
                    if *consecutive_bad >= self.cfg.trip_threshold {
                        *s = State::Open {
                            since: Instant::now(),
                        };
                        drop(s);
                        *self.opened.lock() += 1;
                    }
                } else {
                    *consecutive_bad = 0;
                }
            }
            State::Open { .. } => {
                // Straggler results from compiles that started before the
                // trip; the cooldown clock governs, not these.
            }
            State::HalfOpen { healthy } => {
                if bad {
                    *s = State::Open {
                        since: Instant::now(),
                    };
                    drop(s);
                    *self.opened.lock() += 1;
                } else {
                    *healthy += 1;
                    if *healthy >= self.cfg.close_after {
                        *s = State::Closed { consecutive_bad: 0 };
                    }
                }
            }
        }
    }

    /// Records a verifier rejection discovered outside a timed compile
    /// (equivalent to `record_compile(ZERO, false)`).
    pub fn record_verifier_failure(&self) {
        self.record_compile(Duration::ZERO, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            enabled: true,
            compile_budget: Duration::from_millis(10),
            trip_threshold: 3,
            cooldown: Duration::from_millis(20),
            close_after: 2,
        }
    }

    const SLOW: Duration = Duration::from_millis(11);
    const FAST: Duration = Duration::ZERO;

    #[test]
    fn trips_after_consecutive_slow_compiles_only() {
        let b = CompileBreaker::new(cfg());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_compile(SLOW, true);
        b.record_compile(SLOW, true);
        b.record_compile(FAST, true); // resets the streak
        b.record_compile(SLOW, true);
        b.record_compile(SLOW, true);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_compile(SLOW, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
    }

    #[test]
    fn verifier_rejections_trip_regardless_of_speed() {
        let b = CompileBreaker::new(cfg());
        for _ in 0..3 {
            b.record_compile(FAST, false);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_degrades_to_scalar_and_recovers_through_half_open() {
        let b = CompileBreaker::new(cfg());
        let base = StenoOptions::default();
        assert!(!b.plan_options(&base).1);
        for _ in 0..3 {
            b.record_compile(SLOW, true);
        }
        let (opts, degraded) = b.plan_options(&base);
        assert!(degraded);
        assert_eq!(opts.vectorize, VectorizationPolicy::Off);

        // Cooldown elapses → half-open; two healthy compiles close it.
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.plan_options(&base).1, "half-open still degrades");
        b.record_compile(FAST, true);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_compile(FAST, true);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.plan_options(&base).0.vectorize, base.vectorize);
    }

    #[test]
    fn bad_probe_reopens_from_half_open() {
        let b = CompileBreaker::new(cfg());
        for _ in 0..3 {
            b.record_compile(SLOW, true);
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_verifier_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let b = CompileBreaker::new(BreakerConfig {
            enabled: false,
            ..cfg()
        });
        for _ in 0..10 {
            b.record_compile(SLOW, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.plan_options(&StenoOptions::default()).1);
    }
}
