/root/repo/target/debug/examples/serve_loadgen-38ac7cfd8da82145.d: examples/serve_loadgen.rs

/root/repo/target/debug/examples/serve_loadgen-38ac7cfd8da82145: examples/serve_loadgen.rs

examples/serve_loadgen.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
