/root/repo/target/debug/deps/steno-2d03feff14637515.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/steno-2d03feff14637515: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/rt.rs:
