/root/repo/target/debug/deps/steno-28e7c4c3c3c1044f.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/steno-28e7c4c3c3c1044f: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
