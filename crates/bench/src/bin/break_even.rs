//! The break-even analysis of §7.1: "Summing 10 million doubles with
//! LINQ takes approximately 83 ms, whereas with Steno it takes 25 ms plus
//! 69 ms for compilation. The break-even point is approximately 12
//! million doubles." Also demonstrates amortization through the query
//! cache (§3.3).

use std::time::Instant;

use bench::workloads::{scaled, uniform_doubles};
use steno_expr::{DataContext, UdfRegistry};
use steno_linq::Enumerable;
use steno_query::Query;
use steno_vm::{CompiledQuery, QueryCache};

fn main() {
    let udfs = UdfRegistry::new();
    let q = Query::source("xs").sum().build();

    println!("Break-even: one-shot Steno (compile + run) vs LINQ, summing n doubles\n");
    println!(
        "{:>12} {:>12} {:>12} {:>12} {:>10}",
        "n", "linq", "steno comp", "steno run", "one-shot?"
    );
    let mut break_even = None;
    for exp in 12..=24u32 {
        let n = scaled(1usize << exp);
        let data = uniform_doubles(n, 9);
        let xs = Enumerable::from_vec(data.clone());
        let t = Instant::now();
        let _ = xs.sum();
        let linq = t.elapsed();
        let ctx = DataContext::new().with_source("xs", data);
        let t = Instant::now();
        let compiled = CompiledQuery::compile(&q, (&ctx).into(), &udfs).unwrap();
        let compile = t.elapsed();
        let t = Instant::now();
        let _ = compiled.run(&ctx, &udfs).unwrap();
        let run = t.elapsed();
        let wins = compile + run < linq;
        if wins && break_even.is_none() {
            break_even = Some(n);
        }
        println!(
            "{:>12} {:>12.2?} {:>12.2?} {:>12.2?} {:>10}",
            n,
            linq,
            compile,
            run,
            if wins { "steno" } else { "linq" }
        );
    }
    match break_even {
        Some(n) => println!("\nbreak-even at ~{n} doubles (paper: ~1.2e7, with csc's ~69 ms cost)"),
        None => println!("\nno break-even reached in the sweep"),
    }

    // Amortization via the cache: "the compiled query object can then be
    // cached by the application" (§3.3, §7.1).
    let cache = QueryCache::new();
    let data = uniform_doubles(scaled(1 << 20), 10);
    let ctx = DataContext::new().with_source("xs", data);
    let t = Instant::now();
    for _ in 0..50 {
        let compiled = cache.get_or_compile(&q, (&ctx).into(), &udfs).unwrap();
        let _ = compiled.run(&ctx, &udfs).unwrap();
    }
    let amortized = t.elapsed() / 50;
    let (hits, misses) = cache.stats();
    println!(
        "cached executions: {amortized:.2?}/run over 50 runs (cache hits {hits}, misses {misses})"
    );
}
