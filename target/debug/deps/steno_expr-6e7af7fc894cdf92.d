/root/repo/target/debug/deps/steno_expr-6e7af7fc894cdf92.d: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_expr-6e7af7fc894cdf92.rmeta: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs Cargo.toml

crates/steno-expr/src/lib.rs:
crates/steno-expr/src/data.rs:
crates/steno-expr/src/error.rs:
crates/steno-expr/src/eval.rs:
crates/steno-expr/src/expr.rs:
crates/steno-expr/src/subst.rs:
crates/steno-expr/src/ty.rs:
crates/steno-expr/src/typecheck.rs:
crates/steno-expr/src/udf.rs:
crates/steno-expr/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
