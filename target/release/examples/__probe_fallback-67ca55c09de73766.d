/root/repo/target/release/examples/__probe_fallback-67ca55c09de73766.d: examples/__probe_fallback.rs

/root/repo/target/release/examples/__probe_fallback-67ca55c09de73766: examples/__probe_fallback.rs

examples/__probe_fallback.rs:
