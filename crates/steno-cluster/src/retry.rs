//! Retry, backoff, and speculative re-execution policies.
//!
//! Dryad re-executes failed vertices and runs *speculative duplicates*
//! of slow ones ("stragglers"), keeping the first result (§6 of the
//! paper describes the cluster contract Steno's distributed plans rely
//! on). [`RetryPolicy`] bounds how hard the scheduler tries before
//! surfacing a transient failure; [`SpeculationPolicy`] decides when a
//! still-running vertex is slow enough — relative to its completed
//! siblings — to deserve a backup attempt.
//!
//! Backoff jitter is deterministic (seeded SplitMix64, keyed by
//! `(seed, vertex, attempt)`), so a failing schedule replays exactly.

use std::time::Duration;

use crate::fault::{splitmix64, CancelToken};

/// Bounds on per-vertex re-execution.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts allowed per vertex (first run included). `1`
    /// disables retries.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff interval.
    pub max_backoff: Duration,
    /// Jitter fraction in `[0, 1]`: each interval is scaled by a
    /// deterministic factor drawn from `[1 - jitter, 1]`.
    pub jitter: f64,
    /// Wall-clock budget for a single attempt. When exceeded, the
    /// attempt is declared timed out (a *transient* failure: the vertex
    /// is re-executed; the overrunning attempt is cooperatively
    /// cancelled but may still win if it finishes first).
    pub attempt_deadline: Option<Duration>,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            jitter: 0.5,
            attempt_deadline: None,
            seed: 0x57E9_0C1A,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (the pre-fault-tolerance behaviour).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The pause before retry number `retry` (1-based) of `vertex`:
    /// exponential in `retry`, clamped to [`RetryPolicy::max_backoff`],
    /// scaled by deterministic jitter.
    pub fn backoff(&self, vertex: usize, retry: u32) -> Duration {
        self.backoff_keyed(vertex as u64, retry)
    }

    /// As [`RetryPolicy::backoff`] for an arbitrary 64-bit key. The
    /// cluster scheduler keys on the vertex index; the service layer
    /// keys on the request sequence number, so concurrent requests that
    /// fail together desynchronize instead of retrying in lockstep (the
    /// retry-storm failure mode SplitMix64 jitter exists to break).
    /// Equal `(seed, key, retry)` always jitters identically, so a
    /// failing schedule replays exactly.
    pub fn backoff_keyed(&self, key: u64, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        if jitter == 0.0 {
            return exp;
        }
        let h = splitmix64(self.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(retry));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let scale = 1.0 - jitter * u; // (1 - jitter, 1]
        exp.mul_f64(scale)
    }

    /// Sleeps out the jittered backoff before retry number `retry` of
    /// `key`, cooperatively: the sleep polls `cancel` every millisecond
    /// and returns `false` the moment cancellation is requested (a
    /// cancelled request must not camp on a worker for a full backoff
    /// window). Returns `true` when the full backoff elapsed.
    pub fn backoff_sleep(&self, cancel: &CancelToken, key: u64, retry: u32) -> bool {
        let pause = self.backoff_keyed(key, retry);
        if pause.is_zero() {
            return !cancel.is_cancelled();
        }
        cancel.sleep_cooperatively(pause)
    }
}

/// When to launch a speculative duplicate of a slow vertex.
///
/// The trigger is relative: once at least [`min_completed`] sibling
/// vertices have finished, a vertex still running after
/// `multiplier × quantile(completed durations)` (but never less than
/// [`floor`]) gets one backup attempt. First result wins; the loser is
/// cooperatively cancelled.
///
/// [`min_completed`]: SpeculationPolicy::min_completed
/// [`floor`]: SpeculationPolicy::floor
#[derive(Clone, Debug)]
pub struct SpeculationPolicy {
    /// Master switch.
    pub enabled: bool,
    /// Which quantile of completed-vertex durations anchors the
    /// threshold (`0.75` = third quartile).
    pub quantile: f64,
    /// Multiplier on the quantile duration.
    pub multiplier: f64,
    /// How many vertices must have completed before anything is judged
    /// a straggler.
    pub min_completed: usize,
    /// Lower bound on the threshold, so microsecond-scale jobs never
    /// speculate spuriously.
    pub floor: Duration,
    /// Backup attempts allowed per vertex.
    pub max_backups: usize,
}

impl Default for SpeculationPolicy {
    fn default() -> SpeculationPolicy {
        SpeculationPolicy {
            enabled: true,
            quantile: 0.75,
            multiplier: 4.0,
            min_completed: 1,
            floor: Duration::from_millis(50),
            max_backups: 1,
        }
    }
}

impl SpeculationPolicy {
    /// Speculation switched off entirely.
    pub fn disabled() -> SpeculationPolicy {
        SpeculationPolicy {
            enabled: false,
            ..SpeculationPolicy::default()
        }
    }

    /// An aggressive policy for tests: speculate after `floor` with a
    /// single completed sibling.
    pub fn aggressive(floor: Duration) -> SpeculationPolicy {
        SpeculationPolicy {
            enabled: true,
            quantile: 0.5,
            multiplier: 2.0,
            min_completed: 1,
            floor,
            max_backups: 1,
        }
    }

    /// The elapsed-time threshold above which a running vertex is a
    /// straggler, given the (unsorted) durations of completed vertices.
    /// `None` while too few siblings have completed to judge.
    pub fn threshold(&self, completed: &[Duration]) -> Option<Duration> {
        if !self.enabled || completed.len() < self.min_completed.max(1) {
            return None;
        }
        let mut sorted = completed.to_vec();
        sorted.sort();
        let q = self.quantile.clamp(0.0, 1.0);
        // Nearest-rank quantile.
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        let anchor = sorted[rank.min(sorted.len() - 1)];
        Some(anchor.mul_f64(self.multiplier.max(1.0)).max(self.floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_clamps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff(0, 0), Duration::ZERO);
        assert_eq!(p.backoff(0, 1), Duration::from_millis(1));
        assert_eq!(p.backoff(0, 2), Duration::from_millis(2));
        assert_eq!(p.backoff(0, 3), Duration::from_millis(4));
        // Clamped at max_backoff.
        assert_eq!(p.backoff(0, 12), Duration::from_millis(50));
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for vertex in 0..8 {
            for retry in 1..6 {
                let a = p.backoff(vertex, retry);
                let b = p.backoff(vertex, retry);
                assert_eq!(a, b, "same (vertex, retry) must jitter identically");
                let nominal = p
                    .base_backoff
                    .saturating_mul(1 << (retry - 1))
                    .min(p.max_backoff);
                assert!(a <= nominal);
                assert!(a >= nominal.mul_f64(1.0 - p.jitter - 1e-9));
            }
        }
    }

    #[test]
    fn speculation_threshold_needs_completions() {
        let p = SpeculationPolicy::default();
        assert_eq!(p.threshold(&[]), None);
        let t = p
            .threshold(&[Duration::from_millis(10), Duration::from_millis(20)])
            .unwrap();
        // 4 × q75(10ms, 20ms) = 80ms, above the 50ms floor.
        assert_eq!(t, Duration::from_millis(80));
        // The floor wins for fast jobs.
        let fast = p.threshold(&[Duration::from_micros(5)]).unwrap();
        assert_eq!(fast, Duration::from_millis(50));
        assert_eq!(SpeculationPolicy::disabled().threshold(&[Duration::ZERO]), None);
    }

    #[test]
    fn no_retries_policy_has_one_attempt() {
        assert_eq!(RetryPolicy::no_retries().max_attempts, 1);
    }

    #[test]
    fn keyed_backoff_matches_vertex_backoff_and_desynchronizes_keys() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(7, 3), p.backoff_keyed(7, 3));
        // Distinct keys should not all land on the same instant; with
        // 50% jitter over 16 keys a full collision is astronomically
        // unlikely, so any spread proves the desynchronization works.
        let spread: std::collections::HashSet<Duration> =
            (0..16u64).map(|k| p.backoff_keyed(k, 4)).collect();
        assert!(spread.len() > 1, "jitter must separate concurrent keys");
    }

    #[test]
    fn backoff_sleep_completes_when_uncancelled() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(2),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let cancel = CancelToken::new();
        let start = std::time::Instant::now();
        assert!(p.backoff_sleep(&cancel, 1, 1));
        assert!(start.elapsed() >= Duration::from_millis(2));
        // Retry 0 has no pause but still reports the token's state.
        assert!(p.backoff_sleep(&cancel, 1, 0));
    }

    #[test]
    fn backoff_sleep_aborts_promptly_on_cancellation() {
        let p = RetryPolicy {
            base_backoff: Duration::from_secs(5),
            max_backoff: Duration::from_secs(5),
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        let cancel = CancelToken::new();
        cancel.cancel();
        let start = std::time::Instant::now();
        assert!(!p.backoff_sleep(&cancel, 0, 1));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "cancelled sleep must not run out the full backoff"
        );
        assert!(!p.backoff_sleep(&cancel, 0, 0));
    }
}
