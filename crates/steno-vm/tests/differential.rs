//! Differential testing: the Steno VM against the unoptimized LINQ
//! interpreter.
//!
//! "We faithfully reproduced the semantics of unoptimized LINQ" (§9) —
//! this suite holds the reproduction to that standard: every query below
//! must produce identical results through the boxed-iterator interpreter
//! and through the full lower → generate → assemble → execute pipeline.

use steno_expr::{Column, DataContext, Expr, Ty, UdfRegistry, Value};
use steno_linq::interp;
use steno_query::{GroupResult, Query, QueryExpr};
use steno_vm::CompiledQuery;

fn ctx() -> DataContext {
    DataContext::new()
        .with_source("xs", vec![3.0, -1.5, 4.0, 1.0, -5.0, 9.25, 2.0, 6.0])
        .with_source("ys", vec![0.5, 2.0, -3.0])
        .with_source("ns", vec![7i64, 1, 4, 4, -2, 8, 0, 3, 3, 5])
        .with_source("ms", vec![2i64, -3, 5])
        .with_source("bs", Column::from_bool(vec![true, false, true, true]))
        .with_source(
            "pts",
            Column::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3),
        )
        .with_source("empty", Vec::<f64>::new())
}

fn udfs() -> UdfRegistry {
    let mut u = UdfRegistry::new();
    u.register("dist2", vec![Ty::Row, Ty::Row], Ty::F64, |args| {
        let a = args[0].as_row().unwrap();
        let b = args[1].as_row().unwrap();
        Value::F64(
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum(),
        )
    });
    u.register("vadd", vec![Ty::Row, Ty::Row], Ty::Row, |args| {
        let a = args[0].as_row().unwrap();
        let b = args[1].as_row().unwrap();
        Value::row(a.iter().zip(b.iter()).map(|(x, y)| x + y).collect())
    });
    u
}

/// Asserts interpreter == VM on `q`.
#[track_caller]
fn check(q: &QueryExpr) {
    let c = ctx();
    let u = udfs();
    let expected = interp::execute(q, &c, &u).expect("interpreter failed");
    let compiled = CompiledQuery::compile(q, (&c).into(), &u)
        .unwrap_or_else(|e| panic!("optimization failed for {q}: {e}"));
    let actual = compiled.run(&c, &u).expect("vm failed");
    assert_eq!(
        expected.key(),
        actual.key(),
        "mismatch for {q}:\ninterp = {expected}\nvm     = {actual}\ngenerated:\n{}",
        compiled.rust_source()
    );
}

fn x() -> Expr {
    Expr::var("x")
}

#[test]
fn scalar_aggregates() {
    check(&Query::source("xs").sum().build());
    check(&Query::source("xs").min().build());
    check(&Query::source("xs").max().build());
    check(&Query::source("xs").count().build());
    check(&Query::source("xs").average().build());
    check(&Query::source("xs").first().build());
    check(&Query::source("xs").any().build());
    check(&Query::source("ns").sum().build());
    check(&Query::source("ns").min().build());
    check(&Query::source("ns").max().build());
    check(&Query::source("ns").average().build());
}

#[test]
fn empty_source_conventions() {
    check(&Query::source("empty").sum().build());
    check(&Query::source("empty").count().build());
    check(&Query::source("empty").min().build());
    check(&Query::source("empty").max().build());
    check(&Query::source("empty").first().build());
    check(&Query::source("empty").any().build());
}

#[test]
fn figure_one_sum_of_squares() {
    check(
        &Query::source("xs")
            .select(x() * x(), "x")
            .sum()
            .build(),
    );
}

#[test]
fn even_squares_running_example() {
    check(
        &Query::source("ns")
            .where_((x() % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(x() * x(), "x")
            .build(),
    );
}

#[test]
fn transform_chains() {
    check(
        &Query::source("xs")
            .select(x() + Expr::litf(1.0), "x")
            .select(x() * Expr::litf(2.0), "x")
            .select(x().abs().sqrt(), "x")
            .build(),
    );
    check(
        &Query::source("ns")
            .select(x().cast(Ty::F64), "x")
            .select(x() / Expr::litf(3.0), "x")
            .sum()
            .build(),
    );
}

#[test]
fn predicates_and_positional_ops() {
    check(&Query::source("xs").take(3).build());
    check(&Query::source("xs").skip(5).build());
    check(&Query::source("xs").skip(2).take(3).build());
    check(&Query::source("xs").take(100).build());
    check(
        &Query::source("xs")
            .take_while(x().gt(Expr::litf(-1.0)), "x")
            .build(),
    );
    check(
        &Query::source("xs")
            .skip_while(x().gt(Expr::litf(0.0)), "x")
            .build(),
    );
    check(
        &Query::source("xs")
            .where_(x().gt(Expr::litf(0.0)), "x")
            .skip(1)
            .take(2)
            .sum()
            .build(),
    );
}

#[test]
fn boolean_sources_and_logic() {
    check(&Query::source("bs").all_by(x(), "x").build());
    check(&Query::source("bs").any_by(x().not(), "x").build());
    check(
        &Query::source("ns")
            .where_(
                x().gt(Expr::liti(0)).and(x().lt(Expr::liti(5))),
                "x",
            )
            .count()
            .build(),
    );
    check(
        &Query::source("ns")
            .where_(
                x().lt(Expr::liti(0)).or(x().gt(Expr::liti(6))),
                "x",
            )
            .build(),
    );
}

#[test]
fn range_and_repeat_sources() {
    check(&Query::range(-3, 10).sum().build());
    check(
        &Query::range(0, 20)
            .where_((x() % Expr::liti(3)).eq(Expr::liti(0)), "x")
            .build(),
    );
    check(&Query::repeat(2.5f64, 7).sum().build());
    check(&Query::repeat(9i64, 0).count().build());
}

#[test]
fn user_fold_aggregate() {
    check(
        &Query::source("ns")
            .aggregate(Expr::liti(1), "a", "v", Expr::var("a") * Expr::var("v"))
            .build(),
    );
    // Argmax via a pair accumulator.
    check(
        &Query::source("xs")
            .aggregate(
                Expr::mk_pair(Expr::litf(f64::NEG_INFINITY), Expr::litf(0.0)),
                "a",
                "v",
                Expr::if_(
                    Expr::var("v").gt(Expr::var("a").field(0)),
                    Expr::mk_pair(Expr::var("v"), Expr::var("v") * Expr::litf(2.0)),
                    Expr::var("a"),
                ),
            )
            .build(),
    );
}

#[test]
fn nested_cartesian_product_select_many() {
    // §5: xs.SelectMany(x => ys.Select(y => x * y)).Sum()
    check(
        &Query::source("xs")
            .select_many(Query::source("ys").select(x() * Expr::var("y"), "y"), "x")
            .sum()
            .build(),
    );
    // Sequence-valued result.
    check(
        &Query::source("ms")
            .select_many(
                Query::source("ns").select(Expr::var("n") + x(), "n"),
                "x",
            )
            .build(),
    );
}

#[test]
fn triple_nested_cartesian() {
    // The three-array Cartesian product of §5.
    let inner = Query::source("ms").select(
        Expr::var("x") * Expr::var("y") * Expr::var("z").cast(Ty::F64),
        "z",
    );
    check(
        &Query::source("xs")
            .select_many(Query::source("ys").select_many(inner, "y"), "x")
            .sum()
            .build(),
    );
}

#[test]
fn nested_scalar_select() {
    // xs.Select(x => ys.Where(y > x).Count())
    check(
        &Query::source("xs")
            .select_query(
                Query::source("ys")
                    .where_(Expr::var("y").gt(x()), "y")
                    .count(),
                "x",
            )
            .build(),
    );
    // Aggregate over the nested results.
    check(
        &Query::source("xs")
            .select_query(
                Query::source("ys")
                    .select(Expr::var("y") - x(), "y")
                    .min(),
                "x",
            )
            .max()
            .build(),
    );
}

#[test]
fn nested_predicate_query() {
    // xs.Where(x => ys.Any(y => y > x))
    check(
        &Query::source("xs")
            .select_query(
                Query::source("ys").any_by(Expr::var("y").gt(x()), "y"),
                "x",
            )
            .build(),
    );
}

#[test]
fn nested_filter_inside_select_many() {
    // The equi-join shape of §5: xs.SelectMany(x => ys.Where(y == x)).
    check(
        &Query::source("ns")
            .select_many(
                Query::source("ms").where_(Expr::var("y").eq(x()), "y"),
                "x",
            )
            .build(),
    );
}

#[test]
fn group_by_plain() {
    check(
        &Query::source("ns")
            .group_by(x() % Expr::liti(3), "x")
            .build(),
    );
    check(
        &Query::source("xs")
            .group_by_elem(x().floor(), x() * x(), "x")
            .build(),
    );
}

#[test]
fn group_by_aggregate_specialized() {
    // GroupBy with aggregating result selector (§4.3).
    check(
        &Query::source("ns")
            .group_by_result(
                x() % Expr::liti(3),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
            )
            .build(),
    );
    check(
        &Query::source("ns")
            .group_by_result(
                x() % Expr::liti(4),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
            )
            .build(),
    );
    // With a transforming inner chain that must fuse into the update.
    check(
        &Query::source("xs")
            .group_by_result(
                x().floor(),
                "x",
                GroupResult::keyed(
                    "k",
                    "g",
                    Query::over(Expr::var("g"))
                        .select(Expr::var("v") * Expr::var("v"), "v")
                        .sum()
                        .build(),
                ),
            )
            .build(),
    );
}

#[test]
fn group_by_then_having() {
    // GROUP BY ... HAVING (§4.2).
    check(
        &Query::source("ns")
            .group_by(x() % Expr::liti(3), "x")
            .where_(Expr::var("kv").field(0).gt(Expr::liti(0)), "kv")
            .build(),
    );
}

#[test]
fn group_by_then_nested_aggregate_over_groups() {
    // GroupBy(key).Select(kv => sum(kv.1)) — the pattern the §4.3 pass
    // recognizes.
    check(
        &Query::source("ns")
            .group_by(x() % Expr::liti(3), "x")
            .select_query(Query::over(Expr::var("kv").field(1)).sum(), "kv")
            .build(),
    );
}

#[test]
fn order_by_and_distinct() {
    check(&Query::source("xs").order_by(x(), "x").build());
    check(&Query::source("xs").order_by_desc(x(), "x").build());
    check(&Query::source("ns").distinct().build());
    check(
        &Query::source("ns")
            .distinct()
            .order_by(x(), "x")
            .take(3)
            .build(),
    );
    check(
        &Query::source("xs")
            .order_by(x().abs(), "x")
            .skip(2)
            .sum()
            .build(),
    );
}

#[test]
fn to_vec_materialization() {
    check(&Query::source("xs").to_vec().sum().build());
    check(
        &Query::source("ns")
            .select(x() * x(), "x")
            .to_vec()
            .take(4)
            .build(),
    );
}

#[test]
fn rows_and_udfs() {
    // Flatten row coordinates.
    check(
        &Query::source("pts")
            .select_many_expr(Expr::var("p"), "p")
            .sum()
            .build(),
    );
    // Distance between each point and a fixed reference via UDF.
    check(
        &Query::source("pts")
            .select(
                Expr::call("dist2", vec![Expr::var("p"), Expr::var("p")]),
                "p",
            )
            .sum()
            .build(),
    );
    // Row indexing and length.
    check(
        &Query::source("pts")
            .select(
                Expr::var("p").row_index(Expr::liti(1)) * Expr::var("p").row_len().cast(Ty::F64),
                "p",
            )
            .build(),
    );
}

#[test]
fn kmeans_assignment_shape() {
    // The k-means inner step (§7.2): for each point, find the nearest
    // centroid id, then aggregate per cluster.
    let centroids = Column::from_values(vec![
        Value::pair(Value::I64(0), Value::row(vec![0.0, 0.0, 0.0])),
        Value::pair(Value::I64(1), Value::row(vec![5.0, 5.0, 5.0])),
    ]);
    let c = ctx().with_source("centroids", centroids);
    let u = udfs();
    // nearest = centroids.Select(c => (c.0, dist2(p, c.1)))
    //                     .Aggregate((-1, inf), min-by-distance)
    let nearest = Query::source("centroids")
        .select(
            Expr::mk_pair(
                Expr::var("c").field(0),
                Expr::call("dist2", vec![Expr::var("p"), Expr::var("c").field(1)]),
            ),
            "c",
        )
        .aggregate(
            Expr::mk_pair(Expr::liti(-1), Expr::litf(f64::INFINITY)),
            "best",
            "cur",
            Expr::if_(
                Expr::var("cur").field(1).lt(Expr::var("best").field(1)),
                Expr::var("cur"),
                Expr::var("best"),
            ),
        );
    let q = Query::source("pts")
        .select_query(nearest, "p")
        .select(Expr::var("kv").field(0), "kv")
        .group_by(Expr::var("id"), "id")
        .build();
    let expected = interp::execute(&q, &c, &u).unwrap();
    let compiled = CompiledQuery::compile(&q, (&c).into(), &u).unwrap();
    let actual = compiled.run(&c, &u).unwrap();
    assert_eq!(expected.key(), actual.key());
}

// ---------------------------------------------------------------------
// Property-style differential testing over randomly generated chains.
//
// The offline build cannot pull `proptest`, so the random cases come
// from a seeded SplitMix64 generator (inlined below): every run explores
// the same deterministic cases.
// ---------------------------------------------------------------------

/// A tiny deterministic PRNG (SplitMix64).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    fn vec_f64(&mut self, max_len: usize, lo: f64, hi: f64) -> Vec<f64> {
        let len = self.index(max_len + 1);
        (0..len).map(|_| self.range_f64(lo, hi)).collect()
    }
}

/// A safe element-wise f64 transform (no integer division; stays finite).
fn arb_transform(rng: &mut Rng) -> Expr {
    match rng.index(9) {
        0 => x() * x(),
        1 => x() + Expr::litf(1.0),
        2 => x() - Expr::litf(2.5),
        3 => x() * Expr::litf(-0.5),
        4 => x().abs(),
        5 => x().floor(),
        6 => x().min(Expr::litf(3.0)),
        7 => x().max(Expr::litf(-3.0)),
        _ => x() / Expr::litf(4.0),
    }
}

fn arb_predicate(rng: &mut Rng) -> Expr {
    match rng.index(5) {
        0 => x().gt(Expr::litf(0.0)),
        1 => x().le(Expr::litf(2.0)),
        2 => x().ne(Expr::litf(1.0)),
        3 => x().abs().lt(Expr::litf(5.0)),
        _ => x().ge(Expr::litf(-1.0)).and(x().lt(Expr::litf(4.0))),
    }
}

#[derive(Clone, Debug)]
enum OpPick {
    Select(Expr),
    Where(Expr),
    Take(usize),
    Skip(usize),
    TakeWhile(Expr),
    SkipWhile(Expr),
    Distinct,
    OrderBy(bool),
    ToVec,
}

/// Weighted pick mirroring the original proptest distribution
/// (4:3:1:1:1:1:1:1:1 over the nine operator kinds).
fn arb_op(rng: &mut Rng) -> OpPick {
    match rng.index(14) {
        0..=3 => OpPick::Select(arb_transform(rng)),
        4..=6 => OpPick::Where(arb_predicate(rng)),
        7 => OpPick::Take(rng.index(12)),
        8 => OpPick::Skip(rng.index(12)),
        9 => OpPick::TakeWhile(arb_predicate(rng)),
        10 => OpPick::SkipWhile(arb_predicate(rng)),
        11 => OpPick::Distinct,
        12 => OpPick::OrderBy(rng.next_u64() & 1 == 0),
        _ => OpPick::ToVec,
    }
}

#[derive(Clone, Debug)]
enum TerminalPick {
    Collect,
    Sum,
    Min,
    Max,
    Count,
    Average,
    First,
}

fn arb_terminal(rng: &mut Rng) -> TerminalPick {
    match rng.index(7) {
        0 => TerminalPick::Collect,
        1 => TerminalPick::Sum,
        2 => TerminalPick::Min,
        3 => TerminalPick::Max,
        4 => TerminalPick::Count,
        5 => TerminalPick::Average,
        _ => TerminalPick::First,
    }
}

fn build_query(ops: &[OpPick], terminal: &TerminalPick) -> QueryExpr {
    let mut q = Query::source("data");
    for op in ops {
        q = match op.clone() {
            OpPick::Select(e) => q.select(e, "x"),
            OpPick::Where(e) => q.where_(e, "x"),
            OpPick::Take(n) => q.take(n),
            OpPick::Skip(n) => q.skip(n),
            OpPick::TakeWhile(e) => q.take_while(e, "x"),
            OpPick::SkipWhile(e) => q.skip_while(e, "x"),
            OpPick::Distinct => q.distinct(),
            OpPick::OrderBy(desc) => {
                if desc {
                    q.order_by_desc(x(), "x")
                } else {
                    q.order_by(x(), "x")
                }
            }
            OpPick::ToVec => q.to_vec(),
        };
    }
    match terminal {
        TerminalPick::Collect => q.build(),
        TerminalPick::Sum => q.sum().build(),
        TerminalPick::Min => q.min().build(),
        TerminalPick::Max => q.max().build(),
        TerminalPick::Count => q.count().build(),
        TerminalPick::Average => q.average().build(),
        TerminalPick::First => q.first().build(),
    }
}

/// Random flat chains over random data agree between the interpreter
/// and the VM.
#[test]
fn random_chains_agree() {
    let mut rng = Rng::new(0xD1FF);
    let u = UdfRegistry::new();
    for case in 0..96 {
        // Average of an empty stream is NaN through both paths, but the
        // two NaN payloads compare equal through the key; keep it in.
        let data = rng.vec_f64(23, -50.0, 50.0);
        let ops: Vec<OpPick> = (0..rng.index(6)).map(|_| arb_op(&mut rng)).collect();
        let terminal = arb_terminal(&mut rng);
        let q = build_query(&ops, &terminal);
        let c = DataContext::new().with_source("data", data);
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile failed");
        let actual = compiled.run(&c, &u).expect("vm failed");
        assert_eq!(expected.key(), actual.key(), "case {case}, query {q}");
    }
}

/// Random grouped aggregations agree, with the §4.3 specialization on.
#[test]
fn random_grouped_aggregates_agree() {
    let mut rng = Rng::new(0x6A0B);
    let u = UdfRegistry::new();
    for case in 0..96 {
        let len = rng.index(30);
        let data: Vec<i64> = (0..len).map(|_| rng.range_i64(-20, 20)).collect();
        let modulus = rng.range_i64(1, 6);
        let use_count = rng.next_u64() & 1 == 0;
        let inner = if use_count {
            Query::over(Expr::var("g")).count().build()
        } else {
            Query::over(Expr::var("g")).sum().build()
        };
        let q = Query::source("data")
            .group_by_result(
                x() % Expr::liti(modulus),
                "x",
                GroupResult::keyed("k", "g", inner),
            )
            .build();
        let c = DataContext::new().with_source("data", data);
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile failed");
        let actual = compiled.run(&c, &u).expect("vm failed");
        assert_eq!(expected.key(), actual.key(), "case {case}, query {q}");
    }
}

/// Nested Cartesian products agree for arbitrary inner/outer data.
#[test]
fn random_nested_products_agree() {
    let mut rng = Rng::new(0x0CA7);
    let u = UdfRegistry::new();
    for case in 0..96 {
        let outer = rng.vec_f64(9, -8.0, 8.0);
        let inner = rng.vec_f64(9, -8.0, 8.0);
        let q = Query::source("outer")
            .select_many(
                Query::source("inner").select(x() * Expr::var("y"), "y"),
                "x",
            )
            .sum()
            .build();
        let c = DataContext::new()
            .with_source("outer", outer)
            .with_source("inner", inner);
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile failed");
        let actual = compiled.run(&c, &u).expect("vm failed");
        assert_eq!(expected.key(), actual.key(), "case {case}");
    }
}
