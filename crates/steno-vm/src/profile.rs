//! Per-query execution profiles.
//!
//! A [`QueryProfile`] answers "where did the elements and the time go"
//! for one run of a compiled query: how many scalar instructions
//! dispatched, how many source elements each tier consumed, how dense
//! the vectorized tier's selection vectors stayed, and whether the
//! query text hit the [`crate::query::QueryCache`]. Collection is
//! opt-in: the profiled interpreter is a separate monomorphization
//! (`run_impl::<true>` in [`crate::exec`]), so the default path
//! compiles every counter out and pays nothing.

use std::time::Duration;

/// Execution counters for one run of a compiled query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryProfile {
    /// Scalar instructions dispatched (each `FusedLoop`/`BatchLoop`
    /// counts once here; their per-element work is tracked below).
    pub scalar_instrs: u64,
    /// Elements read from prepared sources by scalar `SrcGet*`.
    pub src_reads: u64,
    /// User-defined function invocations.
    pub udf_calls: u64,
    /// Elements pushed into sinks (buffers, groups, sort, distinct).
    pub sink_pushes: u64,
    /// Elements appended to the output sequence.
    pub out_elements: u64,
    /// `BatchLoop` instructions executed.
    pub batch_loops: u64,
    /// Column batches processed by the vectorized tier.
    pub batches: u64,
    /// Source elements entering the vectorized tier.
    pub batch_elements_in: u64,
    /// Elements still selected after each batch's predicates ran.
    pub batch_elements_selected: u64,
    /// `FusedLoop` kernels executed.
    pub fused_loops_run: u64,
    /// Source elements consumed by fused kernels.
    pub fused_elements: u64,
    /// Wall time spent inside loop instructions (`FusedLoop` +
    /// `BatchLoop` bodies), nanoseconds. Zero when the query ran purely
    /// scalar, in which case [`QueryProfile::wall`] is the loop time.
    pub loop_ns: u64,
    /// Wall-clock time of the run.
    pub wall: Duration,
    /// Whether compilation was served from the `QueryCache` (`None`
    /// when the query was compiled directly, without a cache).
    pub cache_hit: Option<bool>,
}

impl QueryProfile {
    /// Fraction of batch elements surviving predicate evaluation, in
    /// `[0, 1]`; `None` when the vectorized tier did not run.
    pub fn selection_density(&self) -> Option<f64> {
        (self.batch_elements_in > 0)
            .then(|| self.batch_elements_selected as f64 / self.batch_elements_in as f64)
    }

    /// Renders the profile as stable JSON (field order fixed, wall time
    /// in nanoseconds).
    pub fn to_json(&self) -> String {
        let density = self
            .selection_density()
            .map_or("null".to_string(), |d| format!("{d:.4}"));
        let cache_hit = match self.cache_hit {
            None => "null",
            Some(true) => "true",
            Some(false) => "false",
        };
        format!(
            "{{\"scalar_instrs\": {}, \"src_reads\": {}, \"udf_calls\": {}, \
             \"sink_pushes\": {}, \"out_elements\": {}, \"batch_loops\": {}, \
             \"batches\": {}, \"batch_elements_in\": {}, \"batch_elements_selected\": {}, \
             \"selection_density\": {}, \"fused_loops_run\": {}, \"fused_elements\": {}, \
             \"loop_ns\": {}, \"wall_ns\": {}, \"cache_hit\": {}}}",
            self.scalar_instrs,
            self.src_reads,
            self.udf_calls,
            self.sink_pushes,
            self.out_elements,
            self.batch_loops,
            self.batches,
            self.batch_elements_in,
            self.batch_elements_selected,
            density,
            self.fused_loops_run,
            self.fused_elements,
            self.loop_ns,
            self.wall.as_nanos(),
            cache_hit,
        )
    }
}

impl std::fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "profile: {} scalar instrs, {} src reads, {} udf calls, {} sink pushes, {} out",
            self.scalar_instrs, self.src_reads, self.udf_calls, self.sink_pushes, self.out_elements
        )?;
        if self.batch_loops > 0 {
            let density = self.selection_density().unwrap_or(0.0);
            writeln!(
                f,
                "  vectorized: {} loop(s), {} batch(es), {} elements in, {} selected (density {:.2})",
                self.batch_loops,
                self.batches,
                self.batch_elements_in,
                self.batch_elements_selected,
                density
            )?;
        }
        if self.fused_loops_run > 0 {
            writeln!(
                f,
                "  fused: {} kernel(s), {} elements",
                self.fused_loops_run, self.fused_elements
            )?;
        }
        write!(f, "  wall: {:?}", self.wall)?;
        if let Some(hit) = self.cache_hit {
            write!(f, ", cache {}", if hit { "hit" } else { "miss" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_density_handles_empty_and_partial() {
        let mut p = QueryProfile::default();
        assert_eq!(p.selection_density(), None);
        p.batch_elements_in = 100;
        p.batch_elements_selected = 25;
        assert_eq!(p.selection_density(), Some(0.25));
    }

    #[test]
    fn json_is_well_formed() {
        let p = QueryProfile {
            scalar_instrs: 10,
            batch_elements_in: 4,
            batch_elements_selected: 2,
            cache_hit: Some(true),
            ..QueryProfile::default()
        };
        let js = p.to_json();
        assert!(js.contains("\"selection_density\": 0.5000"), "{js}");
        assert!(js.contains("\"cache_hit\": true"), "{js}");
        // Display mentions the headline counters.
        assert!(p.to_string().contains("10 scalar instrs"));
    }
}
