//! Nested-query optimization (§5): the triple Cartesian product.
//!
//! The paper's example:
//!
//! ```text
//! xs.SelectMany(x => ys.SelectMany(y => zs.Select(z => F(x, y, z)))).Sum()
//! ```
//!
//! A naive optimizer would leave each nesting level consuming from an
//! iterator; Steno's pushdown automaton splices them into one triple
//! loop, with the outermost Sum's update injected into the innermost
//! body. This example prints the generated code so you can see exactly
//! that, and times it against the iterator chains.
//!
//! Run with `cargo run --release --example cartesian`.

use std::time::Instant;

use steno::prelude::*;
use steno::steno;

fn main() -> Result<(), StenoError> {
    let xs: Vec<f64> = (0..400).map(|i| (i as f64) * 0.01).collect();
    let ys: Vec<f64> = (0..300).map(|i| (i as f64) * 0.02 - 3.0).collect();
    let zs: Vec<f64> = (0..200).map(|i| (i as f64) * 0.05 + 1.0).collect();

    // Boxed iterator chains (the §2 cost model).
    let ex = Enumerable::from_vec(xs.clone());
    let ey = Enumerable::from_vec(ys.clone());
    let ez = Enumerable::from_vec(zs.clone());
    let t = Instant::now();
    let via_linq = ex
        .select_many(move |x| {
            let ez = ez.clone();
            ey.select_many(move |y| ez.select(move |z| x * y * z))
        })
        .sum();
    let linq_time = t.elapsed();

    // Runtime Steno: parse, optimize, inspect, execute.
    let ctx = DataContext::new()
        .with_source("xs", xs.clone())
        .with_source("ys", ys.clone())
        .with_source("zs", zs.clone());
    let udfs = UdfRegistry::new();
    let engine = Steno::new();
    let text = "(from x in xs from y in ys from z in zs select x * y * z).sum()";
    let (query, _) = steno::syntax::parse_query(text).unwrap();
    let compiled = engine.compile(&query, (&ctx).into(), &udfs)?;
    println!("query: {text}");
    println!("QUIL:  {}  (nesting depth 3)\n", compiled.quil());
    println!("generated code — note the Sum update in the innermost loop:\n");
    println!("{}", compiled.rust_source());
    let t = Instant::now();
    let via_steno = compiled.run(&ctx, &udfs).map_err(StenoError::Vm)?;
    let steno_time = t.elapsed();

    // Compile-time Steno.
    let t = Instant::now();
    let via_macro: f64 =
        steno!((from x: f64 in xs from y: f64 in ys from z: f64 in zs select x * y * z).sum());
    let macro_time = t.elapsed();

    println!("linq  {linq_time:>10.2?}   -> {via_linq}");
    println!(
        "steno {steno_time:>10.2?}   -> {via_steno}   ({:.1}x)",
        linq_time.as_secs_f64() / steno_time.as_secs_f64()
    );
    println!(
        "macro {macro_time:>10.2?}   -> {via_macro}   ({:.1}x)",
        linq_time.as_secs_f64() / macro_time.as_secs_f64()
    );
    Ok(())
}
