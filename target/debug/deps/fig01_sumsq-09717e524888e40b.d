/root/repo/target/debug/deps/fig01_sumsq-09717e524888e40b.d: crates/bench/benches/fig01_sumsq.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_sumsq-09717e524888e40b.rmeta: crates/bench/benches/fig01_sumsq.rs Cargo.toml

crates/bench/benches/fig01_sumsq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
