//! The Steno execution back end: generated loop code as register bytecode.
//!
//! The paper compiles its generated C# with `csc`, dynamically loads the
//! DLL, and invokes the compiled query object (§3.3). Rust has no
//! in-process JIT, so this crate provides the equivalent runtime back end:
//! the imperative program produced by `steno-codegen` is compiled to a
//! compact, *type-specialized* register bytecode ([`compile`]) and
//! executed by a tight interpreter loop ([`exec`]).
//!
//! What matters for reproducing the paper's measurements is the cost
//! model: per element the bytecode pays a handful of enum-dispatched
//! instructions over unboxed `f64`/`i64` registers — no virtual calls, no
//! iterator state machines, no per-operator function objects. The
//! one-off translation cost (lower → generate → assemble) corresponds to
//! the paper's ~69 ms `csc` invocation; it is measured by
//! [`CompiledQuery::compile`] and amortized by the [`QueryCache`]
//! (the caching the paper suggests via Nectar \[18\]).
//!
//! # Example
//!
//! ```
//! use steno_expr::{DataContext, Expr, UdfRegistry, Value};
//! use steno_query::Query;
//! use steno_vm::CompiledQuery;
//!
//! let q = Query::source("xs")
//!     .select(Expr::var("x") * Expr::var("x"), "x")
//!     .sum()
//!     .build();
//! let ctx = DataContext::new().with_source("xs", vec![1.0, 2.0, 3.0]);
//! let udfs = UdfRegistry::new();
//! let compiled = CompiledQuery::compile(&q, (&ctx).into(), &udfs)?;
//! assert_eq!(compiled.run(&ctx, &udfs)?, Value::F64(14.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod batch;
pub mod compile;
pub mod check;
pub mod fuse;
pub mod fuse_kernels;
pub mod exec;
pub mod instr;
pub mod interrupt;
pub mod kernels;
pub mod lifetimes;
pub mod prepared;
pub mod profile;
pub mod query;
pub mod sink;

pub use check::{check_program, CheckError, ObligationKind, TapeReport};
pub use compile::{assemble, CompileError};
pub use exec::{run_program, run_program_profiled, run_program_with, VmError};
pub use instr::{FallbackReason, Instr, LoopPlan, LoopTier, Program};
pub use interrupt::{CancelProbe, Interrupt};
pub use profile::QueryProfile;
pub use query::{
    CacheStats, CompiledQuery, EngineKind, QueryCache, StenoOptions, VectorizationPolicy,
};
