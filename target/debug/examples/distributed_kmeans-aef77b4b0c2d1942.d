/root/repo/target/debug/examples/distributed_kmeans-aef77b4b0c2d1942.d: examples/distributed_kmeans.rs

/root/repo/target/debug/examples/distributed_kmeans-aef77b4b0c2d1942: examples/distributed_kmeans.rs

examples/distributed_kmeans.rs:
