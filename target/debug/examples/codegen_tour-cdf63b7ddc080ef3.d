/root/repo/target/debug/examples/codegen_tour-cdf63b7ddc080ef3.d: examples/codegen_tour.rs

/root/repo/target/debug/examples/codegen_tour-cdf63b7ddc080ef3: examples/codegen_tour.rs

examples/codegen_tour.rs:
