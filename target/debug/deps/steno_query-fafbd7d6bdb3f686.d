/root/repo/target/debug/deps/steno_query-fafbd7d6bdb3f686.d: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_query-fafbd7d6bdb3f686.rlib: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_query-fafbd7d6bdb3f686.rmeta: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs Cargo.toml

crates/steno-query/src/lib.rs:
crates/steno-query/src/ast.rs:
crates/steno-query/src/builder.rs:
crates/steno-query/src/typing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
