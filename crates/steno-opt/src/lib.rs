//! Feedback-directed query optimization (§7.1's compile-vs-run
//! break-even, made adaptive).
//!
//! Steno compiles a query once and runs it forever — but the facts a
//! plan was chosen under (how selective each filter is, how large the
//! input is, how long compilation took versus a run) are only *measured*
//! at run time. This crate closes that loop with three cooperating
//! pieces, each consumed by `steno-vm` and the `Steno` engine facade:
//!
//! 1. [`rewrite`] — a verified algebraic rewrite pass over QUIL chains:
//!    Take/Skip propagation, map·map fusion, selectivity-driven filter
//!    reordering, predicate pushdown past pure maps, and adjacent-filter
//!    fusion. Every rewrite is re-checked by the independent
//!    `steno-analysis` plan verifier; a rewrite that fails verification
//!    is *dropped, not trusted*, and every decision (applied or dropped)
//!    is recorded in a machine-readable [`RewriteEvent`] log.
//! 2. [`cost`] — the break-even tier-choice model: given observed
//!    element counts and selection density, advise the VM's compiler
//!    whether the batch-vectorized tier will amortize its setup.
//! 3. [`stats`] — exponentially-decayed per-plan run statistics with
//!    hysteresis-guarded drift detection, driving bounded
//!    re-optimization when the observed workload departs the plan's
//!    assumptions.
//!
//! The crate is dependency-free beyond the workspace IR/analysis crates
//! and does no I/O; policy (when to sample, when to recompile) lives in
//! the callers.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]
#![warn(missing_docs)]

pub mod cost;
pub mod rewrite;
pub mod stats;

pub use cost::{choose_tier, LoopStats, TierAdvice};
pub use rewrite::{observe_selectivities, rewrite, RewriteEvent, RewriteOutcome};
pub use stats::{DriftConfig, ObservedRun, PlanStats};
