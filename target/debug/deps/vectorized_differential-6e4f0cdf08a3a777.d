/root/repo/target/debug/deps/vectorized_differential-6e4f0cdf08a3a777.d: crates/steno-vm/tests/vectorized_differential.rs

/root/repo/target/debug/deps/vectorized_differential-6e4f0cdf08a3a777: crates/steno-vm/tests/vectorized_differential.rs

crates/steno-vm/tests/vectorized_differential.rs:
