//! The `Lookup<K, T>` key–value multi-map of Fig. 7(b).
//!
//! "`Lookup<K, T>` is a utility class that maintains a key-value multi-map,
//! implements the `IEnumerable<IGrouping<K, T>>` interface, and provides a
//! `Put` method that returns the updated collection."

use std::collections::HashMap;
use std::hash::Hash;

use crate::grouping::Grouping;

/// An insertion-ordered multi-map from keys to bags of values.
///
/// Iteration yields groups in the order their keys first appeared, matching
/// LINQ's `GroupBy`/`ToLookup` contract.
#[derive(Clone, Debug)]
pub struct Lookup<K, V> {
    index: HashMap<K, usize>,
    groups: Vec<(K, Vec<V>)>,
}

impl<K: Eq + Hash + Clone, V> Default for Lookup<K, V> {
    fn default() -> Self {
        Lookup::new()
    }
}

impl<K: Eq + Hash + Clone, V> Lookup<K, V> {
    /// Creates an empty lookup.
    pub fn new() -> Lookup<K, V> {
        Lookup {
            index: HashMap::new(),
            groups: Vec::new(),
        }
    }

    /// Appends `value` to the bag for `key`.
    pub fn add(&mut self, key: K, value: V) {
        match self.index.get(&key) {
            Some(&slot) => self.groups[slot].1.push(value),
            None => {
                self.index.insert(key.clone(), self.groups.len());
                self.groups.push((key, vec![value]));
            }
        }
    }

    /// The `Put` method of Fig. 7(b): adds and returns the updated
    /// collection, so the generated code can write
    /// `sink = sink.put(key, elem)`.
    #[must_use = "put returns the updated collection"]
    pub fn put(mut self, key: K, value: V) -> Lookup<K, V> {
        self.add(key, value);
        self
    }

    /// The bag of values for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&[V]> {
        self.index
            .get(key)
            .map(|&slot| self.groups[slot].1.as_slice())
    }

    /// The number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// `true` when no keys are present.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Iterates `(key, values)` in key-first-appearance order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &[V])> {
        self.groups.iter().map(|(k, vs)| (k, vs.as_slice()))
    }

    /// Consumes the lookup into `Grouping`s, in key order of first
    /// appearance — the `IEnumerable<IGrouping<K, T>>` view.
    pub fn into_groupings(self) -> Vec<Grouping<K, V>> {
        self.groups
            .into_iter()
            .map(|(k, vs)| Grouping::new(k, vs))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_groups_by_key_in_first_appearance_order() {
        let mut l = Lookup::new();
        for (k, v) in [(2, 'a'), (1, 'b'), (2, 'c'), (3, 'd'), (1, 'e')] {
            l.add(k, v);
        }
        assert_eq!(l.len(), 3);
        let keys: Vec<i32> = l.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![2, 1, 3]);
        assert_eq!(l.get(&2), Some(&['a', 'c'][..]));
        assert_eq!(l.get(&9), None);
    }

    #[test]
    fn put_returns_updated_collection() {
        // The exact pattern of the generated code in Fig. 7(b).
        let mut sink = Lookup::new();
        for x in [1i64, 2, 3, 4] {
            sink = sink.put(x % 2, x);
        }
        assert_eq!(sink.get(&1), Some(&[1, 3][..]));
        assert_eq!(sink.get(&0), Some(&[2, 4][..]));
    }

    #[test]
    fn into_groupings_preserves_order() {
        let mut l = Lookup::new();
        l.add("b", 1);
        l.add("a", 2);
        l.add("b", 3);
        let gs = l.into_groupings();
        assert_eq!(gs.len(), 2);
        assert_eq!(*gs[0].key(), "b");
        assert_eq!(gs[0].to_vec(), vec![1, 3]);
        assert_eq!(*gs[1].key(), "a");
    }

    #[test]
    fn empty_lookup() {
        let l: Lookup<i64, i64> = Lookup::new();
        assert!(l.is_empty());
        assert_eq!(l.len(), 0);
        assert!(l.into_groupings().is_empty());
    }
}
