/root/repo/target/debug/libsteno_obs.rlib: /root/repo/crates/steno-obs/src/json.rs /root/repo/crates/steno-obs/src/lib.rs /root/repo/crates/steno-obs/src/metrics.rs
