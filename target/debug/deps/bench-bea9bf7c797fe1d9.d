/root/repo/target/debug/deps/bench-bea9bf7c797fe1d9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libbench-bea9bf7c797fe1d9.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
