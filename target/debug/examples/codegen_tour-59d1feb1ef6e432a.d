/root/repo/target/debug/examples/codegen_tour-59d1feb1ef6e432a.d: examples/codegen_tour.rs

/root/repo/target/debug/examples/codegen_tour-59d1feb1ef6e432a: examples/codegen_tour.rs

examples/codegen_tour.rs:
