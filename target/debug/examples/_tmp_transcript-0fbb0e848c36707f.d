/root/repo/target/debug/examples/_tmp_transcript-0fbb0e848c36707f.d: examples/_tmp_transcript.rs

/root/repo/target/debug/examples/_tmp_transcript-0fbb0e848c36707f: examples/_tmp_transcript.rs

examples/_tmp_transcript.rs:
