/root/repo/target/debug/deps/steno_linq-ba378de8b17f3361.d: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_linq-ba378de8b17f3361.rmeta: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs Cargo.toml

crates/steno-linq/src/lib.rs:
crates/steno-linq/src/aggregates.rs:
crates/steno-linq/src/enumerable.rs:
crates/steno-linq/src/enumerator.rs:
crates/steno-linq/src/grouping.rs:
crates/steno-linq/src/interp.rs:
crates/steno-linq/src/lookup.rs:
crates/steno-linq/src/sources.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
