//! Minimal JSON support: string escaping and a small strict parser.
//!
//! The build environment is offline, so serde is unavailable; every
//! exporter in the workspace hand-renders JSON and this module is the
//! one place escaping and (for tests and the bench harness) parsing
//! live. The parser is strict RFC-8259 on structure but keeps numbers
//! simple: they are parsed as `f64`, with an exact `u64`/`i64` view
//! when the text is a plain integer.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integer texts keep an exact `u64`/`i64` view.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. `BTreeMap` drops duplicate keys (last wins) and makes
    /// iteration order deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, when it is a non-negative integer
    /// small enough to round-trip through `f64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// A parse failure: what was wrong and the byte offset it was noticed
/// at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the problem.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Nesting limit: snapshots and bench records are a few levels deep;
/// this only guards against stack overflow on adversarial input.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.eat_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.eat_lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        self.depth += 1;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            m.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        self.depth += 1;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .peek()
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor already past the `u`),
    /// consuming a second `\uXXXX` when the first is a high surrogate;
    /// leaves the cursor past the full escape.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{0001}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": true}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(arr[2], JsonValue::Null);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "weird \"chars\" \\ here\nand\ttabs \u{0010} ünïcödé";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(parse(r#""𝄞""#).unwrap().as_str(), Some("𝄞"));
        assert!(parse(r#""\ud834""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", r#"{"a" 1}"#, "tru", "1 2", "[1,]", r#""unterminated"#,
            "{]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }
}
