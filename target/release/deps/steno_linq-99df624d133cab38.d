/root/repo/target/release/deps/steno_linq-99df624d133cab38.d: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs

/root/repo/target/release/deps/libsteno_linq-99df624d133cab38.rlib: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs

/root/repo/target/release/deps/libsteno_linq-99df624d133cab38.rmeta: crates/steno-linq/src/lib.rs crates/steno-linq/src/aggregates.rs crates/steno-linq/src/enumerable.rs crates/steno-linq/src/enumerator.rs crates/steno-linq/src/grouping.rs crates/steno-linq/src/interp.rs crates/steno-linq/src/lookup.rs crates/steno-linq/src/sources.rs

crates/steno-linq/src/lib.rs:
crates/steno-linq/src/aggregates.rs:
crates/steno-linq/src/enumerable.rs:
crates/steno-linq/src/enumerator.rs:
crates/steno-linq/src/grouping.rs:
crates/steno-linq/src/interp.rs:
crates/steno-linq/src/lookup.rs:
crates/steno-linq/src/sources.rs:
