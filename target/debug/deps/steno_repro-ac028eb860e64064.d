/root/repo/target/debug/deps/steno_repro-ac028eb860e64064.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-ac028eb860e64064.rlib: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-ac028eb860e64064.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
