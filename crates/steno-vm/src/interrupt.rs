//! Cooperative interruption: deadlines and cancellation for running
//! queries.
//!
//! The VM cannot preempt a running program (threads are not killable —
//! the same constraint the cluster scheduler documents on its
//! `CancelToken`), so interruption is cooperative: the dispatch loop
//! polls an [`Interrupt`] at loop back-edges and the batch engine polls
//! it at batch boundaries, aborting with [`VmError::Cancelled`] or
//! [`VmError::DeadlineExceeded`] instead of running to completion. This
//! is the mechanism `steno-serve` uses to bound the latency of a slow or
//! poisoned query: a query past its deadline stops within one poll
//! stride (≤ [`POLL_STRIDE`] scalar elements or one 1024-lane batch)
//! rather than holding a worker until the data runs out.
//!
//! An inert interrupt (no deadline, no cancel probe) costs two `Option`
//! checks per poll point, so the uninterruptible entry points lose
//! nothing.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::exec::VmError;

/// How many scalar-loop back-edges pass between full interrupt checks.
/// A full check reads the clock and calls the cancel probe; at the
/// scalar tier's ~20–40 ns/element this bounds detection latency to a
/// few microseconds while keeping the per-element cost to a counter
/// decrement.
pub const POLL_STRIDE: u32 = 64;

/// A cancellation probe: returns `true` once the caller wants the query
/// aborted. Kept as a boxed closure so any flag type (the cluster's
/// `CancelToken`, a bare `AtomicBool`, a channel disconnect test) can
/// drive the VM without a dependency edge.
pub type CancelProbe = Arc<dyn Fn() -> bool + Send + Sync>;

/// A deadline and/or cancellation request threaded into VM execution.
///
/// The default value is inert: no deadline, no probe, never fires.
#[derive(Clone, Default)]
pub struct Interrupt {
    cancelled: Option<CancelProbe>,
    deadline: Option<Instant>,
}

impl fmt::Debug for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interrupt")
            .field("deadline", &self.deadline)
            .field("has_cancel_probe", &self.cancelled.is_some())
            .finish()
    }
}

impl Interrupt {
    /// The inert interrupt: never fires.
    pub fn none() -> Interrupt {
        Interrupt::default()
    }

    /// Aborts execution with [`VmError::DeadlineExceeded`] once the
    /// wall clock passes `at` (builder style).
    #[must_use = "with_deadline returns the extended interrupt"]
    pub fn with_deadline(mut self, at: Instant) -> Interrupt {
        self.deadline = Some(at);
        self
    }

    /// As [`Interrupt::with_deadline`], measured from now.
    #[must_use = "with_deadline_in returns the extended interrupt"]
    pub fn with_deadline_in(self, budget: Duration) -> Interrupt {
        self.with_deadline(Instant::now() + budget)
    }

    /// Aborts execution with [`VmError::Cancelled`] once `probe`
    /// returns `true` (builder style).
    #[must_use = "with_cancel_probe returns the extended interrupt"]
    pub fn with_cancel_probe(mut self, probe: CancelProbe) -> Interrupt {
        self.cancelled = Some(probe);
        self
    }

    /// The deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// `true` when this interrupt can never fire (no deadline, no
    /// probe) — poll points reduce to this check.
    #[inline]
    pub fn is_inert(&self) -> bool {
        self.deadline.is_none() && self.cancelled.is_none()
    }

    /// Checks both conditions now. The deadline is checked first so a
    /// query that is both cancelled and past its deadline reports
    /// [`VmError::DeadlineExceeded`] deterministically.
    ///
    /// # Errors
    ///
    /// [`VmError::DeadlineExceeded`] past the deadline,
    /// [`VmError::Cancelled`] once the probe fires.
    #[inline]
    pub fn check(&self) -> Result<(), VmError> {
        if let Some(at) = self.deadline {
            if Instant::now() >= at {
                return Err(VmError::DeadlineExceeded);
            }
        }
        if let Some(probe) = &self.cancelled {
            if probe() {
                return Err(VmError::Cancelled);
            }
        }
        Ok(())
    }

    /// Amortized poll for hot loops: decrements `budget` and runs a full
    /// [`Interrupt::check`] every [`POLL_STRIDE`] calls. Inert
    /// interrupts return immediately without touching the budget.
    ///
    /// # Errors
    ///
    /// As [`Interrupt::check`].
    #[inline]
    pub fn poll(&self, budget: &mut u32) -> Result<(), VmError> {
        if self.is_inert() {
            return Ok(());
        }
        *budget = budget.wrapping_sub(1);
        if *budget == 0 {
            *budget = POLL_STRIDE;
            self.check()
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn inert_interrupt_never_fires() {
        let i = Interrupt::none();
        assert!(i.is_inert());
        assert_eq!(i.check(), Ok(()));
        let mut budget = 1;
        for _ in 0..10 * POLL_STRIDE {
            assert_eq!(i.poll(&mut budget), Ok(()));
        }
        // Inert polls never consume the budget.
        assert_eq!(budget, 1);
    }

    #[test]
    fn deadline_fires_after_expiry() {
        let i = Interrupt::none().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!i.is_inert());
        assert_eq!(i.check(), Err(VmError::DeadlineExceeded));
        let future = Interrupt::none().with_deadline_in(Duration::from_secs(60));
        assert_eq!(future.check(), Ok(()));
    }

    #[test]
    fn cancel_probe_fires_when_set() {
        let flag = Arc::new(AtomicBool::new(false));
        let probe = {
            let flag = Arc::clone(&flag);
            Arc::new(move || flag.load(Ordering::Acquire)) as CancelProbe
        };
        let i = Interrupt::none().with_cancel_probe(probe);
        assert_eq!(i.check(), Ok(()));
        flag.store(true, Ordering::Release);
        assert_eq!(i.check(), Err(VmError::Cancelled));
    }

    #[test]
    fn deadline_wins_over_cancellation() {
        let probe = Arc::new(|| true) as CancelProbe;
        let i = Interrupt::none()
            .with_cancel_probe(probe)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(i.check(), Err(VmError::DeadlineExceeded));
    }

    #[test]
    fn poll_checks_on_stride_boundaries() {
        let i = Interrupt::none().with_deadline(Instant::now() - Duration::from_millis(1));
        let mut budget = POLL_STRIDE;
        for _ in 0..POLL_STRIDE - 1 {
            assert_eq!(i.poll(&mut budget), Ok(()), "mid-stride polls are free");
        }
        assert_eq!(i.poll(&mut budget), Err(VmError::DeadlineExceeded));
        assert_eq!(budget, POLL_STRIDE, "budget refills after a full check");
    }
}
