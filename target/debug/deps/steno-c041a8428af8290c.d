/root/repo/target/debug/deps/steno-c041a8428af8290c.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-c041a8428af8290c.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/libsteno-c041a8428af8290c.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
