/root/repo/target/debug/deps/bench-2ac4f9966d0b6fe8.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2ac4f9966d0b6fe8.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
