/root/repo/target/debug/deps/failure_injection-85093e1f867a8c18.d: crates/steno-vm/tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-85093e1f867a8c18.rmeta: crates/steno-vm/tests/failure_injection.rs Cargo.toml

crates/steno-vm/tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
