//! The Steno observability core: metrics, spans, and JSON snapshots.
//!
//! Every layer of the Steno pipeline reports *where time and elements
//! went* — which VM tier a loop landed in, how many batches a query
//! executed, how often the cluster retried a vertex — through one small,
//! dependency-free instrumentation surface (the build environment is
//! offline; neither `tracing` nor `metrics` is available, and nothing
//! here needs them):
//!
//! * [`Collector`] — the pluggable sink. Instrumented code calls
//!   [`Collector::add`] (monotonic counters), [`Collector::observe_ns`]
//!   (latency/size distributions), and [`Collector::time`] (RAII spans).
//! * [`NoopCollector`] — the default. `enabled()` is `false`, every hook
//!   is an empty inlineable body, and [`Span`] skips even the clock
//!   read, so un-instrumented runs pay nothing measurable.
//! * [`MemoryCollector`] — the in-process implementation: lock-free
//!   atomic counters and log2-bucketed histograms behind a name
//!   registry, snapshotted on demand.
//! * [`MetricsSnapshot`] — a point-in-time copy with a stable,
//!   hand-rolled JSON form ([`MetricsSnapshot::to_json`]) for the bench
//!   harness and external tooling, plus a human-readable
//!   [`MetricsSnapshot::render`].
//! * [`json`] — the minimal JSON escape/parse helpers shared by every
//!   exporter in the workspace (bench records, EXPLAIN plans, query
//!   profiles round-trip through it in tests).
//! * [`trace`] — steno-trace: hierarchical per-query spans ([`Tracer`],
//!   [`SpanGuard`]) with parent links, monotonic timestamps, key/value
//!   annotations, and bounded per-thread span rings; plus the
//!   [`FlightRecorder`] — a bounded ring of recent [`QueryTrace`]s that
//!   flags anomalies (deadline exceeded, trap, verifier reject, re-opt,
//!   slow query) and renders annotated dumps with EXPLAIN attached.
//! * [`openmetrics`] — [`MetricsSnapshot::to_openmetrics`] text
//!   exposition (per-tenant label families included) and the scrape
//!   linter ([`openmetrics::lint`], [`openmetrics::counters_monotone`])
//!   CI runs against live output.

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod json;
pub mod metrics;
pub mod openmetrics;
pub mod trace;

pub use metrics::{
    Collector, HistogramSnapshot, MemoryCollector, MetricsSnapshot, NoopCollector, Span,
};
pub use trace::{
    Anomaly, FlightRecorder, Note, QueryTrace, SpanGuard, SpanId, SpanRecord, TraceConfig,
    TraceMeta, Tracer,
};
