/root/repo/target/debug/deps/tab01-1a8d4316da1a6d19.d: crates/bench/src/bin/tab01.rs Cargo.toml

/root/repo/target/debug/deps/libtab01-1a8d4316da1a6d19.rmeta: crates/bench/src/bin/tab01.rs Cargo.toml

crates/bench/src/bin/tab01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
