/root/repo/target/debug/deps/cluster_fault_injection-4b11e4026bdb98a8.d: crates/steno-cluster/tests/cluster_fault_injection.rs

/root/repo/target/debug/deps/cluster_fault_injection-4b11e4026bdb98a8: crates/steno-cluster/tests/cluster_fault_injection.rs

crates/steno-cluster/tests/cluster_fault_injection.rs:
