/root/repo/target/debug/deps/steno_serve-f3174eb7fa35d8a5.d: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

/root/repo/target/debug/deps/libsteno_serve-f3174eb7fa35d8a5.rlib: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

/root/repo/target/debug/deps/libsteno_serve-f3174eb7fa35d8a5.rmeta: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

crates/steno-serve/src/lib.rs:
crates/steno-serve/src/breaker.rs:
crates/steno-serve/src/loadgen.rs:
crates/steno-serve/src/report.rs:
crates/steno-serve/src/service.rs:
