/root/repo/target/release/deps/steno_repro-c66d7b9dddfb96c9.d: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-c66d7b9dddfb96c9.rlib: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-c66d7b9dddfb96c9.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
