//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§7). See the `fig*` binaries and the `benches/` targets
//! (self-contained harness — the environment builds offline).
pub mod harness;
pub mod kmeans;
pub mod micro;
pub mod prng;
pub mod workloads;
