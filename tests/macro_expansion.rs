//! End-to-end tests of the compile-time Steno path: the `steno!` macro
//! (§9 of the paper) expanding queries into fused imperative loops that
//! `rustc` compiles alongside this test.

use steno::steno;

#[test]
fn sum_of_squares_matches_hand_loop() {
    let xs: Vec<f64> = (0..1000).map(|i| i as f64 * 0.25).collect();
    let optimized: f64 = steno!((from x: f64 in xs select x * x).sum());
    // Indexed loop on purpose: the same shape the macro expands to.
    #[allow(clippy::needless_range_loop)]
    let hand = {
        let mut hand = 0.0;
        for i in 0..xs.len() {
            let x = xs[i];
            hand += x * x;
        }
        hand
    };
    // The generated loop performs the same operations in the same order.
    assert_eq!(optimized.to_bits(), hand.to_bits());
}

#[test]
fn even_squares_filtering() {
    let ns: Vec<i64> = (0..20).collect();
    let out: Vec<i64> = steno!(from x: i64 in ns where x % 2 == 0 select x * x);
    assert_eq!(out, vec![0, 4, 16, 36, 64, 100, 144, 196, 256, 324]);
}

#[test]
fn nested_cartesian_product_fuses_to_nested_loops() {
    // The §5 example: Sum over a product of sequences.
    let xs: Vec<f64> = vec![1.0, 2.0, 3.0];
    let ys: Vec<f64> = vec![10.0, 20.0];
    let total: f64 = steno!((from x: f64 in xs from y: f64 in ys select x * y).sum());
    assert_eq!(total, (1.0 + 2.0 + 3.0) * 30.0);
}

#[test]
fn aggregates_and_positional_operators() {
    let xs: Vec<f64> = vec![5.0, -3.0, 8.0, 1.0, -9.0];
    let m: f64 = steno!((from x: f64 in xs select x).min());
    assert_eq!(m, -9.0);
    let c: i64 = steno!(xs.where(|x: f64| x > 0.0).count());
    assert_eq!(c, 3);
    let avg: f64 = steno!((from x: f64 in xs select x).average());
    assert_eq!(avg, 0.4);
    let first_two: Vec<f64> = steno!((from x: f64 in xs select x).take(2));
    assert_eq!(first_two, vec![5.0, -3.0]);
}

#[test]
fn group_by_aggregate_uses_specialized_sink() {
    // The histogram shape of the Group microbenchmark (§7.1): counts per
    // integer bin, via the GroupBy sink.
    let xs: Vec<f64> = vec![0.5, 1.5, 0.7, 2.2, 1.1, 0.1];
    let bins: Vec<(f64, i64)> =
        steno!(xs.group_by(|x: f64| x.floor()).select(|kv| (kv.0, kv.1.count())));
    assert_eq!(bins, vec![(0.0, 3), (1.0, 2), (2.0, 1)]);
}

#[test]
fn range_source_needs_no_annotation() {
    let s: i64 = steno!(range(1, 100).sum());
    assert_eq!(s, 5050);
}

#[test]
fn take_while_and_skip() {
    let xs: Vec<i64> = (0..10).collect();
    let v: Vec<i64> = steno!(xs.skip(3).take_while(|x: i64| x < 8));
    assert_eq!(v, vec![3, 4, 5, 6, 7]);
}
