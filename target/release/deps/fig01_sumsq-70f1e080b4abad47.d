/root/repo/target/release/deps/fig01_sumsq-70f1e080b4abad47.d: crates/bench/benches/fig01_sumsq.rs

/root/repo/target/release/deps/fig01_sumsq-70f1e080b4abad47: crates/bench/benches/fig01_sumsq.rs

crates/bench/benches/fig01_sumsq.rs:
