/root/repo/target/release/examples/explain_profile-76bd30a02dc255bd.d: examples/explain_profile.rs

/root/repo/target/release/examples/explain_profile-76bd30a02dc255bd: examples/explain_profile.rs

examples/explain_profile.rs:
