/root/repo/target/debug/deps/fig01-b2cd8298932e2212.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-b2cd8298932e2212.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
