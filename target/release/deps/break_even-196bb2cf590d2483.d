/root/repo/target/release/deps/break_even-196bb2cf590d2483.d: crates/bench/src/bin/break_even.rs

/root/repo/target/release/deps/break_even-196bb2cf590d2483: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
