//! Eager (scalar-returning) operators: `Aggregate`, `Sum`, `Min`, ...
//!
//! "Aggregate operators which return a scalar (such as `Sum()`, `Min()` and
//! `Average()`) are eagerly evaluated and contain a `foreach` loop that
//! consumes the upstream iterator" (§2). Each method below is exactly that
//! loop, pulling through the virtual `move_next`/`current` interface.

use crate::enumerable::Enumerable;

impl<T: Clone + 'static> Enumerable<T> {
    /// `Aggregate(seed, func)`: left fold.
    pub fn aggregate<A>(&self, seed: A, func: impl Fn(A, T) -> A) -> A {
        let mut acc = seed;
        let mut e = self.get_enumerator();
        while e.move_next() {
            acc = func(acc, e.current());
        }
        acc
    }

    /// `Count()`.
    pub fn count(&self) -> usize {
        let mut n = 0;
        let mut e = self.get_enumerator();
        while e.move_next() {
            n += 1;
        }
        n
    }

    /// `Any(predicate)`: `true` if any element matches (short-circuits).
    pub fn any(&self, predicate: impl Fn(T) -> bool) -> bool {
        let mut e = self.get_enumerator();
        while e.move_next() {
            if predicate(e.current()) {
                return true;
            }
        }
        false
    }

    /// `All(predicate)`: `true` if every element matches (short-circuits).
    pub fn all(&self, predicate: impl Fn(T) -> bool) -> bool {
        let mut e = self.get_enumerator();
        while e.move_next() {
            if !predicate(e.current()) {
                return false;
            }
        }
        true
    }

    /// `FirstOrDefault()`: the first element, if any.
    pub fn first(&self) -> Option<T> {
        let mut e = self.get_enumerator();
        if e.move_next() {
            Some(e.current())
        } else {
            None
        }
    }

    /// `ElementAtOrDefault(index)`.
    pub fn element_at(&self, index: usize) -> Option<T> {
        let mut e = self.get_enumerator();
        let mut i = 0;
        while e.move_next() {
            if i == index {
                return Some(e.current());
            }
            i += 1;
        }
        None
    }

    /// `ToList()` / `ToArray()`: materializes the sequence.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::new();
        let mut e = self.get_enumerator();
        while e.move_next() {
            out.push(e.current());
        }
        out
    }

    /// `Min` by comparator; `None` on an empty sequence.
    pub fn min_with(&self, cmp: impl Fn(&T, &T) -> std::cmp::Ordering) -> Option<T> {
        self.aggregate(None, |best: Option<T>, x| match best {
            None => Some(x),
            Some(b) => {
                if cmp(&x, &b).is_lt() {
                    Some(x)
                } else {
                    Some(b)
                }
            }
        })
    }

    /// `Max` by comparator; `None` on an empty sequence.
    pub fn max_with(&self, cmp: impl Fn(&T, &T) -> std::cmp::Ordering) -> Option<T> {
        self.min_with(move |a, b| cmp(b, a))
    }
}

impl Enumerable<f64> {
    /// `Sum()` over doubles.
    pub fn sum(&self) -> f64 {
        self.aggregate(0.0, |a, x| a + x)
    }

    /// `Average()`; `None` on an empty sequence (LINQ throws).
    pub fn average(&self) -> Option<f64> {
        let (n, s) = self.aggregate((0usize, 0.0), |(n, s), x| (n + 1, s + x));
        if n == 0 {
            None
        } else {
            Some(s / n as f64)
        }
    }

    /// `Min()`; `None` on an empty sequence.
    pub fn min(&self) -> Option<f64> {
        self.min_with(|a, b| a.total_cmp(b))
    }

    /// `Max()`; `None` on an empty sequence.
    pub fn max(&self) -> Option<f64> {
        self.max_with(|a, b| a.total_cmp(b))
    }
}

impl Enumerable<i64> {
    /// `Sum()` over integers (wrapping, to match unchecked C# arithmetic).
    pub fn sum(&self) -> i64 {
        self.aggregate(0i64, |a, x| a.wrapping_add(x))
    }

    /// `Average()`; `None` on an empty sequence.
    pub fn average(&self) -> Option<f64> {
        let (n, s) = self.aggregate((0usize, 0i64), |(n, s), x| (n + 1, s.wrapping_add(x)));
        if n == 0 {
            None
        } else {
            Some(s as f64 / n as f64)
        }
    }

    /// `Min()`; `None` on an empty sequence.
    pub fn min(&self) -> Option<i64> {
        self.min_with(|a, b| a.cmp(b))
    }

    /// `Max()`; `None` on an empty sequence.
    pub fn max(&self) -> Option<i64> {
        self.max_with(|a, b| a.cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xs() -> Enumerable<f64> {
        Enumerable::from_vec(vec![3.0, 1.0, 4.0, 1.0, 5.0])
    }

    #[test]
    fn folds() {
        assert_eq!(xs().sum(), 14.0);
        assert_eq!(xs().average(), Some(2.8));
        assert_eq!(xs().min(), Some(1.0));
        assert_eq!(xs().max(), Some(5.0));
        assert_eq!(xs().count(), 5);
        assert_eq!(xs().aggregate(1.0, |a, x| a * x), 60.0);
    }

    #[test]
    fn empty_sequences() {
        let e = Enumerable::<f64>::empty();
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.average(), None);
        assert_eq!(e.min(), None);
        assert_eq!(e.max(), None);
        assert_eq!(e.first(), None);
        assert_eq!(e.count(), 0);
        assert!(e.all(|_| false), "vacuous truth");
        assert!(!e.any(|_| true));
    }

    #[test]
    fn integer_aggregates() {
        let v = Enumerable::from_vec(vec![5i64, -2, 9]);
        assert_eq!(v.sum(), 12);
        assert_eq!(v.min(), Some(-2));
        assert_eq!(v.max(), Some(9));
        assert_eq!(v.average(), Some(4.0));
    }

    #[test]
    fn short_circuiting() {
        use std::cell::Cell;
        use std::rc::Rc;
        let pulls = Rc::new(Cell::new(0));
        let p = Rc::clone(&pulls);
        let q = Enumerable::from_vec((0..100i64).collect()).select(move |x| {
            p.set(p.get() + 1);
            x
        });
        assert!(q.any(|x| x == 2));
        assert_eq!(pulls.get(), 3);
        pulls.set(0);
        assert!(!q.all(|x| x < 1));
        assert_eq!(pulls.get(), 2);
    }

    #[test]
    fn positional_accessors() {
        let v = Enumerable::from_vec(vec![10i64, 20, 30]);
        assert_eq!(v.first(), Some(10));
        assert_eq!(v.element_at(2), Some(30));
        assert_eq!(v.element_at(3), None);
    }

    #[test]
    fn sum_of_squares_matches_closed_form() {
        // The Fig. 1 microbenchmark shape, in miniature.
        let n = 1000i64;
        let q = Enumerable::range(1, n as usize)
            .select(|x| x as f64)
            .select(|x| x * x);
        let expected = (n * (n + 1) * (2 * n + 1)) as f64 / 6.0;
        assert_eq!(q.sum(), expected);
    }
}
