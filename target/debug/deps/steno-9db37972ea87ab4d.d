/root/repo/target/debug/deps/steno-9db37972ea87ab4d.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/debug/deps/steno-9db37972ea87ab4d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
