//! Compile-time Steno: the paper's §9 "extend the compiler" variant.
//!
//! "The compiler already desugars LINQ queries that are written in query
//! comprehension syntax, and it would be conceptually straightforward to
//! extend this compiler pass to use Steno." Rust's procedural macros make
//! that extension possible without forking the compiler: [`steno!`] runs
//! the complete optimization pipeline — comprehension parsing, QUIL
//! lowering, operator specialization, the pushdown-automaton code
//! generator — at *macro expansion time*, and splices the generated
//! imperative loops directly into the caller's crate, where `rustc`
//! compiles them like hand-written code. This path has no one-off runtime
//! cost (§7.1's 69 ms disappears into the build) and no interpretation
//! overhead at all.
//!
//! Source element types cannot be inferred without a data context, so
//! binders of named sources must be annotated, mirroring the typed range
//! variables of C#:
//!
//! ```ignore
//! let total: f64 = steno!((from x: f64 in xs select x * x).sum());
//! ```
//!
//! The sources (`xs` above) are ordinary in-scope slices or `Vec`s.
//!
//! # Limitations
//!
//! User-defined function calls, `row` sources, and the `OrderBy` /
//! `Distinct` sinks are only available through the runtime pipeline;
//! using them here is a compile error directing you there.

use proc_macro::TokenStream;

use steno_codegen::{generate, render_rust};
use steno_expr::typecheck::TyEnv;
use steno_expr::UdfRegistry;
use steno_query::typing::SourceTypes;
use steno_quil::lower::{lower_with, LowerOptions};
use steno_quil::passes;
use steno_syntax::parse_query;

fn compile_error(message: &str) -> TokenStream {
    let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
    format!("compile_error!(\"{escaped}\")").parse().unwrap()
}

/// Optimizes a declarative query at compile time into fused imperative
/// loops.
///
/// See the [crate documentation](crate) for syntax and limitations.
#[proc_macro]
pub fn steno(input: TokenStream) -> TokenStream {
    let text = input.to_string();
    expand(&text)
}

fn expand(text: &str) -> TokenStream {
    let (query, binders) = match parse_query(text) {
        Ok(parsed) => parsed,
        Err(e) => return compile_error(&format!("steno!: {e}")),
    };
    // Build source types from binder annotations.
    let mut sources = SourceTypes::new();
    for (name, ty) in &binders.source_types {
        sources.insert(name.clone(), ty.clone());
    }
    // Every named source must be annotated.
    let mut missing = Vec::new();
    collect_unannotated(&query, &sources, &mut missing);
    if !missing.is_empty() {
        return compile_error(&format!(
            "steno!: annotate the element type of source(s) {} \
             (e.g. `from x: f64 in {}`)",
            missing.join(", "),
            missing[0]
        ));
    }
    let udfs = UdfRegistry::new();
    let chain = match lower_with(
        &query,
        &sources,
        &TyEnv::new(),
        &udfs,
        LowerOptions::default(),
    ) {
        Ok(chain) => chain,
        Err(e) => return compile_error(&format!("steno!: {e}")),
    };
    let chain = passes::optimize(&chain);
    let imp = match generate(&chain) {
        Ok(imp) => imp,
        Err(e) => return compile_error(&format!("steno!: {e}")),
    };
    // Reject programs whose rendering would not be valid Rust.
    for stmts in &imp.blocks {
        for s in stmts {
            if let steno_codegen::Stmt::DeclSink {
                decl:
                    steno_codegen::SinkDecl::SortedVec { .. } | steno_codegen::SinkDecl::DistinctVec,
                ..
            } = s
            {
                return compile_error(
                    "steno!: OrderBy/Distinct are only supported by the \
                     runtime pipeline (steno::Steno)",
                );
            }
        }
    }
    let body = render_rust(&imp);
    if body.contains("seq<") || body.contains(": row") {
        return compile_error(
            "steno!: this query materializes sequence-typed intermediates, \
             which the compile-time backend does not support; use the \
             runtime pipeline (steno::Steno)",
        );
    }
    // Generated code is machine-shaped (indexed loops, explicit
    // accumulator assignments): exempt it from style lints, as the C#
    // compiler does for its own generated iterators.
    let wrapped = format!(
        "{{ #[allow(unused_imports, clippy::all)] let __steno_result = (|| {{\n\
         use ::steno::rt::{{Lookup, GroupAggTable}};\n{body}}})(); __steno_result }}"
    );
    match wrapped.parse() {
        Ok(ts) => ts,
        Err(e) => compile_error(&format!(
            "steno!: generated code failed to re-parse ({e}); generated:\n{body}"
        )),
    }
}

/// Collects named sources lacking a type annotation.
fn collect_unannotated(
    q: &steno_query::QueryExpr,
    sources: &SourceTypes,
    out: &mut Vec<String>,
) {
    use steno_query::{QBody, QueryExpr, SourceRef};
    if let QueryExpr::Source(SourceRef::Named(name)) = q {
        if sources.get(name).is_none() && !out.contains(name) {
            out.push(name.clone());
        }
    }
    if let Some(input) = q.input() {
        collect_unannotated(input, sources, out);
    }
    // Nested queries inside operator functions.
    match q {
        QueryExpr::Select { f, .. } | QueryExpr::Where { p: f, .. } | QueryExpr::SelectMany { f, .. } => {
            if let QBody::Query(sub) = &f.body {
                collect_unannotated(sub, sources, out);
            }
        }
        QueryExpr::GroupBy {
            result: Some(r), ..
        } => collect_unannotated(&r.agg_query, sources, out),
        QueryExpr::Join { inner, .. } => collect_unannotated(inner, sources, out),
        _ => {}
    }
}
