//! Zero-false-positive gate for the tape verifier: every program the
//! compiler produces for the differential-test corpora must pass
//! [`steno_vm::check_program`]. The mutation harness
//! (`crates/steno-vm/tests/tape_mutation.rs`) proves the checker
//! rejects miscompiles; this test proves it accepts correct compiles —
//! across every tier (scalar, vectorized, fused), with and without the
//! rewrite pass, and on the feedback-directed compile path.

use steno_expr::{Column, DataContext, Expr, UdfRegistry};
use steno_query::typing::SourceTypes;
use steno_query::{GroupResult, Query, QueryExpr};
use steno_vm::query::{CompileFeedback, StenoOptions};
use steno_vm::{CompiledQuery, VectorizationPolicy};

fn x() -> Expr {
    Expr::var("x")
}

/// Mirrors the contexts used by the differential suites: dense f64 and
/// i64 columns (large enough to trip the batch tier), a boolean lane,
/// fixed-width rows, and a small secondary f64 source for `select_many`.
fn ctx() -> DataContext {
    DataContext::new()
        .with_source(
            "xs",
            (0..2500).map(|i| f64::from(i) * 0.25 - 300.0).collect::<Vec<_>>(),
        )
        .with_source("ns", (1..=1500i64).collect::<Vec<_>>())
        .with_source("ys", vec![0.5f64, -1.5, 2.0, 4.0])
        .with_source(
            "bs",
            Column::from_bool((0..1100).map(|i| i % 3 != 1).collect::<Vec<_>>()),
        )
        .with_source(
            "pts",
            Column::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3),
        )
}

/// The option combinations the engine actually runs: every tier toggle
/// plus the rewrite toggle. Each compiled program — whichever passes
/// produced it — must satisfy the full obligation catalogue.
fn option_matrix() -> Vec<StenoOptions> {
    let auto = StenoOptions::default();
    vec![
        auto,
        StenoOptions {
            vectorize: VectorizationPolicy::Off,
            ..auto
        },
        StenoOptions {
            vectorize: VectorizationPolicy::Off,
            fusion: false,
            ..auto
        },
        StenoOptions {
            rewrites: false,
            ..auto
        },
    ]
}

/// Compiles `q` under every option combination plus the rewrite-fed
/// feedback path, and runs the tape verifier over each result. Returns
/// the number of programs checked (a query whose shape the optimizer
/// rejects under every mode contributes zero).
fn check_all_modes(q: &QueryExpr, data: &DataContext, udfs: &UdfRegistry, label: &str) -> usize {
    let mut checked = 0usize;
    for opts in option_matrix() {
        if let Ok(c) = CompiledQuery::compile_tuned(q, SourceTypes::from(data), udfs, opts)
        {
            let report = steno_vm::check_program(c.program()).unwrap_or_else(|e| {
                panic!("false positive on `{label}` (opts {opts:?}): {e}")
            });
            assert!(report.cfg > 0, "checker discharged no CFG obligations");
            checked += 1;
        }
    }
    // The feedback-directed path (measured selectivities feeding the
    // rewrite pass) produces different QUIL — and so different tapes.
    let fb = CompileFeedback {
        sample_ctx: Some(data),
        loop_stats: None,
    };
    if let Ok(c) = CompiledQuery::compile_tuned_feedback(
        q,
        SourceTypes::from(data),
        udfs,
        StenoOptions::default(),
        fb,
    ) {
        steno_vm::check_program(c.program())
            .unwrap_or_else(|e| panic!("false positive on `{label}` (feedback path): {e}"));
        checked += 1;
    }
    checked
}

/// The text corpus from `rewrite_differential.rs`: parser-driven
/// queries covering filters, maps, pagination, ordering, grouping,
/// distinct, and guarded integer division.
const TEXT_CORPUS: &[&str] = &[
    "from x in ns where x % 2 == 0 select x * x",
    "(from x in xs select x * x).sum()",
    "xs.where(|x| x > -100.0).where(|x| x > 60.0).sum()",
    "xs.where(|x| x > 60.0).where(|x| x > -100.0).sum()",
    "xs.select(|x| x + 1.5).where(|x| x < 0.0).sum()",
    "xs.select(|x| x * 2.0).select(|x| x + 1.0).sum()",
    "xs.select(|x| x * 2.0).where(|x| x > 100.0).count()",
    "(from x in ns select x).skip(20).take(30).sum()",
    "ns.take(50).take(10).sum()",
    "ns.skip(5).skip(5).sum()",
    "ns.select(|x| x * 3).take(7).sum()",
    "xs.where(|x| x > 0.0).select(|x| x + 1.5).where(|x| x < 40.0).sum()",
    "ns.where(|x| x % 3 == 0).where(|x| x > 90).count()",
    "xs.min()",
    "xs.max()",
    "xs.average()",
    "xs.take_while(|x| x < 50.0).count()",
    "xs.skip_while(|x| x < 0.0).min()",
    "from x in xs where x > 0.0 orderby x descending select x + 1.0",
    "from x in ns group x * x by x % 7",
    "ns.select(|x| x % 9).distinct().order_by(|x| x)",
    "ns.where(|x| x != 0).select(|x| 60 / x).sum()",
    "xs.order_by(|x| x).take(3).sum()",
];

#[test]
fn text_corpus_has_zero_false_positives() {
    let data = ctx();
    let udfs = UdfRegistry::new();
    let mut checked = 0usize;
    for text in TEXT_CORPUS {
        let (q, _) = steno_syntax::parse_query(text)
            .unwrap_or_else(|e| panic!("corpus query failed to parse: `{text}`: {e}"));
        checked += check_all_modes(&q, &data, &udfs, text);
    }
    assert!(
        checked >= 3 * TEXT_CORPUS.len(),
        "corpus must actually compile under most modes, checked {checked}"
    );
}

/// Builder-based queries mirroring `vectorized_differential.rs` and
/// `fused_kernel_differential.rs`: the fused-kernel shapes (sum, sum of
/// squares, scaled sums, predicated sums on either comparison side),
/// the batch-tier i64 shapes (modulo filters, guarded division), and
/// the scalar-fallback shapes (order_by, distinct, pagination,
/// select_many, average, first, boolean lanes, rows, grouping).
fn builder_corpus() -> Vec<(QueryExpr, &'static str)> {
    let inner_count = Query::over(Expr::var("g")).count().build();
    let inner_sum = Query::over(Expr::var("g")).sum().build();
    vec![
        // Fused-kernel shapes (f64).
        (Query::source("xs").sum().build(), "sum(x):f64"),
        (
            Query::source("xs").select(x() * x(), "x").sum().build(),
            "sum(x*x):f64",
        ),
        (
            Query::source("xs")
                .select(x() * Expr::litf(2.5), "x")
                .sum()
                .build(),
            "sum(x*2.5):f64",
        ),
        (
            Query::source("xs")
                .where_(x().gt(Expr::litf(0.5)), "x")
                .select(x() * Expr::litf(2.0), "x")
                .sum()
                .build(),
            "filter(x>0.5)·sum(x*2):f64",
        ),
        (
            Query::source("xs")
                .where_(Expr::litf(0.5).lt(x()), "x")
                .select(x() * x(), "x")
                .sum()
                .build(),
            "filter(0.5<x)·sum(x*x):f64",
        ),
        (
            Query::source("xs")
                .where_(x().le(Expr::litf(-1.0)), "x")
                .sum()
                .build(),
            "filter(x<=-1)·sum(x):f64",
        ),
        (
            Query::source("xs")
                .where_(x().gt(Expr::litf(0.0)), "x")
                .select(x() + Expr::litf(1.5), "x")
                .sum()
                .build(),
            "filter·map·sum:f64",
        ),
        // Batch-tier i64 shapes, including guarded division (the
        // div-proof obligation) and superinstruction-heavy loops.
        (Query::source("ns").sum().build(), "sum(x):i64"),
        (
            Query::source("ns")
                .where_((x() % Expr::liti(3)).eq(Expr::liti(0)), "x")
                .select(x() * x(), "x")
                .sum()
                .build(),
            "filter(x%3==0)·sum(x*x):i64",
        ),
        (
            Query::source("ns")
                .select(x() / (x() - Expr::liti(2000)), "x")
                .sum()
                .build(),
            "sum(x/(x-2000)):i64",
        ),
        (
            Query::source("ns")
                .where_(x().ne(Expr::liti(0)), "x")
                .select(Expr::liti(60) / x(), "x")
                .sum()
                .build(),
            "filter(x!=0)·sum(60/x):i64",
        ),
        (Query::source("ns").min().build(), "min:i64"),
        (Query::source("xs").max().build(), "max:f64"),
        (Query::source("xs").count().build(), "count:f64"),
        // Scalar-fallback shapes.
        (Query::source("xs").order_by(x(), "x").build(), "order_by"),
        (Query::source("ns").distinct().build(), "distinct"),
        (Query::source("xs").take(3).sum().build(), "take·sum"),
        (Query::source("xs").skip(2).take(3).build(), "skip·take"),
        (
            Query::source("xs")
                .select_many(Query::source("ys").select(x() * Expr::var("y"), "y"), "x")
                .sum()
                .build(),
            "select_many·sum",
        ),
        (Query::source("xs").average().build(), "average"),
        (Query::source("xs").first().build(), "first"),
        (Query::source("bs").all_by(x(), "x").build(), "all_by:bool"),
        (
            Query::source("bs").any_by(x().not(), "x").build(),
            "any_by:bool",
        ),
        (
            Query::source("pts")
                .select(Expr::var("p").row_index(Expr::liti(1)), "p")
                .sum()
                .build(),
            "row_index·sum",
        ),
        (
            Query::source("ns")
                .group_by_result(
                    x() % Expr::liti(7),
                    "x",
                    GroupResult::keyed("k", "g", inner_count),
                )
                .build(),
            "group_by·count",
        ),
        (
            Query::source("ns")
                .group_by_result(
                    x() % Expr::liti(5),
                    "x",
                    GroupResult::keyed("k", "g", inner_sum),
                )
                .build(),
            "group_by·sum",
        ),
    ]
}

#[test]
fn builder_corpus_has_zero_false_positives() {
    let data = ctx();
    let udfs = UdfRegistry::new();
    let corpus = builder_corpus();
    let mut checked = 0usize;
    for (q, label) in &corpus {
        checked += check_all_modes(q, &data, &udfs, label);
    }
    assert!(
        checked >= 3 * corpus.len(),
        "builder corpus must compile under most modes, checked {checked}"
    );
}
