/root/repo/target/debug/deps/steno_vm-7f733a37385e8aa8.d: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

/root/repo/target/debug/deps/steno_vm-7f733a37385e8aa8: crates/steno-vm/src/lib.rs crates/steno-vm/src/batch.rs crates/steno-vm/src/compile.rs crates/steno-vm/src/fuse.rs crates/steno-vm/src/exec.rs crates/steno-vm/src/instr.rs crates/steno-vm/src/kernels.rs crates/steno-vm/src/prepared.rs crates/steno-vm/src/profile.rs crates/steno-vm/src/query.rs crates/steno-vm/src/sink.rs

crates/steno-vm/src/lib.rs:
crates/steno-vm/src/batch.rs:
crates/steno-vm/src/compile.rs:
crates/steno-vm/src/fuse.rs:
crates/steno-vm/src/exec.rs:
crates/steno-vm/src/instr.rs:
crates/steno-vm/src/kernels.rs:
crates/steno-vm/src/prepared.rs:
crates/steno-vm/src/profile.rs:
crates/steno-vm/src/query.rs:
crates/steno-vm/src/sink.rs:
