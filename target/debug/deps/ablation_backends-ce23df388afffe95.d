/root/repo/target/debug/deps/ablation_backends-ce23df388afffe95.d: crates/bench/benches/ablation_backends.rs Cargo.toml

/root/repo/target/debug/deps/libablation_backends-ce23df388afffe95.rmeta: crates/bench/benches/ablation_backends.rs Cargo.toml

crates/bench/benches/ablation_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
