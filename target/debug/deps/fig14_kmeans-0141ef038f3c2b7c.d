/root/repo/target/debug/deps/fig14_kmeans-0141ef038f3c2b7c.d: crates/bench/benches/fig14_kmeans.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_kmeans-0141ef038f3c2b7c.rmeta: crates/bench/benches/fig14_kmeans.rs Cargo.toml

crates/bench/benches/fig14_kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
