//! The imperative AST produced by the code generator.
//!
//! This plays the role of the .NET CodeDOM object model (§3.2): a tree of
//! loops, conditionals, declarations and assignments. Blocks live in an
//! arena ([`ImpProgram::blocks`]) so the generator can hold α/μ/ω
//! *insertion pointers* — block ids whose ends statements are appended
//! to — exactly as the paper's linked-list-with-pointers does (Fig. 5).

use steno_expr::{Expr, Ty, Value};

/// Identifies a block in the program's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockId(pub usize);

/// How a loop obtains its elements — the type-specialized iteration code
/// of §4.2 ("if the source is an array ... it is more efficient to use
/// indexed element access than an iterator").
#[derive(Clone, Debug, PartialEq)]
pub enum LoopHeader {
    /// Indexed iteration over a named source collection.
    Source {
        /// Source name in the data context.
        name: String,
        /// Element type.
        elem_ty: Ty,
    },
    /// `for i in 0..count { elem = start + i }`.
    Range {
        /// First integer.
        start: i64,
        /// Number of integers.
        count: usize,
    },
    /// `count` copies of a constant.
    Repeat {
        /// The repeated value.
        value: Value,
        /// Number of copies.
        count: usize,
    },
    /// Indexed iteration over a sequence-valued expression (a group, a
    /// captured sequence, a row's coordinates).
    SeqExpr {
        /// The sequence expression, evaluated once before the loop.
        expr: Expr,
        /// Element type.
        elem_ty: Ty,
    },
    /// Iteration over a materialized sink collection.
    Sink {
        /// The sink variable name.
        name: String,
        /// Element type the sink yields.
        elem_ty: Ty,
    },
}

/// What kind of intermediate collection a sink variable holds.
#[derive(Clone, Debug, PartialEq)]
pub enum SinkDecl {
    /// A key → bag multimap (`Lookup`, Fig. 7b). Iterating yields
    /// `(key, seq)` pairs.
    Group,
    /// A key → partial-aggregate table (§4.3). Iterating yields
    /// `(key, accumulator)` pairs.
    GroupAgg {
        /// Seed expression for a fresh key's accumulator.
        init: Expr,
        /// Accumulator type.
        acc_ty: Ty,
        /// Key type (drives sink specialization in the back end).
        key_ty: Ty,
    },
    /// An ordered buffer sorted at loop exit. Iterating yields elements.
    SortedVec {
        /// Sort direction.
        descending: bool,
    },
    /// A buffer keeping first occurrences only. Iterating yields elements.
    DistinctVec,
    /// A plain materialization buffer (`ToArray`).
    Vec,
}

/// One imperative statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `let name: ty = init;` — variables are single-assignment unless
    /// re-assigned with [`Stmt::Assign`].
    Decl {
        /// Variable name.
        name: String,
        /// Variable type.
        ty: Ty,
        /// Initializer.
        init: Expr,
    },
    /// `name = expr;`
    Assign {
        /// Target variable.
        name: String,
        /// New value.
        expr: Expr,
    },
    /// A loop binding `elem_var` per iteration, with its body in a block.
    For {
        /// How elements are produced.
        header: LoopHeader,
        /// The per-iteration element variable.
        elem_var: String,
        /// The loop body block.
        body: BlockId,
    },
    /// `if !(cond) { continue; }` — the predicate form of Fig. 6(b).
    IfNotContinue {
        /// The predicate that must hold for the element to survive.
        cond: Expr,
    },
    /// `if cond { break; }`.
    IfBreak {
        /// Loop-exit condition.
        cond: Expr,
    },
    /// A general conditional with inline branches.
    If {
        /// Condition.
        cond: Expr,
        /// Statements run when true.
        then: Vec<Stmt>,
        /// Statements run when false.
        els: Vec<Stmt>,
    },
    /// `continue;`
    Continue,
    /// Declare a sink variable.
    DeclSink {
        /// Sink variable name.
        name: String,
        /// What the sink holds.
        decl: SinkDecl,
    },
    /// Add `(key, value)` to a [`SinkDecl::Group`] sink
    /// (`sink = sink.put(key, elem)`, Fig. 7b).
    GroupPut {
        /// Sink name.
        sink: String,
        /// Key expression.
        key: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Fold `value` into the per-key accumulator of a
    /// [`SinkDecl::GroupAgg`] sink: `acc[key] = update(acc[key], elem)`.
    GroupAggUpdate {
        /// Sink name.
        sink: String,
        /// Key expression.
        key: Expr,
        /// Name binding the current accumulator inside `update`.
        acc_param: String,
        /// Name binding the element inside `update`.
        elem_param: String,
        /// The element expression bound to `elem_param`.
        value: Expr,
        /// The fold update expression.
        update: Expr,
    },
    /// Push a value (and, for sorted sinks, its key) into a buffer sink.
    SinkPush {
        /// Sink name.
        sink: String,
        /// Value expression.
        value: Expr,
        /// Sort key, for [`SinkDecl::SortedVec`] sinks.
        key: Option<Expr>,
    },
    /// Finalize a sink at loop exit (sort a [`SinkDecl::SortedVec`]).
    SinkSeal {
        /// Sink name.
        sink: String,
    },
    /// Append a value to the query output (`yield return`, Fig. 8c).
    ///
    /// The paper's generated iterator yields lazily; this reproduction
    /// materializes into the output buffer, i.e. the `ToArray` variant of
    /// footnote 3 is the default. DESIGN.md records the deviation.
    Yield {
        /// The yielded element.
        value: Expr,
    },
    /// Return a scalar (Fig. 8a).
    Return {
        /// The returned value.
        value: Expr,
    },
    /// Return the materialized sink collection (Fig. 8b).
    ReturnSink {
        /// Sink name.
        sink: String,
    },
    /// Splice of a sub-block: used to realize the α (pre-loop) and ω
    /// (post-loop) regions as append-only targets (Fig. 5).
    BlockRef(BlockId),
}

/// How the program terminates.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminal {
    /// The program returns the scalar produced by a `Return`.
    Scalar(Ty),
    /// The program returns the output buffer filled by `Yield`s.
    Sequence(Ty),
}

/// A generated imperative program.
#[derive(Clone, Debug)]
pub struct ImpProgram {
    /// Block arena; [`BlockId`] indexes into it.
    pub blocks: Vec<Vec<Stmt>>,
    /// The top-level block.
    pub root: BlockId,
    /// Result classification (drives output-buffer allocation).
    pub terminal: Terminal,
    /// Names of the context sources the program reads.
    pub sources: Vec<String>,
}

impl ImpProgram {
    /// The statements of a block.
    pub fn block(&self, id: BlockId) -> &[Stmt] {
        &self.blocks[id.0]
    }

    /// Resolves [`Stmt::BlockRef`] splices, producing a plain statement
    /// tree (loop bodies remain block references into `self`).
    pub fn flatten(&self, id: BlockId) -> Vec<Stmt> {
        let mut out = Vec::new();
        for stmt in self.block(id) {
            match stmt {
                Stmt::BlockRef(b) => out.extend(self.flatten(*b)),
                other => out.push(other.clone()),
            }
        }
        out
    }

    /// Counts statements reachable from the root (loop bodies included).
    pub fn stmt_count(&self) -> usize {
        fn walk(p: &ImpProgram, id: BlockId) -> usize {
            let mut n = 0;
            for stmt in p.block(id) {
                match stmt {
                    Stmt::BlockRef(b) => n += walk(p, *b),
                    Stmt::For { body, .. } => n += 1 + walk(p, *body),
                    Stmt::If { then, els, .. } => n += 1 + then.len() + els.len(),
                    _ => n += 1,
                }
            }
            n
        }
        walk(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_resolves_block_refs() {
        let mut blocks = vec![Vec::new(); 3];
        blocks[1] = vec![Stmt::Decl {
            name: "agg_0".into(),
            ty: Ty::F64,
            init: Expr::litf(0.0),
        }];
        blocks[0] = vec![
            Stmt::BlockRef(BlockId(1)),
            Stmt::For {
                header: LoopHeader::Range { start: 0, count: 3 },
                elem_var: "elem_0".into(),
                body: BlockId(2),
            },
        ];
        blocks[2] = vec![Stmt::Assign {
            name: "agg_0".into(),
            expr: Expr::var("agg_0") + Expr::var("elem_0").cast(Ty::F64),
        }];
        let p = ImpProgram {
            blocks,
            root: BlockId(0),
            terminal: Terminal::Scalar(Ty::F64),
            sources: vec![],
        };
        let flat = p.flatten(p.root);
        assert_eq!(flat.len(), 2);
        assert!(matches!(flat[0], Stmt::Decl { .. }));
        assert!(matches!(flat[1], Stmt::For { .. }));
        assert_eq!(p.stmt_count(), 3);
    }
}
