/root/repo/target/debug/deps/steno_query-91cb4e0983107d35.d: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/debug/deps/libsteno_query-91cb4e0983107d35.rlib: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/debug/deps/libsteno_query-91cb4e0983107d35.rmeta: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

crates/steno-query/src/lib.rs:
crates/steno-query/src/ast.rs:
crates/steno-query/src/builder.rs:
crates/steno-query/src/typing.rs:
