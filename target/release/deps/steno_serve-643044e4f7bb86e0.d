/root/repo/target/release/deps/steno_serve-643044e4f7bb86e0.d: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

/root/repo/target/release/deps/libsteno_serve-643044e4f7bb86e0.rlib: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

/root/repo/target/release/deps/libsteno_serve-643044e4f7bb86e0.rmeta: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs

crates/steno-serve/src/lib.rs:
crates/steno-serve/src/breaker.rs:
crates/steno-serve/src/loadgen.rs:
crates/steno-serve/src/report.rs:
crates/steno-serve/src/service.rs:
