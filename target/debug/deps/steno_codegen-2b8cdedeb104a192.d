/root/repo/target/debug/deps/steno_codegen-2b8cdedeb104a192.d: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

/root/repo/target/debug/deps/steno_codegen-2b8cdedeb104a192: crates/steno-codegen/src/lib.rs crates/steno-codegen/src/generate.rs crates/steno-codegen/src/imp.rs crates/steno-codegen/src/printer.rs

crates/steno-codegen/src/lib.rs:
crates/steno-codegen/src/generate.rs:
crates/steno-codegen/src/imp.rs:
crates/steno-codegen/src/printer.rs:
