//! Binding a program to concrete data: prepared sources and UDFs.
//!
//! This is the VM counterpart of §3.3's "resolve any object references
//! that were captured in the query": source names and UDF names recorded
//! at compile time are resolved against the runtime context before
//! execution.

use std::sync::Arc;

use steno_expr::{Column, DataContext, UdfRegistry, Value};

use crate::exec::VmError;
use crate::instr::Program;

/// A source resolved to type-specialized storage.
#[derive(Clone, Debug)]
pub enum PreparedSource {
    /// An f64 column.
    F64(Arc<Vec<f64>>),
    /// An i64 column.
    I64(Arc<Vec<i64>>),
    /// A bool column.
    Bool(Arc<Vec<bool>>),
    /// Boxed values (rows are pre-wrapped once so the loop does not
    /// allocate per access).
    Values(Arc<Vec<Value>>),
}

impl PreparedSource {
    /// The number of elements.
    pub fn len(&self) -> usize {
        match self {
            PreparedSource::F64(v) => v.len(),
            PreparedSource::I64(v) => v.len(),
            PreparedSource::Bool(v) => v.len(),
            PreparedSource::Values(v) => v.len(),
        }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<&Column> for PreparedSource {
    fn from(col: &Column) -> PreparedSource {
        match col {
            Column::F64(v) => PreparedSource::F64(Arc::clone(v)),
            Column::I64(v) => PreparedSource::I64(Arc::clone(v)),
            Column::Bool(v) => PreparedSource::Bool(Arc::clone(v)),
            Column::Rows { .. } | Column::Values(_) => {
                PreparedSource::Values(Arc::new(col.to_values()))
            }
        }
    }
}

/// The runtime bindings of a program: sources and UDF implementations in
/// program order.
pub struct Bindings {
    /// Sources in [`crate::instr::SrcId`] order.
    pub sources: Vec<PreparedSource>,
    /// UDFs in [`crate::instr::UdfId`] order.
    pub udfs: Vec<steno_expr::udf::UdfFn>,
}

impl Bindings {
    /// Resolves a program's source and UDF names against a context.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::MissingBinding`] for unknown names.
    pub fn resolve(
        program: &Program,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<Bindings, VmError> {
        let mut sources = Vec::with_capacity(program.source_names.len());
        for name in &program.source_names {
            let col = ctx
                .source(name)
                .ok_or_else(|| VmError::MissingBinding(format!("source `{name}`")))?;
            sources.push(PreparedSource::from(col));
        }
        let mut funcs = Vec::with_capacity(program.udf_names.len());
        for name in &program.udf_names {
            let udf = udfs
                .get(name)
                .ok_or_else(|| VmError::MissingBinding(format!("udf `{name}`")))?;
            funcs.push(Arc::clone(&udf.imp));
        }
        Ok(Bindings {
            sources,
            udfs: funcs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Ty;

    #[test]
    fn rows_prepare_to_boxed_values_once() {
        let col = Column::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2);
        let p = PreparedSource::from(&col);
        match p {
            PreparedSource::Values(v) => {
                assert_eq!(v.len(), 2);
                assert_eq!(v[0], Value::row(vec![1.0, 2.0]));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_source_reported() {
        let program = Program {
            instrs: vec![],
            n_fregs: 0,
            n_iregs: 0,
            n_vregs: 0,
            n_sinks: 0,
            n_fused: 0,
            n_batch: 0,
            batch_fallbacks: vec![],
            n_guards_dropped: 0,
            loop_plans: vec![],
            fused_kernels: vec![],
            n_slots_reused: 0,
            n_hoisted: 0,
            n_superinstrs: 0,
            source_names: vec!["zzz".into()],
            udf_names: vec![],
            result_ty: Ty::F64,
            shadow: None,
        };
        let err = Bindings::resolve(&program, &DataContext::new(), &UdfRegistry::new());
        assert!(matches!(err, Err(VmError::MissingBinding(_))));
    }
}
