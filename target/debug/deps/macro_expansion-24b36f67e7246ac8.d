/root/repo/target/debug/deps/macro_expansion-24b36f67e7246ac8.d: tests/macro_expansion.rs

/root/repo/target/debug/deps/macro_expansion-24b36f67e7246ac8: tests/macro_expansion.rs

tests/macro_expansion.rs:
