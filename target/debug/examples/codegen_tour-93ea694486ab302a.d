/root/repo/target/debug/examples/codegen_tour-93ea694486ab302a.d: examples/codegen_tour.rs Cargo.toml

/root/repo/target/debug/examples/libcodegen_tour-93ea694486ab302a.rmeta: examples/codegen_tour.rs Cargo.toml

examples/codegen_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
