/root/repo/target/debug/deps/fig01-33acc427aa5207f5.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-33acc427aa5207f5: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
