/root/repo/target/release/deps/steno-813f93a288d9cd37.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/release/deps/libsteno-813f93a288d9cd37.rlib: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

/root/repo/target/release/deps/libsteno-813f93a288d9cd37.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
