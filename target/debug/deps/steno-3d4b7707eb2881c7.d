/root/repo/target/debug/deps/steno-3d4b7707eb2881c7.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs Cargo.toml

/root/repo/target/debug/deps/libsteno-3d4b7707eb2881c7.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/rt.rs Cargo.toml

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
