/root/repo/target/debug/deps/steno_repro-d52055fada3e2cdc.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-d52055fada3e2cdc.rlib: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-d52055fada3e2cdc.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
