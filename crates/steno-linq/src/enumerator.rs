//! The `IEnumerator<T>` model: virtual `move_next`/`current`.

use std::rc::Rc;

/// The .NET `IEnumerator<T>` interface (§2 of the paper, simplified):
///
/// ```text
/// interface IEnumerator<T> {
///     T Current { get; }
///     bool MoveNext();
/// }
/// ```
///
/// `move_next` advances to the next element, returning `false` when no
/// elements remain; `current` returns the element at the current position.
/// Implementations are state machines, so `move_next` carries the
/// coroutine-simulation logic the paper identifies as per-element overhead.
///
/// # Panics
///
/// As in .NET, calling `current` before the first `move_next` or after
/// `move_next` has returned `false` is a usage error; implementations panic
/// (the analogue of `InvalidOperationException`).
pub trait Enumerator {
    /// The element type.
    type Item;

    /// Advances to the next element; `false` when exhausted.
    fn move_next(&mut self) -> bool;

    /// The element at the current position.
    fn current(&self) -> Self::Item;
}

/// A boxed enumerator: every call through it is an indirect (vtable) call,
/// faithfully reproducing .NET interface dispatch.
pub type BoxEnum<T> = Box<dyn Enumerator<Item = T>>;

/// A unary function object (`Func<A, R>` in .NET): invoking it is an
/// indirect call that the compiler cannot inline across the operator
/// boundary.
pub type Func<A, R> = Rc<dyn Fn(A) -> R>;

/// A binary function object (`Func<A, B, R>`), used by `Aggregate`, `Join`
/// and result selectors.
pub type Func2<A, B, R> = Rc<dyn Fn(A, B) -> R>;

/// Drains an enumerator into a vector (the `foreach` desugaring of §2).
pub fn drain<T>(mut e: BoxEnum<T>) -> Vec<T> {
    let mut out = Vec::new();
    while e.move_next() {
        out.push(e.current());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        n: i64,
        limit: i64,
    }

    impl Enumerator for Counter {
        type Item = i64;
        fn move_next(&mut self) -> bool {
            if self.n < self.limit {
                self.n += 1;
                true
            } else {
                false
            }
        }
        fn current(&self) -> i64 {
            assert!(self.n > 0, "current() before move_next()");
            self.n
        }
    }

    #[test]
    fn drain_runs_the_state_machine() {
        let e: BoxEnum<i64> = Box::new(Counter { n: 0, limit: 3 });
        assert_eq!(drain(e), vec![1, 2, 3]);
    }

    #[test]
    fn exhausted_enumerator_stays_exhausted() {
        let mut e = Counter { n: 0, limit: 1 };
        assert!(e.move_next());
        assert!(!e.move_next());
        assert!(!e.move_next());
    }
}
