/root/repo/target/debug/deps/steno-fe5306b1e8bc62e7.d: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs Cargo.toml

/root/repo/target/debug/deps/libsteno-fe5306b1e8bc62e7.rmeta: crates/steno/src/lib.rs crates/steno/src/engine.rs crates/steno/src/explain.rs crates/steno/src/rt.rs Cargo.toml

crates/steno/src/lib.rs:
crates/steno/src/engine.rs:
crates/steno/src/explain.rs:
crates/steno/src/rt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
