/root/repo/target/release/deps/steno_syntax-11b038b1cbc3f50a.d: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

/root/repo/target/release/deps/libsteno_syntax-11b038b1cbc3f50a.rlib: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

/root/repo/target/release/deps/libsteno_syntax-11b038b1cbc3f50a.rmeta: crates/steno-syntax/src/lib.rs crates/steno-syntax/src/lexer.rs crates/steno-syntax/src/parser.rs

crates/steno-syntax/src/lib.rs:
crates/steno-syntax/src/lexer.rs:
crates/steno-syntax/src/parser.rs:
