/root/repo/target/debug/deps/fig14-2071e43d2420866e.d: crates/bench/src/bin/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-2071e43d2420866e.rmeta: crates/bench/src/bin/fig14.rs Cargo.toml

crates/bench/src/bin/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
