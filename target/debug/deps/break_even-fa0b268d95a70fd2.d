/root/repo/target/debug/deps/break_even-fa0b268d95a70fd2.d: crates/bench/src/bin/break_even.rs

/root/repo/target/debug/deps/break_even-fa0b268d95a70fd2: crates/bench/src/bin/break_even.rs

crates/bench/src/bin/break_even.rs:
