//! The multi-tenant query service: admission, dispatch, retries.
//!
//! One [`QueryService`] owns a worker pool and a [`Steno`] engine.
//! Callers [`submit`](QueryService::submit) a [`QueryRequest`] and get a
//! [`QueryTicket`] back immediately; the answer (or a structured
//! [`ServeError`]) arrives through the ticket. Admission is decided at
//! submit time against bounded per-tenant queues, so overload turns into
//! explicit [`ServeError::Rejected`] shedding instead of unbounded
//! memory growth — the queue either has room or the caller learns *now*
//! that it must back off.
//!
//! The execution pipeline per admitted job:
//!
//! 1. re-check deadline and cancellation at dequeue (a job that expired
//!    in the queue costs nothing),
//! 2. negative-cache lookup — a query this tenant already failed
//!    deterministically fails again without recompiling,
//! 3. compile through the shared [`Steno`] cache, at the tier chosen by
//!    the [`CompileBreaker`],
//! 4. execute under an [`Interrupt`] carrying the deadline and the
//!    caller's cancel token, inside `catch_unwind`,
//! 5. on a *transient* failure (injected fault, contained panic), retry
//!    with deterministically jittered, cancellation-aware backoff up to
//!    the [`RetryPolicy`] budget; *deterministic* failures fail fast.
//!
//! Unsupported query shapes take the facade's iterator fallback, which
//! polls the same deadline/cancel interrupt per stride of elements, so
//! even unoptimized queries stop within their latency bound.
//!
//! When the engine is adaptive ([`Steno::with_adaptive`]), compiled
//! plans run through its feedback loop — profiled sampling, drift
//! detection, bounded re-optimization — but only while the
//! [`CompileBreaker`] is closed: a degraded service must not spend
//! compile budget on speculative re-optimizations.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use steno::{Steno, StenoError};
use steno_cluster::sync::{Condvar, Mutex};
use steno_cluster::{CancelToken, FailureClass, FaultKind, FaultPlan, RetryPolicy};
use steno_expr::{DataContext, UdfRegistry, Value};
use steno_obs::{Anomaly, Note, SpanId, TraceMeta, Tracer};
use steno_query::typing::SourceTypes;
use steno_query::QueryExpr;
use steno_vm::{CancelProbe, CompiledQuery, Interrupt, StenoOptions, VmError};

use crate::breaker::{BreakerConfig, CompileBreaker};

/// Service-level tuning. The defaults suit tests and examples; a real
/// deployment sizes `workers` to cores and the queue bounds to its
/// latency SLO (queue depth × mean service time ≈ worst queue wait).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing admitted queries.
    pub workers: usize,
    /// Per-tenant bound on *queued* (admitted, not yet running) jobs.
    /// Submissions beyond it are shed with [`ServeError::Rejected`].
    pub queue_depth: usize,
    /// Per-tenant bound on concurrently *running* jobs — one flooding
    /// tenant cannot occupy every worker.
    pub max_in_flight: usize,
    /// Deadline applied to requests that don't carry their own.
    pub default_deadline: Duration,
    /// How long past the deadline [`QueryTicket::wait`] keeps listening
    /// before giving up locally (covers reply propagation).
    pub wait_grace: Duration,
    /// The back-off hint returned with [`ServeError::Rejected`].
    pub shed_retry_after: Duration,
    /// Retry budget and backoff shape for transient failures.
    pub retry: RetryPolicy,
    /// Deterministic fault injection, keyed by (sequence number,
    /// attempt) — the service-layer analogue of the cluster's vertex
    /// fault plan. Empty in production.
    pub faults: FaultPlan,
    /// Compile-pressure breaker tuning.
    pub breaker: BreakerConfig,
    /// Entries kept in the deterministic-failure negative cache.
    pub negative_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            queue_depth: 32,
            max_in_flight: 2,
            default_deadline: Duration::from_secs(1),
            wait_grace: Duration::from_millis(500),
            shed_retry_after: Duration::from_millis(25),
            retry: RetryPolicy::default(),
            faults: FaultPlan::none(),
            breaker: BreakerConfig::default(),
            negative_cache_capacity: 128,
        }
    }
}

/// A query submission: who is asking, what to run, against what data,
/// and how long they are willing to wait.
#[derive(Clone)]
pub struct QueryRequest {
    /// Tenant identity, the unit of admission-control isolation.
    pub tenant: String,
    /// The query to execute.
    pub query: QueryExpr,
    /// The tenant's data (`Arc`-backed columns: cloning is cheap).
    pub ctx: DataContext,
    /// UDFs referenced by the query.
    pub udfs: UdfRegistry,
    /// Latency budget; `None` takes [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A request with the default deadline.
    pub fn new(
        tenant: impl Into<String>,
        query: QueryExpr,
        ctx: DataContext,
        udfs: UdfRegistry,
    ) -> QueryRequest {
        QueryRequest {
            tenant: tenant.into(),
            query,
            ctx,
            udfs,
            deadline: None,
        }
    }

    /// Sets an explicit latency budget.
    #[must_use = "with_deadline returns the configured request"]
    pub fn with_deadline(mut self, budget: Duration) -> QueryRequest {
        self.deadline = Some(budget);
        self
    }
}

/// Why the service did not return a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Shed at admission: the tenant's queue is full. Back off for at
    /// least `retry_after` before resubmitting.
    Rejected {
        /// Suggested minimum back-off.
        retry_after: Duration,
    },
    /// The deadline passed before a result was produced.
    DeadlineExceeded,
    /// The caller cancelled the ticket.
    Cancelled,
    /// The query failed. `class` says whether resubmitting can help:
    /// [`FailureClass::Transient`] failures already exhausted the retry
    /// budget; [`FailureClass::Deterministic`] failures will fail
    /// identically every time.
    QueryFailed {
        /// Human-readable cause.
        message: String,
        /// Retryability classification.
        class: FailureClass,
    },
    /// The service is shutting down and no longer accepts or runs work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected { retry_after } => {
                write!(f, "rejected: tenant queue full, retry after {retry_after:?}")
            }
            ServeError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            ServeError::Cancelled => write!(f, "query cancelled"),
            ServeError::QueryFailed { message, class } => {
                write!(f, "query failed ({class:?}): {message}")
            }
            ServeError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The caller's handle to an admitted query.
#[derive(Debug)]
pub struct QueryTicket {
    seq: u64,
    deadline: Instant,
    grace: Duration,
    cancel: CancelToken,
    rx: mpsc::Receiver<Result<Value, ServeError>>,
}

impl QueryTicket {
    /// The service-assigned sequence number (also the retry-jitter and
    /// fault-injection key for this job).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The absolute deadline this job runs under.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }

    /// Requests cancellation. The running query aborts at its next
    /// interrupt poll; a queued query aborts at dequeue.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Blocks until the result arrives. Bounded: if nothing arrives by
    /// deadline + grace, the job is cancelled and
    /// [`ServeError::DeadlineExceeded`] returned locally.
    pub fn wait(self) -> Result<Value, ServeError> {
        let hard = self.deadline + self.grace;
        loop {
            let now = Instant::now();
            if now >= hard {
                self.cancel.cancel();
                return Err(ServeError::DeadlineExceeded);
            }
            let step = (hard - now).min(Duration::from_millis(25));
            match self.rx.recv_timeout(step) {
                Ok(result) => return result,
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(ServeError::ShuttingDown)
                }
            }
        }
    }
}

/// One admitted unit of work.
struct Job {
    seq: u64,
    tenant: String,
    query: QueryExpr,
    ctx: DataContext,
    udfs: UdfRegistry,
    deadline: Instant,
    submitted: Instant,
    cancel: CancelToken,
    reply: mpsc::SyncSender<Result<Value, ServeError>>,
}

#[derive(Default)]
struct TenantState {
    queue: VecDeque<Job>,
    in_flight: usize,
}

/// Shared dispatch state. Invariant: a tenant name is in `rr` exactly
/// once iff its queue is non-empty.
#[derive(Default)]
struct Dispatch {
    tenants: HashMap<String, TenantState>,
    rr: VecDeque<String>,
    shutdown: bool,
}

impl Dispatch {
    /// Pops the next runnable job round-robin across tenants, skipping
    /// tenants at their in-flight quota.
    fn take_next(&mut self, max_in_flight: usize) -> Option<Job> {
        for _ in 0..self.rr.len() {
            let tenant = self.rr.pop_front()?;
            let state = self.tenants.get_mut(&tenant)?;
            if state.in_flight >= max_in_flight {
                self.rr.push_back(tenant);
                continue;
            }
            let job = state.queue.pop_front()?;
            state.in_flight += 1;
            if !state.queue.is_empty() {
                self.rr.push_back(tenant);
            }
            return Some(job);
        }
        None
    }
}

/// Bounded FIFO of `(tenant, query) → message` for failures that are
/// deterministic at compile time: re-submissions fail fast instead of
/// re-running the whole compile pipeline to the same rejection.
#[derive(Default)]
struct NegativeCache {
    cap: usize,
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

impl NegativeCache {
    fn get(&self, key: &str) -> Option<String> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: String, message: String) {
        if self.cap == 0 || self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.cap {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.order.push_back(key.clone());
        self.map.insert(key, message);
    }
}

struct Shared {
    engine: Steno,
    cfg: ServeConfig,
    dispatch: Mutex<Dispatch>,
    work_ready: Condvar,
    breaker: CompileBreaker,
    negcache: Mutex<NegativeCache>,
    seq: AtomicU64,
}

/// The service front end. Dropping it shuts down and joins the workers.
pub struct QueryService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts the worker pool over a configured engine. Metrics flow
    /// into the engine's collector under `serve.*` names.
    pub fn start(engine: Steno, cfg: ServeConfig) -> QueryService {
        let shared = Arc::new(Shared {
            negcache: Mutex::new(NegativeCache {
                cap: cfg.negative_cache_capacity,
                ..NegativeCache::default()
            }),
            breaker: CompileBreaker::new(cfg.breaker.clone()),
            cfg,
            engine,
            dispatch: Mutex::new(Dispatch::default()),
            work_ready: Condvar::new(),
            seq: AtomicU64::new(0),
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        QueryService { shared, workers }
    }

    /// The engine (shared plan cache, options, collector).
    pub fn engine(&self) -> &Steno {
        &self.shared.engine
    }

    /// The compile breaker, for observability.
    pub fn breaker(&self) -> &CompileBreaker {
        &self.shared.breaker
    }

    /// Admits or sheds a request. On admission the job is queued behind
    /// the tenant's earlier jobs and the ticket returned immediately.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] when the tenant's queue is full,
    /// [`ServeError::ShuttingDown`] after shutdown.
    pub fn submit(&self, req: QueryRequest) -> Result<QueryTicket, ServeError> {
        let shared = &self.shared;
        let collector = shared.engine.collector().clone();
        collector.add("serve.submitted", 1);
        collector.add_labeled("serve.tenant.submitted", &req.tenant, 1);
        let now = Instant::now();
        let deadline = now + req.deadline.unwrap_or(shared.cfg.default_deadline);
        let seq = shared.seq.fetch_add(1, Ordering::Relaxed);
        let cancel = CancelToken::new();
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            seq,
            tenant: req.tenant.clone(),
            query: req.query,
            ctx: req.ctx,
            udfs: req.udfs,
            deadline,
            submitted: now,
            cancel: cancel.clone(),
            reply: tx,
        };

        let mut d = shared.dispatch.lock();
        if d.shutdown {
            collector.add("serve.shed", 1);
            collector.add_labeled("serve.tenant.shed", &req.tenant, 1);
            return Err(ServeError::ShuttingDown);
        }
        let state = d.tenants.entry(req.tenant.clone()).or_default();
        if state.queue.len() >= shared.cfg.queue_depth {
            collector.add("serve.shed", 1);
            collector.add_labeled("serve.tenant.shed", &req.tenant, 1);
            return Err(ServeError::Rejected {
                retry_after: shared.cfg.shed_retry_after,
            });
        }
        let was_empty = state.queue.is_empty();
        state.queue.push_back(job);
        collector.observe_ns("serve.queue_depth", state.queue.len() as u64);
        if was_empty {
            d.rr.push_back(req.tenant);
        }
        drop(d);
        shared.work_ready.notify_all();
        collector.add("serve.admitted", 1);
        Ok(QueryTicket {
            seq,
            deadline,
            grace: shared.cfg.wait_grace,
            cancel,
            rx,
        })
    }

    /// Submit and wait: the one-call form.
    ///
    /// # Errors
    ///
    /// Any [`ServeError`].
    pub fn execute_blocking(&self, req: QueryRequest) -> Result<Value, ServeError> {
        self.submit(req)?.wait()
    }

    /// Stops accepting work, fails every queued job with
    /// [`ServeError::ShuttingDown`], and wakes the workers so they can
    /// exit once in-flight jobs finish. Idempotent; also run by `Drop`.
    pub fn shutdown(&self) {
        let mut d = self.shared.dispatch.lock();
        d.shutdown = true;
        let drained: Vec<Job> = d
            .tenants
            .values_mut()
            .flat_map(|t| t.queue.drain(..))
            .collect();
        d.rr.clear();
        drop(d);
        for job in drained {
            let _ = job.reply.send(Err(ServeError::ShuttingDown));
        }
        self.shared.work_ready.notify_all();
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut d = shared.dispatch.lock();
            loop {
                if let Some(job) = d.take_next(shared.cfg.max_in_flight.max(1)) {
                    break job;
                }
                if d.shutdown {
                    return;
                }
                // Timed wait: quota-blocked tenants become runnable when
                // a job finishes, and notify_all covers the rest; the
                // timeout is a belt-and-braces bound, not the mechanism.
                d = shared
                    .work_ready
                    .wait_timeout(d, Duration::from_millis(10));
            }
        };
        let tenant = job.tenant.clone();
        process(shared, job);
        let mut d = shared.dispatch.lock();
        if let Some(state) = d.tenants.get_mut(&tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
        drop(d);
        // A tenant parked at its in-flight quota may now be runnable.
        shared.work_ready.notify_all();
    }
}

/// Runs one job end to end and replies on its channel.
///
/// When the engine carries a flight recorder, a per-query tracer is
/// opened with its clock anchored at *submission* time, so the queue
/// wait (which happened before any worker touched the job) lands at
/// offset zero of the trace. The `serve.request` root span is reserved
/// up front — children link to it — and recorded retroactively once the
/// outcome is known.
fn process(shared: &Shared, job: Job) {
    let collector = shared.engine.collector().clone();
    let tracer = shared
        .engine
        .flight_recorder()
        .map(|r| r.begin_at(job.submitted))
        .unwrap_or_else(Tracer::disabled);
    let root = tracer.reserve();

    let wait_ns = u64::try_from(job.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
    collector.observe_ns("serve.queue_wait_ns", wait_ns);
    collector.observe_ns_labeled("serve.tenant.queue_wait_ns", &job.tenant, wait_ns);
    if tracer.enabled() {
        // Admission happened inside `submit`, effectively instantaneous
        // at the trace origin; everything since is queue wait.
        tracer.record("serve.admit", root, 0, 0, vec![("seq", Note::U64(job.seq))]);
        tracer.record(
            "serve.queue",
            root,
            0,
            tracer.now_ns(),
            vec![("wait_ns", Note::U64(wait_ns))],
        );
    }

    let exec_start = Instant::now();
    let mut used_options = None;
    let result = {
        let mut dspan = tracer.span("serve.dispatch", root);
        let r = run_job(shared, &job, &tracer, dspan.id(), &mut used_options);
        if let Err(e) = &r {
            dspan.note("error", Note::Text(e.to_string()));
        }
        r
    };
    // Execution time (dequeue → outcome) separate from end-to-end
    // latency: under load the two diverge by exactly the queue wait,
    // and conflating them hides whether the service is slow or full.
    let exec_ns = u64::try_from(exec_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    collector.observe_ns("serve.exec_ns", exec_ns);

    let outcome = match &result {
        Ok(_) => {
            collector.add("serve.completed", 1);
            collector.add_labeled("serve.tenant.completed", &job.tenant, 1);
            "completed"
        }
        Err(ServeError::DeadlineExceeded) => {
            collector.add("serve.deadline_exceeded", 1);
            collector.add_labeled("serve.tenant.deadline_exceeded", &job.tenant, 1);
            "deadline-exceeded"
        }
        Err(ServeError::Cancelled) => {
            collector.add("serve.cancelled", 1);
            collector.add_labeled("serve.tenant.cancelled", &job.tenant, 1);
            "cancelled"
        }
        Err(_) => {
            collector.add("serve.failed", 1);
            collector.add_labeled("serve.tenant.failed", &job.tenant, 1);
            "failed"
        }
    };
    let latency = u64::try_from(job.submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
    collector.observe_ns("serve.latency_ns", latency);
    collector.observe_ns_labeled("serve.tenant.latency_ns", &job.tenant, latency);

    if tracer.enabled() {
        finish_trace(shared, &job, &tracer, root, &result, outcome, used_options);
    }
    // The caller may have stopped listening; that's their prerogative.
    let _ = job.reply.send(result);
}

/// Classifies the outcome as a flight-recorder anomaly, attaches the
/// query's EXPLAIN JSON when the trace is headed for a dump, records
/// the retroactive `serve.request` root span, and hands the finished
/// trace to the recorder.
fn finish_trace(
    shared: &Shared,
    job: &Job,
    tracer: &Tracer,
    root: Option<SpanId>,
    result: &Result<Value, ServeError>,
    outcome: &'static str,
    options: Option<StenoOptions>,
) {
    let Some(recorder) = shared.engine.flight_recorder() else {
        return;
    };
    let (anomaly, detail) = match result {
        // Cancellation is the caller's choice, not a service anomaly.
        Ok(_) | Err(ServeError::Cancelled) => (None, None),
        Err(ServeError::DeadlineExceeded) => (Some(Anomaly::DeadlineExceeded), None),
        Err(ServeError::QueryFailed { message, .. }) => {
            let kind = if message.contains("plan verification failed")
                || message.contains("tape verification failed")
            {
                Anomaly::VerifierReject
            } else {
                Anomaly::Trap
            };
            (Some(kind), Some(message.clone()))
        }
        Err(_) => (None, None),
    };
    // EXPLAIN is attached only when this trace will dump: an anomaly is
    // already known, or the wall time crossed the slow-query threshold.
    // (A re-opt-only anomaly is derived inside the recorder; its dump
    // goes without EXPLAIN rather than paying an explain call — albeit
    // a cache hit — on every clean query.)
    let slow = recorder
        .config()
        .slow_query
        .is_some_and(|t| u128::from(tracer.now_ns()) >= t.as_nanos());
    let explain_json = (anomaly.is_some() || slow)
        .then(|| {
            let opts = options.unwrap_or_else(|| *shared.engine.options());
            shared
                .engine
                .explain_with_options(&job.query, SourceTypes::from(&job.ctx), &job.udfs, opts)
                .ok()
                .map(|e| e.to_json())
        })
        .flatten();
    if let Some(id) = root {
        tracer.record_reserved(
            id,
            "serve.request",
            None,
            0,
            tracer.now_ns(),
            vec![
                ("tenant", Note::Text(job.tenant.clone())),
                ("seq", Note::U64(job.seq)),
                ("outcome", Note::Str(outcome)),
            ],
        );
    }
    recorder.finish(
        tracer,
        TraceMeta {
            query: job.query.to_string(),
            tenant: Some(job.tenant.clone()),
            anomaly,
            detail,
            explain_json,
        },
    );
}

/// Compile (through the breaker tier) and execute (with retries).
/// Writes the plan options actually used into `used_options` so the
/// caller can attach a faithful EXPLAIN to the flight-recorder trace.
fn run_job(
    shared: &Shared,
    job: &Job,
    tracer: &Tracer,
    parent: Option<SpanId>,
    used_options: &mut Option<StenoOptions>,
) -> Result<Value, ServeError> {
    let collector = shared.engine.collector().clone();
    if job.cancel.is_cancelled() {
        return Err(ServeError::Cancelled);
    }
    if Instant::now() >= job.deadline {
        return Err(ServeError::DeadlineExceeded);
    }

    let neg_key = format!("{}|{}", job.tenant, job.query);
    if let Some(message) = shared.negcache.lock().get(&neg_key) {
        collector.add("serve.negcache_hits", 1);
        return Err(ServeError::QueryFailed {
            message,
            class: FailureClass::Deterministic,
        });
    }

    let (options, degraded) = shared.breaker.plan_options(shared.engine.options());
    *used_options = Some(options);
    if degraded {
        collector.add("serve.degraded_compiles", 1);
    }
    let compile_start = Instant::now();
    let compiled = shared.engine.compile_with_options_traced(
        &job.query,
        SourceTypes::from(&job.ctx),
        &job.udfs,
        options,
        tracer,
        parent,
    );
    let compile_took = compile_start.elapsed();

    match compiled {
        Ok(plan) => {
            shared.breaker.record_compile(compile_took, true);
            let exec = PlanExec {
                compiled: &plan,
                opts: options,
                // Adaptive re-optimization costs a compile; a service
                // already shedding compile load (breaker open, degraded
                // tier) must not add speculative ones.
                allow_reopt: !degraded,
            };
            execute_with_retries(shared, job, Some(&exec), tracer, parent)
        }
        Err(e @ (StenoError::Verify(_) | StenoError::TapeCheck(_))) => {
            // An independent verifier rejected the compiled query —
            // the plan verifier caught an optimizer bug, or the tape
            // verifier caught a backend miscompile. Either way it is
            // deterministic for this query: remember it and count it
            // against the breaker.
            shared.breaker.record_verifier_failure();
            let message = e.to_string();
            shared.negcache.lock().insert(neg_key, message.clone());
            Err(ServeError::QueryFailed {
                message,
                class: FailureClass::Deterministic,
            })
        }
        Err(StenoError::Optimize(_)) => {
            // Either an unsupported shape (the facade will run its
            // iterator fallback) or a genuine compile failure (the
            // facade will re-surface it, and we negative-cache below).
            collector.add("serve.fallback_exec", 1);
            execute_with_retries(shared, job, None, tracer, parent)
        }
        Err(e) => Err(ServeError::QueryFailed {
            message: e.to_string(),
            class: FailureClass::Deterministic,
        }),
    }
}

/// How to run a successfully compiled plan: the plan itself, the
/// options it was compiled under (the engine's adaptive statistics key
/// on them), and whether drift-triggered re-optimization may spend a
/// compile right now.
struct PlanExec<'a> {
    compiled: &'a Arc<CompiledQuery>,
    opts: StenoOptions,
    allow_reopt: bool,
}

/// The attempt/retry loop shared by the compiled and fallback paths.
/// `plan: None` runs through the facade's interruptible entry (iterator
/// fallback for unsupported shapes — polled per element stride, so the
/// deadline holds mid-run too).
fn execute_with_retries(
    shared: &Shared,
    job: &Job,
    plan: Option<&PlanExec<'_>>,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Result<Value, ServeError> {
    let collector = shared.engine.collector().clone();
    let cancel = job.cancel.clone();
    let probe: CancelProbe = Arc::new(move || cancel.is_cancelled());
    let max_attempts = shared.cfg.retry.max_attempts.max(1);

    for attempt in 0..max_attempts {
        if job.cancel.is_cancelled() {
            return Err(ServeError::Cancelled);
        }
        if Instant::now() >= job.deadline {
            return Err(ServeError::DeadlineExceeded);
        }

        let mut aspan = tracer.span("serve.attempt", parent);
        aspan.note("attempt", attempt as u64);
        let attempt_span = aspan.id();

        let fault = shared.cfg.faults.lookup(job.seq as usize, attempt).cloned();
        let failure = match fault {
            Some(FaultKind::Error) => Some(format!(
                "injected transient fault (seq {}, attempt {attempt})",
                job.seq
            )),
            Some(FaultKind::Delay(d)) => {
                aspan.note("injected_delay_ns", u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
                if !job.cancel.sleep_cooperatively(d) {
                    return Err(ServeError::Cancelled);
                }
                None
            }
            _ => None,
        };

        let failure = match failure {
            Some(f) => f,
            None => {
                let interrupt = Interrupt::none()
                    .with_deadline(job.deadline)
                    .with_cancel_probe(Arc::clone(&probe));
                let inject_panic = matches!(fault, Some(FaultKind::Panic));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if inject_panic {
                        // Scripted fault injection: the unwind is caught
                        // immediately below — the containment path is
                        // exactly what the denied lint normally guards.
                        #[allow(clippy::panic)]
                        std::panic::panic_any(format!(
                            "injected panic (seq {}, attempt {attempt})",
                            job.seq
                        ));
                    }
                    run_attempt(shared, job, plan, &interrupt, tracer, attempt_span)
                }));
                match outcome {
                    Ok(Ok(value)) => return Ok(value),
                    Ok(Err(e)) => {
                        aspan.note("error", Note::Text(e.to_string()));
                        return Err(e);
                    }
                    Err(payload) => {
                        collector.add("serve.panics_contained", 1);
                        payload_message(payload.as_ref())
                    }
                }
            }
        };

        // The attempt span covers the attempt itself, not the backoff
        // sleep that may follow.
        aspan.note("failed", Note::Text(failure.clone()));
        drop(aspan);

        if attempt + 1 >= max_attempts {
            return Err(ServeError::QueryFailed {
                message: format!("{failure} (retries exhausted after {max_attempts} attempts)"),
                class: FailureClass::Transient,
            });
        }
        collector.add("serve.retries", 1);
        if !shared
            .cfg
            .retry
            .backoff_sleep(&job.cancel, job.seq, attempt + 1)
        {
            return Err(ServeError::Cancelled);
        }
    }
    // max_attempts >= 1, so the loop always returns before this.
    Err(ServeError::QueryFailed {
        message: "retry budget was zero".to_string(),
        class: FailureClass::Transient,
    })
}

/// One execution attempt on the chosen path. All errors here are
/// terminal for the job: transient failures only enter via fault
/// injection and contained panics, which the retry loop sees directly.
fn run_attempt(
    shared: &Shared,
    job: &Job,
    plan: Option<&PlanExec<'_>>,
    interrupt: &Interrupt,
    tracer: &Tracer,
    parent: Option<SpanId>,
) -> Result<Value, ServeError> {
    match plan {
        Some(exec) => {
            let result = if exec.allow_reopt {
                // The adaptive entry: profiled sampling and bounded
                // drift-triggered re-optimization (a no-op unless the
                // engine was built `with_adaptive`). A live tracer
                // forces the profiled run, so per-loop spans record.
                shared.engine.run_compiled_traced(
                    &job.query,
                    &job.ctx,
                    &job.udfs,
                    exec.compiled,
                    interrupt,
                    exec.opts,
                    tracer,
                    parent,
                )
            } else if tracer.enabled() {
                exec.compiled
                    .run_traced(&job.ctx, &job.udfs, interrupt, tracer, parent)
                    .map(|(value, _prof)| value)
                    .map_err(StenoError::Vm)
            } else {
                exec.compiled
                    .run_with(&job.ctx, &job.udfs, interrupt)
                    .map_err(StenoError::Vm)
            };
            result.map_err(|e| match e {
                StenoError::Vm(VmError::Cancelled) => ServeError::Cancelled,
                StenoError::Vm(VmError::DeadlineExceeded) => ServeError::DeadlineExceeded,
                // Data-dependent VM errors (division by zero and
                // friends) are deterministic: a retry re-reads the same
                // data. Not negative-cached — they depend on the data,
                // which may change between submissions.
                other => ServeError::QueryFailed {
                    message: other.to_string(),
                    class: FailureClass::Deterministic,
                },
            })
        }
        None => shared
            .engine
            .execute_with_interrupt_traced(&job.query, &job.ctx, &job.udfs, interrupt, tracer, parent)
            .map(|(v, _path)| v)
            .map_err(|e| match e {
                StenoError::Vm(VmError::Cancelled) => ServeError::Cancelled,
                StenoError::Vm(VmError::DeadlineExceeded) => ServeError::DeadlineExceeded,
                e => {
                    let message = e.to_string();
                    if matches!(e, StenoError::Optimize(_) | StenoError::Parse(_)) {
                        // Structural failure: deterministic for this
                        // query text, worth remembering.
                        let key = format!("{}|{}", job.tenant, job.query);
                        shared.negcache.lock().insert(key, message.clone());
                    }
                    ServeError::QueryFailed {
                        message,
                        class: FailureClass::Deterministic,
                    }
                }
            }),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;
    use steno_obs::MemoryCollector;
    use steno_query::Query;

    fn sum_query(threshold: f64) -> QueryExpr {
        Query::source("xs")
            .where_(Expr::var("x").gt(Expr::litf(threshold)), "x")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build()
    }

    fn ctx(n: usize) -> DataContext {
        DataContext::new().with_source("xs", (0..n).map(|i| i as f64).collect::<Vec<_>>())
    }

    fn service_with(cfg: ServeConfig) -> (QueryService, Arc<MemoryCollector>) {
        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new().with_collector(metrics.clone());
        (QueryService::start(engine, cfg), metrics)
    }

    #[test]
    fn serves_a_query_end_to_end() {
        let (svc, metrics) = service_with(ServeConfig::default());
        let req = QueryRequest::new("acme", sum_query(0.5), ctx(100), UdfRegistry::new());
        let got = svc.execute_blocking(req).unwrap();
        let want = Steno::new()
            .execute(&sum_query(0.5), &ctx(100), &UdfRegistry::new())
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(metrics.counter_value("serve.completed"), 1);
        assert_eq!(metrics.counter_value("serve.shed"), 0);
    }

    #[test]
    fn full_tenant_queue_sheds_with_rejected() {
        let (svc, metrics) = service_with(ServeConfig {
            workers: 1,
            queue_depth: 1,
            max_in_flight: 1,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        // Big enough that the single worker cannot drain a burst of
        // instantaneous submissions.
        let data = ctx(400_000);
        let mut tickets = Vec::new();
        let mut shed = 0u32;
        for i in 0..32 {
            let req = QueryRequest::new(
                "flood",
                sum_query(f64::from(i)),
                data.clone(),
                UdfRegistry::new(),
            );
            match svc.submit(req) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Rejected { retry_after }) => {
                    assert!(retry_after > Duration::ZERO);
                    shed += 1;
                }
                Err(e) => panic!("unexpected admission error: {e}"),
            }
        }
        assert!(shed > 0, "burst past queue capacity must shed");
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(metrics.counter_value("serve.shed"), u64::from(shed));
        assert_eq!(
            metrics.counter_value("serve.admitted") + u64::from(shed),
            metrics.counter_value("serve.submitted"),
        );
    }

    #[test]
    fn expired_deadline_is_reported_in_bounded_time() {
        let (svc, metrics) = service_with(ServeConfig::default());
        let req = QueryRequest::new("acme", sum_query(0.0), ctx(1000), UdfRegistry::new())
            .with_deadline(Duration::ZERO);
        let start = Instant::now();
        let err = svc.execute_blocking(req).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(metrics.counter_value("serve.deadline_exceeded"), 1);
    }

    #[test]
    fn cancelled_ticket_stops_a_queued_job() {
        let (svc, metrics) = service_with(ServeConfig {
            workers: 1,
            max_in_flight: 1,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let data = ctx(400_000);
        // Occupy the worker, then cancel a queued job before it runs.
        let busy: Vec<QueryTicket> = (0..4)
            .map(|i| {
                svc.submit(QueryRequest::new(
                    "acme",
                    sum_query(f64::from(i)),
                    data.clone(),
                    UdfRegistry::new(),
                ))
                .unwrap()
            })
            .collect();
        let victim = svc
            .submit(QueryRequest::new(
                "acme",
                sum_query(99.0),
                data.clone(),
                UdfRegistry::new(),
            ))
            .unwrap();
        victim.cancel();
        assert_eq!(victim.wait().unwrap_err(), ServeError::Cancelled);
        for t in busy {
            t.wait().unwrap();
        }
        assert_eq!(metrics.counter_value("serve.cancelled"), 1);
    }

    /// `frac_above` of the `n` values are 10.0 (above the 5.0
    /// threshold used by the adaptive tests), the rest 0.0.
    fn density_ctx(n: usize, frac_above: f64) -> DataContext {
        let period = (1.0 / frac_above.max(1e-9)).round() as usize;
        let xs: Vec<f64> = (0..n)
            .map(|i| if i % period == 0 { 10.0 } else { 0.0 })
            .collect();
        DataContext::new().with_source("xs", xs)
    }

    #[test]
    fn fallback_queries_stop_at_their_deadline_mid_run() {
        // Concat is outside QUIL, so this runs on the iterator
        // fallback — which now polls the interrupt per element stride
        // instead of running to completion past the deadline.
        let (svc, metrics) = service_with(ServeConfig::default());
        let q = Query::source("xs")
            .concat(Query::source("xs"))
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let req = QueryRequest::new("acme", q, ctx(1_000_000), UdfRegistry::new())
            .with_deadline(Duration::from_millis(25));
        let start = Instant::now();
        let err = svc.execute_blocking(req).unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        // Well under the seconds a 2M-element interpreted run costs.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must interrupt the fallback mid-run"
        );
        assert_eq!(metrics.counter_value("serve.fallback_exec"), 1);
        assert_eq!(metrics.counter_value("serve.deadline_exceeded"), 1);
    }

    #[test]
    fn adaptive_engine_reoptimizes_through_the_service() {
        // The service feeds the engine's profile→plan loop: a workload
        // whose filter density collapses triggers one bounded
        // re-optimization, surfaced in the engine's metrics.
        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new()
            .with_adaptive(true)
            .with_collector(metrics.clone());
        let svc = QueryService::start(engine, ServeConfig::default());
        let q = sum_query(5.0);
        let dense = density_ctx(200_000, 0.95);
        let sparse = density_ctx(200_000, 0.02);
        for _ in 0..12 {
            let req = QueryRequest::new("acme", q.clone(), dense.clone(), UdfRegistry::new());
            svc.execute_blocking(req).unwrap();
        }
        for _ in 0..96 {
            let req = QueryRequest::new("acme", q.clone(), sparse.clone(), UdfRegistry::new());
            svc.execute_blocking(req).unwrap();
            if metrics.counter_value("steno.reopt") > 0 {
                break;
            }
        }
        assert_eq!(metrics.counter_value("steno.reopt"), 1);
        // Settle: the sustained sparse regime must not flap the plan.
        for _ in 0..48 {
            let req = QueryRequest::new("acme", q.clone(), sparse.clone(), UdfRegistry::new());
            svc.execute_blocking(req).unwrap();
        }
        assert_eq!(metrics.counter_value("steno.reopt"), 1);
    }

    #[test]
    fn open_breaker_suppresses_adaptive_reoptimization() {
        // A zero compile budget marks every compile slow: the breaker
        // trips after the first one and every later job runs degraded.
        // Degraded jobs must not spend compiles on re-optimization even
        // when the workload drifts hard.
        let metrics = Arc::new(MemoryCollector::new());
        let engine = Steno::new()
            .with_adaptive(true)
            .with_collector(metrics.clone());
        let svc = QueryService::start(
            engine,
            ServeConfig {
                breaker: BreakerConfig {
                    compile_budget: Duration::ZERO,
                    trip_threshold: 1,
                    ..BreakerConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let q = sum_query(5.0);
        let dense = density_ctx(50_000, 0.95);
        let sparse = density_ctx(50_000, 0.02);
        for _ in 0..12 {
            let req = QueryRequest::new("acme", q.clone(), dense.clone(), UdfRegistry::new());
            svc.execute_blocking(req).unwrap();
        }
        for _ in 0..40 {
            let req = QueryRequest::new("acme", q.clone(), sparse.clone(), UdfRegistry::new());
            svc.execute_blocking(req).unwrap();
        }
        assert!(
            metrics.counter_value("serve.degraded_compiles") > 0,
            "breaker must have degraded the service"
        );
        assert_eq!(
            metrics.counter_value("steno.reopt"),
            0,
            "degraded service must not re-optimize"
        );
    }

    #[test]
    fn injected_transient_faults_are_retried_to_success() {
        // Seq 0, attempts 0 and 1 fail; attempt 2 runs clean.
        let faults = FaultPlan::none()
            .with(0, 0, FaultKind::Error)
            .with(0, 1, FaultKind::Error);
        let (svc, metrics) = service_with(ServeConfig {
            faults,
            ..ServeConfig::default()
        });
        let got = svc
            .execute_blocking(QueryRequest::new(
                "acme",
                sum_query(0.5),
                ctx(100),
                UdfRegistry::new(),
            ))
            .unwrap();
        let want = Steno::new()
            .execute(&sum_query(0.5), &ctx(100), &UdfRegistry::new())
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(metrics.counter_value("serve.retries"), 2);
    }

    #[test]
    fn injected_panics_are_contained_and_retried() {
        let (svc, metrics) = service_with(ServeConfig {
            faults: FaultPlan::panic_once(0),
            ..ServeConfig::default()
        });
        let got = svc
            .execute_blocking(QueryRequest::new(
                "acme",
                sum_query(0.5),
                ctx(100),
                UdfRegistry::new(),
            ))
            .unwrap();
        assert_eq!(
            got,
            Steno::new()
                .execute(&sum_query(0.5), &ctx(100), &UdfRegistry::new())
                .unwrap()
        );
        assert_eq!(metrics.counter_value("serve.panics_contained"), 1);
        assert_eq!(metrics.counter_value("serve.retries"), 1);
    }

    #[test]
    fn exhausted_retries_surface_as_transient_failure() {
        let faults = (0..5).fold(FaultPlan::none(), |p, k| p.with(0, k, FaultKind::Error));
        let (svc, metrics) = service_with(ServeConfig {
            faults,
            ..ServeConfig::default()
        });
        let err = svc
            .execute_blocking(QueryRequest::new(
                "acme",
                sum_query(0.5),
                ctx(100),
                UdfRegistry::new(),
            ))
            .unwrap_err();
        match err {
            ServeError::QueryFailed { class, message } => {
                assert_eq!(class, FailureClass::Transient);
                assert!(message.contains("retries exhausted"), "{message}");
            }
            other => panic!("want QueryFailed, got {other:?}"),
        }
        // Default budget: 3 attempts, so 2 retries.
        assert_eq!(metrics.counter_value("serve.retries"), 2);
    }

    #[test]
    fn deterministic_failures_fail_fast_and_negative_cache() {
        let (svc, metrics) = service_with(ServeConfig::default());
        // `missing` is not a source in the context: a deterministic
        // compile-time failure.
        let bad = Query::source("missing").sum().build();
        for _ in 0..2 {
            let err = svc
                .execute_blocking(QueryRequest::new(
                    "acme",
                    bad.clone(),
                    ctx(10),
                    UdfRegistry::new(),
                ))
                .unwrap_err();
            match err {
                ServeError::QueryFailed { class, .. } => {
                    assert_eq!(class, FailureClass::Deterministic);
                }
                other => panic!("want QueryFailed, got {other:?}"),
            }
        }
        assert_eq!(
            metrics.counter_value("serve.negcache_hits"),
            1,
            "second submission must hit the negative cache"
        );
        assert_eq!(metrics.counter_value("serve.retries"), 0);
    }

    #[test]
    fn unsupported_shapes_run_the_fallback_path() {
        let (svc, metrics) = service_with(ServeConfig::default());
        let q = Query::source("xs").concat(Query::source("xs")).count().build();
        let got = svc
            .execute_blocking(QueryRequest::new("acme", q.clone(), ctx(8), UdfRegistry::new()))
            .unwrap();
        assert_eq!(got, Value::I64(16));
        assert_eq!(metrics.counter_value("serve.fallback_exec"), 1);
    }

    #[test]
    fn flooding_tenant_does_not_shed_a_light_tenant() {
        let (svc, _) = service_with(ServeConfig {
            workers: 2,
            queue_depth: 2,
            max_in_flight: 1,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let data = ctx(400_000);
        // Tenant A floods far past its queue depth.
        let mut a_tickets = Vec::new();
        for i in 0..16 {
            if let Ok(t) = svc.submit(QueryRequest::new(
                "a",
                sum_query(f64::from(i)),
                data.clone(),
                UdfRegistry::new(),
            )) {
                a_tickets.push(t);
            }
        }
        // Tenant B's occasional queries are admitted and answered:
        // admission is per-tenant, and round-robin dispatch guarantees
        // B's turn comes up regardless of A's backlog.
        for i in 0..3 {
            let got = svc
                .execute_blocking(QueryRequest::new(
                    "b",
                    sum_query(f64::from(i)),
                    ctx(100),
                    UdfRegistry::new(),
                ))
                .unwrap();
            assert_eq!(
                got,
                Steno::new()
                    .execute(&sum_query(f64::from(i)), &ctx(100), &UdfRegistry::new())
                    .unwrap()
            );
        }
        for t in a_tickets {
            t.wait().unwrap();
        }
    }

    #[test]
    fn shutdown_fails_queued_work_and_rejects_new_submissions() {
        let (svc, _) = service_with(ServeConfig {
            workers: 1,
            max_in_flight: 1,
            default_deadline: Duration::from_secs(10),
            ..ServeConfig::default()
        });
        let data = ctx(400_000);
        let tickets: Vec<QueryTicket> = (0..6)
            .map(|i| {
                svc.submit(QueryRequest::new(
                    "acme",
                    sum_query(f64::from(i)),
                    data.clone(),
                    UdfRegistry::new(),
                ))
                .unwrap()
            })
            .collect();
        svc.shutdown();
        assert_eq!(
            svc.submit(QueryRequest::new(
                "acme",
                sum_query(0.0),
                ctx(10),
                UdfRegistry::new()
            ))
            .unwrap_err(),
            ServeError::ShuttingDown
        );
        let mut shut_down = 0;
        for t in tickets {
            match t.wait() {
                Ok(_) => {}
                Err(ServeError::ShuttingDown) => shut_down += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(shut_down > 0, "queued jobs must be failed by shutdown");
    }

    #[test]
    fn round_robin_take_next_respects_quota_and_rotation() {
        let (tx, _rx) = mpsc::sync_channel(1);
        let mk = |tenant: &str, seq: u64| Job {
            seq,
            tenant: tenant.to_string(),
            query: sum_query(0.0),
            ctx: DataContext::new(),
            udfs: UdfRegistry::new(),
            deadline: Instant::now() + Duration::from_secs(1),
            submitted: Instant::now(),
            cancel: CancelToken::new(),
            reply: tx.clone(),
        };
        let mut d = Dispatch::default();
        for (tenant, seq) in [("a", 0), ("a", 1), ("b", 2)] {
            let state = d.tenants.entry(tenant.to_string()).or_default();
            if state.queue.is_empty() {
                d.rr.push_back(tenant.to_string());
            }
            state.queue.push_back(mk(tenant, seq));
        }
        // Round-robin alternates tenants; quota 1 parks tenant "a"
        // after its first job until in_flight drops.
        let first = d.take_next(1).unwrap();
        assert_eq!(first.tenant, "a");
        let second = d.take_next(1).unwrap();
        assert_eq!(second.tenant, "b");
        assert!(d.take_next(1).is_none(), "a is at its in-flight quota");
        d.tenants.get_mut("a").unwrap().in_flight = 0;
        assert_eq!(d.take_next(1).unwrap().seq, 1);
        assert!(d.take_next(1).is_none(), "all queues drained");
    }

    #[test]
    fn negative_cache_is_bounded_fifo() {
        let mut nc = NegativeCache {
            cap: 2,
            ..NegativeCache::default()
        };
        nc.insert("a".into(), "1".into());
        nc.insert("b".into(), "2".into());
        nc.insert("c".into(), "3".into());
        assert!(nc.get("a").is_none(), "oldest entry evicted");
        assert_eq!(nc.get("b").as_deref(), Some("2"));
        assert_eq!(nc.get("c").as_deref(), Some("3"));
        assert_eq!(nc.map.len(), 2);
    }
}
