/root/repo/target/debug/deps/bench-e8986829a0dd6b38.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/bench-e8986829a0dd6b38: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
