//! A tour of the optimizer's internals: for each interesting query shape,
//! print the desugared method chain (Fig. 3), the QUIL sentence (§4.1),
//! the job graph a cluster would run (Fig. 12), and the generated
//! imperative code (Figs. 5-11).
//!
//! Run with `cargo run --example codegen_tour`.

use steno::prelude::*;
use steno_quil::{lower, parallel, passes};

fn tour(title: &str, text: &str, ctx: &DataContext) {
    println!("==== {title} ====");
    println!("query: {text}");
    let (q, _) = steno::syntax::parse_query(text).expect("parse");
    println!("desugared: {q}");
    let udfs = UdfRegistry::new();
    let chain = match lower(&q, &ctx.into(), &udfs) {
        Ok(c) => passes::optimize(&c),
        Err(e) => {
            println!("not optimized: {e}\n");
            return;
        }
    };
    println!("QUIL: {chain}");
    let plan = parallel::plan(&chain);
    println!(
        "parallel plan: {} + {:?}",
        if plan.map_chain.agg.is_some() {
            "map+partial-aggregate"
        } else {
            "map"
        },
        std::mem::discriminant(&plan.reduce)
    );
    println!(
        "job graph over 3 partitions:\n{}",
        steno::cluster::JobGraph::from_plan(&plan, 3)
    );
    let imp = steno::codegen::generate(&chain).expect("generate");
    println!("\ngenerated code:\n{}", steno::codegen::render_rust(&imp));
}

fn main() {
    let ctx = DataContext::new()
        .with_source("xs", vec![1.0f64, 2.0, 3.0])
        .with_source("ys", vec![1.0f64, 2.0])
        .with_source("ns", vec![1i64, 2, 3]);

    tour(
        "iterator fusion (Fig. 6-8)",
        "(from x in xs where x > 0.0 select x * x).sum()",
        &ctx,
    );
    tour(
        "nested loops (Fig. 9-11)",
        "(from x in xs from y in ys select x * y).sum()",
        &ctx,
    );
    tour(
        "GroupBy-Aggregate specialization (§4.3)",
        "xs.group_by(|x| x.floor()).select(|kv| (kv.0, kv.1.count()))",
        &ctx,
    );
    tour(
        "GROUP BY ... HAVING (two loops, §4.2)",
        "from kv in (from x in ns group x by x % 3) where kv.0 > 0 select kv",
        &ctx,
    );
    tour(
        "stateful predicates",
        "(from x in xs select x).skip(1).take(1)",
        &ctx,
    );
}
