//! Mixed-workload load generator for the `steno-serve` front end.
//!
//! Drives a multi-tenant [`QueryService`] to saturation with a zipfian
//! query mix (hot queries hit the plan cache, the cold tail compiles),
//! injected transient faults, and per-tenant submission bursts that
//! overflow the bounded queues — then reports queries/sec, p50/p99
//! latency, and the overload counters, and writes `BENCH_serve.json`.
//!
//! Run with `--smoke` for the CI mode: a short run that must finish
//! well under 30 s, shed at least once, and contain every panic.

use std::sync::Arc;
use std::time::{Duration, Instant};

use steno::Steno;
use steno_cluster::FaultPlan;
use steno_expr::UdfRegistry;
use steno_obs::{openmetrics, FlightRecorder, MemoryCollector, TraceConfig};
use steno_serve::loadgen::{query_pool, tenant_context};
use steno_serve::{
    QueryRequest, QueryService, SaturationReport, ServeConfig, ServeError, SplitMix64, Zipf,
};

struct LoadSpec {
    tenants: usize,
    rounds: usize,
    burst: usize,
    pool_size: usize,
    elements: usize,
    deadline: Duration,
    seed: u64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let spec = if smoke {
        LoadSpec {
            tenants: 3,
            rounds: 6,
            burst: 12,
            pool_size: 12,
            elements: 100_000,
            deadline: Duration::from_millis(500),
            seed: 0xC0FFEE,
        }
    } else {
        LoadSpec {
            tenants: 4,
            rounds: 16,
            burst: 16,
            pool_size: 24,
            elements: 200_000,
            deadline: Duration::from_millis(500),
            seed: 0xC0FFEE,
        }
    };

    let metrics = Arc::new(MemoryCollector::new());
    // Flight recorder with an aggressive slow-query threshold: under
    // burst load some queries will cross 1ms end-to-end (queue wait
    // counts), so the run always leaves dumps to inspect. The ring is
    // bounded, so tracing every query is safe.
    let recorder = Arc::new(FlightRecorder::new(TraceConfig {
        slow_query: Some(Duration::from_millis(1)),
        ..TraceConfig::default()
    }));
    let engine = Steno::new()
        .with_collector(metrics.clone())
        .with_flight_recorder(recorder.clone())
        .with_cache_capacity(64);
    let cfg = ServeConfig {
        workers: 4,
        queue_depth: 4,
        max_in_flight: 2,
        default_deadline: spec.deadline,
        // ~2% of jobs hit an injected transient fault on their first
        // attempt, exercising the retry path under load.
        faults: FaultPlan::seeded(spec.seed, 8192, 1, 0.02),
        ..ServeConfig::default()
    };
    println!(
        "load: {} tenants x {} rounds x burst {}, pool {} queries (zipf 1.1), {} elems/tenant",
        spec.tenants, spec.rounds, spec.burst, spec.pool_size, spec.elements
    );

    let service = Arc::new(QueryService::start(engine, cfg));
    let pool = Arc::new(query_pool(spec.pool_size));
    let zipf = Arc::new(Zipf::new(spec.pool_size, 1.1));

    let start = Instant::now();
    let handles: Vec<_> = (0..spec.tenants)
        .map(|t| {
            let service = Arc::clone(&service);
            let pool = Arc::clone(&pool);
            let zipf = Arc::clone(&zipf);
            let ctx = tenant_context(spec.elements, spec.seed ^ t as u64);
            let deadline = spec.deadline;
            let rounds = spec.rounds;
            let burst = spec.burst;
            let mut rng = SplitMix64::new(spec.seed.wrapping_mul(t as u64 + 1));
            std::thread::spawn(move || {
                let tenant = format!("tenant-{t}");
                let udfs = UdfRegistry::new();
                let mut shed_backoffs = 0u64;
                for _ in 0..rounds {
                    // Open-loop burst past the queue bound, then drain:
                    // this is what overload actually looks like.
                    let mut tickets = Vec::with_capacity(burst);
                    for _ in 0..burst {
                        let q = pool[zipf.sample(&mut rng)].clone();
                        let req = QueryRequest::new(&tenant, q, ctx.clone(), udfs.clone())
                            .with_deadline(deadline);
                        match service.submit(req) {
                            Ok(ticket) => tickets.push(ticket),
                            Err(ServeError::Rejected { retry_after }) => {
                                shed_backoffs += 1;
                                std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                            }
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                    for ticket in tickets {
                        // Every terminal state is acceptable under
                        // overload except an escaped panic, which would
                        // abort this thread and fail the run.
                        let _ = ticket.wait();
                    }
                }
                shed_backoffs
            })
        })
        .collect();

    let mut total_sheds_observed = 0u64;
    for h in handles {
        total_sheds_observed += h.join().expect("load thread must not panic");
    }
    let wall = start.elapsed();

    let report = SaturationReport::from_collector(&metrics, wall);
    print!("{}", report.render());
    let cache = service.engine().detailed_cache_stats();
    println!(
        "  plan cache: {} hits, {} misses, {} evictions (capacity {:?})",
        cache.hits, cache.misses, cache.evictions, cache.capacity
    );
    println!("  breaker: opened {} times", service.breaker().times_opened());

    println!(
        "  flight recorder: {} traces, {} anomalous",
        recorder.recorded(),
        recorder.anomaly_count()
    );
    if let Some(dump) = recorder.last_dump() {
        println!("--- flight-recorder dump (most recent anomaly) ---");
        print!("{dump}");
        println!("--- end dump ---");
    }

    // Two OpenMetrics scrapes with traffic in between: both must lint
    // clean and no counter series may go backwards.
    let scrape1 = metrics.snapshot().to_openmetrics();
    openmetrics::lint(&scrape1).expect("first scrape must lint clean");
    let udfs = UdfRegistry::new();
    let tail_ctx = tenant_context(1_000, spec.seed);
    for i in 0..8 {
        let req = QueryRequest::new("tenant-0", pool[i % pool.len()].clone(), tail_ctx.clone(), udfs.clone());
        let _ = service.execute_blocking(req);
    }
    let scrape2 = metrics.snapshot().to_openmetrics();
    openmetrics::lint(&scrape2).expect("second scrape must lint clean");
    openmetrics::counters_monotone(&scrape1, &scrape2)
        .expect("counters must be monotone across scrapes");
    println!(
        "openmetrics: 2 scrapes linted clean, counters monotone ({} exposition lines)",
        scrape2.lines().count()
    );

    let out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    std::fs::write(&out, report.to_json()).expect("write BENCH_serve.json");
    println!("wrote {}", out.display());

    // The contract this example doubles as a smoke test for: overload
    // must shed explicitly, queries must complete, and nothing panics.
    assert!(report.shed > 0, "burst load must shed at admission");
    assert_eq!(report.shed, total_sheds_observed, "every shed was observed by a caller");
    assert!(report.completed > 0, "admitted queries must complete");
    assert_eq!(
        report.submitted,
        report.admitted + report.shed,
        "admission accounting must balance"
    );
    assert!(
        recorder.anomaly_count() > 0,
        "the 1ms slow-query threshold must flag at least one query under burst load"
    );
    if smoke {
        assert!(
            wall < Duration::from_secs(30),
            "smoke run must stay under 30s, took {wall:?}"
        );
        println!("smoke: OK ({wall:?}, {} shed, 0 escaped panics)", report.shed);
    }
}
