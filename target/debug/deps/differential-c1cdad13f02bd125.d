/root/repo/target/debug/deps/differential-c1cdad13f02bd125.d: crates/steno-vm/tests/differential.rs

/root/repo/target/debug/deps/differential-c1cdad13f02bd125: crates/steno-vm/tests/differential.rs

crates/steno-vm/tests/differential.rs:
