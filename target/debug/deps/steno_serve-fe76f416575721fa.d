/root/repo/target/debug/deps/steno_serve-fe76f416575721fa.d: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libsteno_serve-fe76f416575721fa.rmeta: crates/steno-serve/src/lib.rs crates/steno-serve/src/breaker.rs crates/steno-serve/src/loadgen.rs crates/steno-serve/src/report.rs crates/steno-serve/src/service.rs Cargo.toml

crates/steno-serve/src/lib.rs:
crates/steno-serve/src/breaker.rs:
crates/steno-serve/src/loadgen.rs:
crates/steno-serve/src/report.rs:
crates/steno-serve/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
