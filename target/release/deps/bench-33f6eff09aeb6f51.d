/root/repo/target/release/deps/bench-33f6eff09aeb6f51.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libbench-33f6eff09aeb6f51.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libbench-33f6eff09aeb6f51.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
