/root/repo/target/debug/deps/steno_obs-ee4b8ab37c22b817.d: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs

/root/repo/target/debug/deps/libsteno_obs-ee4b8ab37c22b817.rlib: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs

/root/repo/target/debug/deps/libsteno_obs-ee4b8ab37c22b817.rmeta: crates/steno-obs/src/lib.rs crates/steno-obs/src/json.rs crates/steno-obs/src/metrics.rs

crates/steno-obs/src/lib.rs:
crates/steno-obs/src/json.rs:
crates/steno-obs/src/metrics.rs:
