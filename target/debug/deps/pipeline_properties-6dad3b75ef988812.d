/root/repo/target/debug/deps/pipeline_properties-6dad3b75ef988812.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-6dad3b75ef988812: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
