//! The pushdown-automaton code generator (§4.2, §5).

use steno_expr::subst::subst;
use steno_expr::{Expr, Ty};
use steno_quil::ir::{
    AggDesc, PredKind, QuilChain, QuilOp, SinkKind, SrcDesc, TransKind,
};
use steno_quil::substitute::subst_chain;

use crate::imp::{BlockId, ImpProgram, LoopHeader, SinkDecl, Stmt, Terminal};

/// An internal invariant violation during code generation. Lowered,
/// grammar-valid chains never produce one.
#[derive(Clone, Debug, PartialEq)]
pub struct GenError(pub String);

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "code generation failed: {}", self.0)
    }
}

impl std::error::Error for GenError {}

/// An `(α, μ, ω)` insertion-pointer triple (Fig. 5): statements are
/// appended to the ends of these blocks.
#[derive(Clone, Copy, Debug)]
struct Ptrs {
    alpha: BlockId,
    mu: BlockId,
    omega: BlockId,
}

/// What iterating the pending sink produces, beyond the raw element.
#[derive(Clone, Debug)]
enum SinkPost {
    /// The sink yields usable elements directly.
    None,
    /// A `GroupByAggregate` sink yields `(key, accumulator)` pairs that
    /// must be projected through `finish` and the result selector.
    GroupAgg {
        key_param: String,
        agg_param: String,
        result: Expr,
        finish: Option<Expr>,
        acc_param: String,
        out_ty: Ty,
    },
}

/// The automaton state (Fig. 4), carried together with the current element
/// variable.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum State {
    /// Elements stream through `elem`.
    Iterating {
        /// Current element variable name.
        elem: String,
    },
    /// Elements have been folded into `sink`; iterating it yields
    /// `elem_ty` elements (after `post` projection).
    Sinking {
        /// Sink variable name.
        sink: String,
        /// Raw element type the sink yields.
        elem_ty: Ty,
        /// Post-projection for specialized sinks.
        post: SinkPost,
    },
}

struct Gen {
    blocks: Vec<Vec<Stmt>>,
    stack: Vec<Ptrs>,
    elem_n: usize,
    agg_n: usize,
    sink_n: usize,
    ctrl_n: usize,
    sources: Vec<String>,
}

impl Gen {
    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Vec::new());
        BlockId(self.blocks.len() - 1)
    }

    fn push_stmt(&mut self, at: BlockId, stmt: Stmt) {
        self.blocks[at.0].push(stmt);
    }

    fn ptrs(&self) -> Ptrs {
        *self.stack.last().expect("insertion-pointer stack empty")
    }

    fn fresh_elem(&mut self) -> String {
        let name = format!("elem_{}", self.elem_n);
        self.elem_n += 1;
        name
    }

    fn fresh_agg(&mut self) -> String {
        let name = format!("agg_{}", self.agg_n);
        self.agg_n += 1;
        name
    }

    fn fresh_sink(&mut self) -> String {
        let name = format!("sink_{}", self.sink_n);
        self.sink_n += 1;
        name
    }

    fn fresh_ctrl(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}_{}", self.ctrl_n);
        self.ctrl_n += 1;
        name
    }

    /// Emits a new loop at `at`, pushing fresh insertion pointers (the Src
    /// transition, Fig. 9). Returns the element variable.
    fn emit_loop(&mut self, at: BlockId, header: LoopHeader) -> String {
        let alpha = self.new_block();
        let mu = self.new_block();
        let omega = self.new_block();
        let elem_var = self.fresh_elem();
        self.push_stmt(at, Stmt::BlockRef(alpha));
        self.push_stmt(
            at,
            Stmt::For {
                header,
                elem_var: elem_var.clone(),
                body: mu,
            },
        );
        self.push_stmt(at, Stmt::BlockRef(omega));
        self.stack.push(Ptrs { alpha, mu, omega });
        elem_var
    }

    fn src_header(&mut self, src: &SrcDesc) -> LoopHeader {
        match src {
            SrcDesc::Collection { name, elem_ty } => {
                if !self.sources.contains(name) {
                    self.sources.push(name.clone());
                }
                LoopHeader::Source {
                    name: name.clone(),
                    elem_ty: elem_ty.clone(),
                }
            }
            SrcDesc::Range { start, count } => LoopHeader::Range {
                start: *start,
                count: *count,
            },
            SrcDesc::Repeat { value, count } => LoopHeader::Repeat {
                value: value.clone(),
                count: *count,
            },
            SrcDesc::Expr { expr, elem_ty } => LoopHeader::SeqExpr {
                expr: expr.clone(),
                elem_ty: elem_ty.clone(),
            },
        }
    }

    /// If the automaton is SINKING, inserts the loop that iterates the
    /// sink collection at ω and resets the pointers relative to it
    /// (§4.2: "the code generator must insert a new loop that iterates
    /// through the sink collection").
    fn ensure_iterating(&mut self, state: State) -> State {
        match state {
            State::Iterating { .. } => state,
            State::Sinking {
                sink,
                elem_ty,
                post,
            } => {
                let omega = self.ptrs().omega;
                // The new loop replaces the current pointers.
                self.stack.pop();
                let raw_elem = self.emit_loop(
                    omega,
                    LoopHeader::Sink {
                        name: sink,
                        elem_ty: elem_ty.clone(),
                    },
                );
                let elem = match post {
                    SinkPost::None => raw_elem,
                    SinkPost::GroupAgg {
                        key_param,
                        agg_param,
                        result,
                        finish,
                        acc_param,
                        out_ty,
                    } => {
                        // elem = result(key, finish(acc)) over the raw pair.
                        let mu = self.ptrs().mu;
                        let acc_expr = Expr::var(raw_elem.clone()).field(1);
                        let finished = match finish {
                            None => acc_expr,
                            Some(f) => subst(&f, &acc_param, &acc_expr),
                        };
                        let projected = subst(
                            &subst(&result, &key_param, &Expr::var(raw_elem.clone()).field(0)),
                            &agg_param,
                            &finished,
                        );
                        let out = self.fresh_elem();
                        self.push_stmt(
                            mu,
                            Stmt::Decl {
                                name: out.clone(),
                                ty: out_ty,
                                init: projected,
                            },
                        );
                        out
                    }
                };
                State::Iterating { elem }
            }
        }
    }

    /// Generates one operator (a Trans/Pred/Sink transition).
    fn gen_op(&mut self, op: &QuilOp, state: State) -> Result<State, GenError> {
        let state = self.ensure_iterating(state);
        let State::Iterating { elem } = state else {
            unreachable!()
        };
        match op {
            QuilOp::Trans {
                param,
                kind: TransKind::Expr(body),
                out_ty,
                ..
            } => {
                // Fig. 6(a): var elem_{i+1} = f(elem_i);
                let mu = self.ptrs().mu;
                let next = self.fresh_elem();
                self.push_stmt(
                    mu,
                    Stmt::Decl {
                        name: next.clone(),
                        ty: out_ty.clone(),
                        init: subst(body, param, &Expr::var(elem)),
                    },
                );
                Ok(State::Iterating { elem: next })
            }
            QuilOp::Trans {
                param,
                kind: TransKind::Nested(nested),
                out_ty,
                ..
            } => {
                // §5.2: rewrite the outer variable to the current element
                // name, then descend into the nested chain.
                let chain = subst_chain(&nested.chain, param, &Expr::var(elem.clone()));
                let wrap = nested
                    .wrap
                    .as_ref()
                    .map(|(p, w)| (p.clone(), subst(w, param, &Expr::var(elem.clone()))));
                self.gen_nested(&chain, wrap, out_ty)
            }
            QuilOp::Pred {
                param,
                kind: PredKind::Expr(p),
                ..
            } => {
                // Fig. 6(b): if (!f(elem_i)) continue;
                let mu = self.ptrs().mu;
                self.push_stmt(
                    mu,
                    Stmt::IfNotContinue {
                        cond: subst(p, param, &Expr::var(elem.clone())),
                    },
                );
                Ok(State::Iterating { elem })
            }
            QuilOp::Pred {
                param,
                kind: PredKind::Nested(chain),
                ..
            } => {
                // A nested boolean query: evaluate it per element, then
                // guard on its scalar result.
                let chain = subst_chain(chain, param, &Expr::var(elem.clone()));
                let nested_state = self.gen_nested(&chain, None, &Ty::Bool)?;
                let State::Iterating { elem: flag } = nested_state else {
                    unreachable!()
                };
                let mu = self.ptrs().mu;
                self.push_stmt(
                    mu,
                    Stmt::IfNotContinue {
                        cond: Expr::var(flag),
                    },
                );
                Ok(State::Iterating { elem })
            }
            QuilOp::Pred {
                kind: PredKind::Take(n),
                ..
            } => {
                // Counter-guarded predicate. A `break` would be incorrect
                // after a nested splice (it would only exit the inner
                // loop), so Take filters instead of exiting early.
                let Ptrs { alpha, mu, .. } = self.ptrs();
                let cnt = self.fresh_ctrl("taken");
                self.push_stmt(
                    alpha,
                    Stmt::Decl {
                        name: cnt.clone(),
                        ty: Ty::I64,
                        init: Expr::liti(0),
                    },
                );
                self.push_stmt(
                    mu,
                    Stmt::IfNotContinue {
                        cond: Expr::var(cnt.clone()).lt(Expr::liti(*n as i64)),
                    },
                );
                self.push_stmt(
                    mu,
                    Stmt::Assign {
                        name: cnt.clone(),
                        expr: Expr::var(cnt) + Expr::liti(1),
                    },
                );
                Ok(State::Iterating { elem })
            }
            QuilOp::Pred {
                kind: PredKind::Skip(n),
                ..
            } => {
                let Ptrs { alpha, mu, .. } = self.ptrs();
                let cnt = self.fresh_ctrl("skipped");
                self.push_stmt(
                    alpha,
                    Stmt::Decl {
                        name: cnt.clone(),
                        ty: Ty::I64,
                        init: Expr::liti(0),
                    },
                );
                self.push_stmt(
                    mu,
                    Stmt::If {
                        cond: Expr::var(cnt.clone()).lt(Expr::liti(*n as i64)),
                        then: vec![
                            Stmt::Assign {
                                name: cnt.clone(),
                                expr: Expr::var(cnt) + Expr::liti(1),
                            },
                            Stmt::Continue,
                        ],
                        els: vec![],
                    },
                );
                Ok(State::Iterating { elem })
            }
            QuilOp::Pred {
                param,
                kind: PredKind::TakeWhile(p),
                ..
            } => {
                let Ptrs { alpha, mu, .. } = self.ptrs();
                let taking = self.fresh_ctrl("taking");
                self.push_stmt(
                    alpha,
                    Stmt::Decl {
                        name: taking.clone(),
                        ty: Ty::Bool,
                        init: Expr::litb(true),
                    },
                );
                let cond = Expr::var(taking.clone())
                    .and(subst(p, param, &Expr::var(elem.clone())));
                self.push_stmt(
                    mu,
                    Stmt::If {
                        cond,
                        then: vec![],
                        els: vec![
                            Stmt::Assign {
                                name: taking,
                                expr: Expr::litb(false),
                            },
                            Stmt::Continue,
                        ],
                    },
                );
                Ok(State::Iterating { elem })
            }
            QuilOp::Pred {
                param,
                kind: PredKind::SkipWhile(p),
                ..
            } => {
                let Ptrs { alpha, mu, .. } = self.ptrs();
                let skipping = self.fresh_ctrl("skipping");
                self.push_stmt(
                    alpha,
                    Stmt::Decl {
                        name: skipping.clone(),
                        ty: Ty::Bool,
                        init: Expr::litb(true),
                    },
                );
                let cond = Expr::var(skipping.clone())
                    .and(subst(p, param, &Expr::var(elem.clone())));
                self.push_stmt(
                    mu,
                    Stmt::If {
                        cond,
                        then: vec![Stmt::Continue],
                        els: vec![Stmt::Assign {
                            name: skipping,
                            expr: Expr::litb(false),
                        }],
                    },
                );
                Ok(State::Iterating { elem })
            }
            QuilOp::Sink(sink_op) => {
                let Ptrs { alpha, mu, omega } = self.ptrs();
                let sink = self.fresh_sink();
                let bind = |e: &Expr| subst(e, &sink_op.param, &Expr::var(elem.clone()));
                match &sink_op.kind {
                    SinkKind::GroupBy {
                        key,
                        elem: elem_sel,
                        key_ty,
                        val_ty,
                    } => {
                        self.push_stmt(
                            alpha,
                            Stmt::DeclSink {
                                name: sink.clone(),
                                decl: SinkDecl::Group,
                            },
                        );
                        self.push_stmt(
                            mu,
                            Stmt::GroupPut {
                                sink: sink.clone(),
                                key: bind(key),
                                value: elem_sel
                                    .as_ref()
                                    .map(&bind)
                                    .unwrap_or_else(|| Expr::var(elem.clone())),
                            },
                        );
                        Ok(State::Sinking {
                            sink,
                            elem_ty: Ty::pair(key_ty.clone(), Ty::seq(val_ty.clone())),
                            post: SinkPost::None,
                        })
                    }
                    SinkKind::GroupByAggregate {
                        key,
                        elem: elem_sel,
                        agg,
                        key_param,
                        agg_param,
                        result,
                        key_ty,
                    } => {
                        self.push_stmt(
                            alpha,
                            Stmt::DeclSink {
                                name: sink.clone(),
                                decl: SinkDecl::GroupAgg {
                                    init: agg.init.clone(),
                                    acc_ty: agg.acc_ty.clone(),
                                    key_ty: key_ty.clone(),
                                },
                            },
                        );
                        self.push_stmt(
                            mu,
                            Stmt::GroupAggUpdate {
                                sink: sink.clone(),
                                key: bind(key),
                                acc_param: agg.acc_param.clone(),
                                elem_param: agg.elem_param.clone(),
                                value: elem_sel
                                    .as_ref()
                                    .map(&bind)
                                    .unwrap_or_else(|| Expr::var(elem.clone())),
                                update: agg.update.clone(),
                            },
                        );
                        Ok(State::Sinking {
                            sink,
                            elem_ty: Ty::pair(key_ty.clone(), agg.acc_ty.clone()),
                            post: SinkPost::GroupAgg {
                                key_param: key_param.clone(),
                                agg_param: agg_param.clone(),
                                result: result.clone(),
                                finish: agg.finish.clone(),
                                acc_param: agg.acc_param.clone(),
                                out_ty: sink_op.out_ty.clone(),
                            },
                        })
                    }
                    SinkKind::OrderBy { key, descending } => {
                        self.push_stmt(
                            alpha,
                            Stmt::DeclSink {
                                name: sink.clone(),
                                decl: SinkDecl::SortedVec {
                                    descending: *descending,
                                },
                            },
                        );
                        self.push_stmt(
                            mu,
                            Stmt::SinkPush {
                                sink: sink.clone(),
                                value: Expr::var(elem.clone()),
                                key: Some(bind(key)),
                            },
                        );
                        self.push_stmt(omega, Stmt::SinkSeal { sink: sink.clone() });
                        Ok(State::Sinking {
                            sink,
                            elem_ty: sink_op.out_ty.clone(),
                            post: SinkPost::None,
                        })
                    }
                    SinkKind::Distinct => {
                        self.push_stmt(
                            alpha,
                            Stmt::DeclSink {
                                name: sink.clone(),
                                decl: SinkDecl::DistinctVec,
                            },
                        );
                        self.push_stmt(
                            mu,
                            Stmt::SinkPush {
                                sink: sink.clone(),
                                value: Expr::var(elem.clone()),
                                key: None,
                            },
                        );
                        Ok(State::Sinking {
                            sink,
                            elem_ty: sink_op.out_ty.clone(),
                            post: SinkPost::None,
                        })
                    }
                    SinkKind::ToVec => {
                        self.push_stmt(
                            alpha,
                            Stmt::DeclSink {
                                name: sink.clone(),
                                decl: SinkDecl::Vec,
                            },
                        );
                        self.push_stmt(
                            mu,
                            Stmt::SinkPush {
                                sink: sink.clone(),
                                value: Expr::var(elem.clone()),
                                key: None,
                            },
                        );
                        Ok(State::Sinking {
                            sink,
                            elem_ty: sink_op.out_ty.clone(),
                            post: SinkPost::None,
                        })
                    }
                }
            }
        }
    }

    /// Emits the aggregate declaration and update (Fig. 7a), returning the
    /// accumulator variable.
    fn emit_agg(&mut self, agg: &AggDesc, state: State) -> Result<(String, State), GenError> {
        let state = self.ensure_iterating(state);
        let State::Iterating { elem } = state.clone() else {
            unreachable!()
        };
        let Ptrs { alpha, mu, .. } = self.ptrs();
        let var = self.fresh_agg();
        self.push_stmt(
            alpha,
            Stmt::Decl {
                name: var.clone(),
                ty: agg.acc_ty.clone(),
                init: agg.init.clone(),
            },
        );
        let update = subst(&agg.update, &agg.elem_param, &Expr::var(elem));
        let update = subst(&update, &agg.acc_param, &Expr::var(var.clone()));
        self.push_stmt(
            mu,
            Stmt::Assign {
                name: var.clone(),
                expr: update,
            },
        );
        Ok((var, state))
    }

    /// Generates a nested chain (§5.2) and returns the new outer state.
    ///
    /// * Aggregate-terminated chains bind their scalar to a fresh element
    ///   variable in the nested postlude (Fig. 10) and pop back to the
    ///   outer pointers.
    /// * Streaming chains splice: two pointer triples are popped and
    ///   `(α_outer, μ_nested, ω_outer)` is pushed back (Fig. 11).
    fn gen_nested(
        &mut self,
        chain: &QuilChain,
        wrap: Option<(String, Expr)>,
        out_ty: &Ty,
    ) -> Result<State, GenError> {
        let mu_outer = self.ptrs().mu;
        let header = self.src_header(&chain.src);
        let elem = self.emit_loop(mu_outer, header);
        let mut state = State::Iterating { elem };
        for op in &chain.ops {
            state = self.gen_op(op, state)?;
        }
        match &chain.agg {
            Some(agg) => {
                // AGGREGATING nested Ret (Fig. 10).
                let (acc_var, _) = self.emit_agg(agg, state)?;
                let omega_nested = self.ptrs().omega;
                let finished = match &agg.finish {
                    None => Expr::var(acc_var),
                    Some(f) => subst(f, &agg.acc_param, &Expr::var(acc_var)),
                };
                let value = match &wrap {
                    None => finished,
                    Some((p, w)) => subst(w, p, &finished),
                };
                let next = self.fresh_elem();
                self.push_stmt(
                    omega_nested,
                    Stmt::Decl {
                        name: next.clone(),
                        ty: out_ty.clone(),
                        init: value,
                    },
                );
                self.stack.pop();
                Ok(State::Iterating { elem: next })
            }
            None => {
                // ITERATING nested Ret (Fig. 11): splice into the outer
                // stream. A sink-terminated nested chain first gets its
                // sink-iteration loop.
                let state = self.ensure_iterating(state);
                let State::Iterating { elem } = state else {
                    unreachable!()
                };
                if wrap.is_some() {
                    return Err(GenError(
                        "a result wrapper requires a scalar nested query".into(),
                    ));
                }
                let inner = self
                    .stack
                    .pop()
                    .ok_or_else(|| GenError("pointer stack underflow (inner)".into()))?;
                let outer = self
                    .stack
                    .pop()
                    .ok_or_else(|| GenError("pointer stack underflow (outer)".into()))?;
                self.stack.push(Ptrs {
                    alpha: outer.alpha,
                    mu: inner.mu,
                    omega: outer.omega,
                });
                Ok(State::Iterating { elem })
            }
        }
    }
}

/// Generates an imperative program for a QUIL chain.
///
/// # Errors
///
/// Returns [`GenError`] only for internal invariant violations; chains
/// produced by `steno_quil::lower` always generate successfully.
pub fn generate(chain: &QuilChain) -> Result<ImpProgram, GenError> {
    let mut g = Gen {
        blocks: Vec::new(),
        stack: Vec::new(),
        elem_n: 0,
        agg_n: 0,
        sink_n: 0,
        ctrl_n: 0,
        sources: Vec::new(),
    };
    let root = g.new_block();
    let header = g.src_header(&chain.src);
    let elem = g.emit_loop(root, header);
    let mut state = State::Iterating { elem };
    for op in &chain.ops {
        state = g.gen_op(op, state)?;
    }
    let terminal = match &chain.agg {
        Some(agg) => {
            // Fig. 8(a): return the (finished) aggregate at ω.
            let (acc_var, _) = g.emit_agg(agg, state)?;
            let omega = g.ptrs().omega;
            let value = match &agg.finish {
                None => Expr::var(acc_var),
                Some(f) => subst(f, &agg.acc_param, &Expr::var(acc_var)),
            };
            g.push_stmt(omega, Stmt::Return { value });
            Terminal::Scalar(agg.out_ty.clone())
        }
        None => {
            // Fig. 8(b)/(c): materialize the stream (or the sink contents)
            // into the output buffer.
            let state = g.ensure_iterating(state);
            let State::Iterating { elem } = state else {
                unreachable!()
            };
            let mu = g.ptrs().mu;
            g.push_stmt(
                mu,
                Stmt::Yield {
                    value: Expr::var(elem),
                },
            );
            Terminal::Sequence(chain.elem_ty())
        }
    };
    Ok(ImpProgram {
        blocks: g.blocks,
        root,
        terminal,
        sources: g.sources,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::UdfRegistry;
    use steno_query::typing::SourceTypes;
    use steno_query::{GroupResult, Query};
    use steno_quil::lower;

    fn srcs() -> SourceTypes {
        SourceTypes::new()
            .with("xs", Ty::F64)
            .with("ns", Ty::I64)
            .with("ys", Ty::F64)
    }

    fn gen(q: steno_query::QueryExpr) -> ImpProgram {
        let chain = lower(&q, &srcs(), &UdfRegistry::new()).unwrap();
        generate(&chain).unwrap()
    }

    fn flat_names(p: &ImpProgram) -> Vec<String> {
        p.flatten(p.root)
            .iter()
            .map(|s| format!("{s:?}").split('{').next().unwrap().trim().to_string())
            .collect()
    }

    #[test]
    fn sum_of_squares_generates_decl_loop_return() {
        let p = gen(
            Query::source("xs")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .sum()
                .build(),
        );
        let flat = p.flatten(p.root);
        // agg decl, loop, return.
        assert!(matches!(&flat[0], Stmt::Decl { name, .. } if name == "agg_0"));
        let Stmt::For { body, elem_var, .. } = &flat[1] else {
            panic!("expected loop, got {:?}", flat[1]);
        };
        assert_eq!(elem_var, "elem_0");
        let body = p.flatten(*body);
        // elem_1 = elem_0 * elem_0; agg_0 = agg_0 + elem_1;
        assert!(matches!(&body[0], Stmt::Decl { name, init, .. }
            if name == "elem_1" && init.to_string() == "(elem_0 * elem_0)"));
        assert!(matches!(&body[1], Stmt::Assign { name, expr }
            if name == "agg_0" && expr.to_string() == "(agg_0 + elem_1)"));
        assert!(matches!(&flat[2], Stmt::Return { value } if value.to_string() == "agg_0"));
        assert_eq!(p.terminal, Terminal::Scalar(Ty::F64));
        assert_eq!(p.sources, vec!["xs".to_string()]);
    }

    #[test]
    fn where_generates_continue_guard() {
        let p = gen(
            Query::source("ns")
                .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .build(),
        );
        let flat = p.flatten(p.root);
        let Stmt::For { body, .. } = &flat[0] else {
            panic!("expected loop");
        };
        let body = p.flatten(*body);
        assert!(matches!(&body[0], Stmt::IfNotContinue { cond }
            if cond.to_string() == "((elem_0 % 2) == 0)"));
        assert!(matches!(&body[2], Stmt::Yield { value }
            if value.to_string() == "elem_1"));
        assert_eq!(p.terminal, Terminal::Sequence(Ty::I64));
    }

    #[test]
    fn nested_select_many_generates_nested_loops_with_outer_aggregate() {
        // The §5 example: the Sum of the outermost query must inject its
        // update into the innermost loop body.
        let p = gen(
            Query::source("xs")
                .select_many(
                    Query::source("ys").select(Expr::var("x") * Expr::var("y"), "y"),
                    "x",
                )
                .sum()
                .build(),
        );
        let flat = p.flatten(p.root);
        // Outer: decl agg; loop xs; return.
        assert!(matches!(&flat[0], Stmt::Decl { name, .. } if name == "agg_0"));
        let Stmt::For { body, .. } = &flat[1] else {
            panic!("outer loop expected");
        };
        let outer_body = p.flatten(*body);
        let Stmt::For { body: inner, header, .. } = &outer_body[0] else {
            panic!("inner loop expected, got {outer_body:?}");
        };
        assert!(matches!(header, LoopHeader::Source { name, .. } if name == "ys"));
        let inner_body = p.flatten(*inner);
        // The multiply is inlined with the outer element substituted, and
        // the aggregate update sits in the innermost loop.
        assert!(matches!(&inner_body[0], Stmt::Decl { init, .. }
            if init.to_string() == "(elem_0 * elem_1)"));
        assert!(matches!(&inner_body[1], Stmt::Assign { name, .. } if name == "agg_0"));
        assert!(matches!(&flat[2], Stmt::Return { .. }));
    }

    #[test]
    fn nested_scalar_query_lands_in_nested_postlude() {
        // xs.Select(x => ys.Sum()): Fig. 10 — the nested aggregate is
        // assigned to a fresh element variable after the inner loop.
        let p = gen(
            Query::source("xs")
                .select_query(Query::source("ys").sum(), "x")
                .build(),
        );
        let flat = p.flatten(p.root);
        let Stmt::For { body, .. } = &flat[0] else {
            panic!("outer loop expected");
        };
        let outer_body = p.flatten(*body);
        // decl agg (nested α), inner loop, decl elem = agg (nested ω), yield.
        assert!(matches!(&outer_body[0], Stmt::Decl { name, .. } if name == "agg_0"));
        assert!(matches!(&outer_body[1], Stmt::For { .. }));
        assert!(matches!(&outer_body[2], Stmt::Decl { name, init, .. }
            if name == "elem_2" && init.to_string() == "agg_0"));
        assert!(matches!(&outer_body[3], Stmt::Yield { value }
            if value.to_string() == "elem_2"));
    }

    #[test]
    fn group_by_aggregate_uses_hash_sink() {
        let p = gen(
            Query::source("ns")
                .group_by_result(
                    Expr::var("x") % Expr::liti(3),
                    "x",
                    GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
                )
                .build(),
        );
        let flat = p.flatten(p.root);
        assert!(matches!(&flat[0], Stmt::DeclSink { decl: SinkDecl::GroupAgg { .. }, .. }));
        let Stmt::For { body, .. } = &flat[1] else {
            panic!("first loop expected");
        };
        let body = p.flatten(*body);
        assert!(matches!(&body[0], Stmt::GroupAggUpdate { key, .. }
            if key.to_string() == "(elem_0 % 3)"));
        // ω: loop over the sink projecting (key, count) pairs, yielding.
        let Stmt::For { header, body: sink_body, .. } = &flat[2] else {
            panic!("sink loop expected, got {:?}", flat[2]);
        };
        assert!(matches!(header, LoopHeader::Sink { .. }));
        let sink_body = p.flatten(*sink_body);
        assert!(matches!(&sink_body[0], Stmt::Decl { init, .. }
            if init.to_string() == "(elem_1.0, elem_1.1)"));
        assert!(matches!(&sink_body[1], Stmt::Yield { .. }));
    }

    #[test]
    fn group_having_generates_two_loops() {
        // GroupBy ... Where: the second loop iterates the sink (§4.2).
        let p = gen(
            Query::source("ns")
                .group_by(Expr::var("x") % Expr::liti(3), "x")
                .where_(Expr::var("kv").field(0).gt(Expr::liti(0)), "kv")
                .build(),
        );
        let flat = p.flatten(p.root);
        assert!(matches!(&flat[0], Stmt::DeclSink { decl: SinkDecl::Group, .. }));
        assert!(matches!(&flat[1], Stmt::For { .. }));
        let Stmt::For { header, body, .. } = &flat[2] else {
            panic!("sink loop expected");
        };
        assert!(matches!(header, LoopHeader::Sink { .. }));
        let body = p.flatten(*body);
        assert!(matches!(&body[0], Stmt::IfNotContinue { cond }
            if cond.to_string() == "(elem_1.0 > 0)"));
    }

    #[test]
    fn take_skip_emit_counters() {
        let p = gen(Query::source("xs").skip(2).take(3).build());
        let names = flat_names(&p);
        // Two counter declarations precede the loop.
        assert_eq!(
            names.iter().filter(|n| n.starts_with("Decl")).count(),
            2,
            "{names:?}"
        );
        let flat = p.flatten(p.root);
        let Stmt::For { body, .. } = flat.last().unwrap() else {
            panic!("loop expected last");
        };
        let body = p.flatten(*body);
        assert!(matches!(&body[0], Stmt::If { .. })); // skip guard
        assert!(matches!(&body[1], Stmt::IfNotContinue { .. })); // take guard
    }

    #[test]
    fn order_by_seals_sink_in_postlude() {
        let p = gen(Query::source("xs").order_by(Expr::var("x"), "x").build());
        let flat = p.flatten(p.root);
        assert!(matches!(&flat[0], Stmt::DeclSink { decl: SinkDecl::SortedVec { .. }, .. }));
        assert!(matches!(&flat[1], Stmt::For { .. }));
        assert!(matches!(&flat[2], Stmt::SinkSeal { .. }));
        // Then the materialization loop.
        assert!(matches!(&flat[3], Stmt::For { .. }));
    }

    #[test]
    fn triple_nested_cartesian_depth() {
        // xs.SelectMany(x => ys.SelectMany(y => ns.Select(n => ...))).Sum()
        let innermost = Query::source("ns").select(
            Expr::var("x") * Expr::var("y") * Expr::var("n").cast(Ty::F64),
            "n",
        );
        let q = Query::source("xs")
            .select_many(
                Query::source("ys").select_many(innermost, "y"),
                "x",
            )
            .sum()
            .build();
        let p = gen(q);
        // Count nested For depth: must be 3.
        fn depth(p: &ImpProgram, id: BlockId) -> usize {
            p.flatten(id)
                .iter()
                .map(|s| match s {
                    Stmt::For { body, .. } => 1 + depth(p, *body),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        assert_eq!(depth(&p, p.root), 3);
        // The aggregate update must be in the innermost body: find it.
        fn find_assign_depth(p: &ImpProgram, id: BlockId, lvl: usize) -> Option<usize> {
            for s in p.flatten(id) {
                match s {
                    Stmt::Assign { name, .. } if name.starts_with("agg_") => return Some(lvl),
                    Stmt::For { body, .. } => {
                        if let Some(d) = find_assign_depth(p, body, lvl + 1) {
                            return Some(d);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        assert_eq!(find_assign_depth(&p, p.root, 0), Some(3));
    }
}
