//! The query-comprehension front end.
//!
//! C# desugars query comprehensions into method calls before Steno ever
//! sees them (§2): `from x in xs where p select e` becomes
//! `xs.Where(x => p).Select(x => e)`. This crate is that desugaring for
//! the reproduction: a lexer and recursive-descent parser turning
//! comprehension text into [`QueryExpr`](steno_query::QueryExpr) ASTs.
//! It accepts both comprehension syntax and the method-call form,
//! including the aggregate suffixes:
//!
//! ```text
//! (from x: f64 in xs where x > 0.0 select x * x).sum()
//! xs.where(|x| x > 0.0).select(|x| x * x).sum()
//! ```
//!
//! The same parser serves the `steno!` proc macro (which parses the
//! token stream's text at compile time, the paper's §9 "extend the
//! compiler" variant) and runtime string queries.

pub mod lexer;
pub mod parser;

pub use lexer::{lex, LexError, Token};
pub use parser::{parse_expr, parse_query, Binders, ParseError};
