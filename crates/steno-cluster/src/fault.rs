//! Deterministic fault injection and the vertex-failure taxonomy.
//!
//! Dryad's contract (§6 of the paper) is that a failed or slow vertex is
//! re-executed — possibly speculatively — *without changing the job's
//! answer*. To make every recovery path in the scheduler testable, faults
//! are injected from a [`FaultPlan`]: a deterministic, seed-drivable
//! table saying "vertex *i*, attempt *k* → fail / panic / stall". The
//! runtime consults the plan before running the real vertex body, so a
//! test can script exactly the failure sequence it wants to observe.
//!
//! The taxonomy ([`FailureClass`]) splits failures the way the recovery
//! logic must treat them:
//!
//! * **Transient** — injected faults, vertex panics, attempt timeouts.
//!   Re-execution may succeed, so the runtime retries (with backoff) up
//!   to the [`RetryPolicy`](crate::retry::RetryPolicy) budget.
//! * **Deterministic** — data-dependent errors the single-node engines
//!   already model as structured values (`VmError::DivisionByZero` and
//!   friends). Re-execution *must* fail identically, so the runtime
//!   never retries and surfaces the message byte-identical to the
//!   single-node error.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an injected fault does to a vertex attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The attempt reports a transient error instead of running.
    Error,
    /// The attempt panics mid-vertex (exercises panic isolation).
    Panic,
    /// The attempt stalls for the given duration before running the real
    /// vertex body (simulated straggler). The stall is cooperative: it
    /// checks its [`CancelToken`] and aborts early when a speculative
    /// backup has already won.
    Delay(Duration),
}

/// One scripted fault: `vertex` on `attempt` does `kind`.
#[derive(Clone, Debug)]
pub struct Fault {
    /// Which map vertex (partition index) the fault hits.
    pub vertex: usize,
    /// Which attempt (0-based) of that vertex the fault hits.
    pub attempt: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault-injection schedule.
///
/// The empty plan (`FaultPlan::none()`, also `Default`) injects nothing
/// and is what production runs use.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: no injected faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Adds a scripted fault (builder style).
    #[must_use = "with returns the extended plan"]
    pub fn with(mut self, vertex: usize, attempt: u32, kind: FaultKind) -> FaultPlan {
        self.faults.push(Fault {
            vertex,
            attempt,
            kind,
        });
        self
    }

    /// Fails `vertex`'s first attempt with a transient error; the retry
    /// runs clean.
    pub fn fail_once(vertex: usize) -> FaultPlan {
        FaultPlan::none().with(vertex, 0, FaultKind::Error)
    }

    /// Fails the first attempt of every one of `vertices` map vertices.
    pub fn fail_each_once(vertices: usize) -> FaultPlan {
        (0..vertices).fold(FaultPlan::none(), |p, v| p.with(v, 0, FaultKind::Error))
    }

    /// Panics `vertex`'s first attempt.
    pub fn panic_once(vertex: usize) -> FaultPlan {
        FaultPlan::none().with(vertex, 0, FaultKind::Panic)
    }

    /// Panics every attempt of `vertex` up to `attempts` (models a UDF
    /// that deterministically panics: retries exhaust, the panic
    /// surfaces).
    pub fn panic_always(vertex: usize, attempts: u32) -> FaultPlan {
        (0..attempts).fold(FaultPlan::none(), |p, k| p.with(vertex, k, FaultKind::Panic))
    }

    /// Stalls `vertex`'s first attempt by `delay` (a straggler).
    pub fn delay_once(vertex: usize, delay: Duration) -> FaultPlan {
        FaultPlan::none().with(vertex, 0, FaultKind::Delay(delay))
    }

    /// A pseudo-random plan: each `(vertex, attempt)` cell in the
    /// `vertices × attempts` grid fails transiently with probability
    /// `p_fail`, driven by `seed` — the same seed always yields the same
    /// plan, so "random" failure tests are reproducible.
    pub fn seeded(seed: u64, vertices: usize, attempts: u32, p_fail: f64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for v in 0..vertices {
            for k in 0..attempts {
                let h = splitmix64(
                    seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(k) << 32,
                );
                // Map the top 53 bits to [0, 1).
                let u = (h >> 11) as f64 / (1u64 << 53) as f64;
                if u < p_fail {
                    plan = plan.with(v, k, FaultKind::Error);
                }
            }
        }
        plan
    }

    /// The fault scheduled for `(vertex, attempt)`, if any.
    pub fn lookup(&self, vertex: usize, attempt: u32) -> Option<&FaultKind> {
        self.faults
            .iter()
            .find(|f| f.vertex == vertex && f.attempt == attempt)
            .map(|f| &f.kind)
    }
}

/// SplitMix64: the one-shot mixing function used for deterministic
/// jitter and seeded fault plans (no external RNG dependency in the
/// non-test build).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether a vertex failure may be cured by re-execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// Environmental: injected faults, panics, timeouts. Retryable —
    /// Dryad's assumption that re-running a vertex can succeed.
    Transient,
    /// Data-dependent: a retried vertex must fail identically (the
    /// `VmError`s of `steno-vm`). Never retried; surfaced byte-identical
    /// to the single-node error.
    Deterministic,
}

/// A structured vertex failure, classified for the retry logic.
#[derive(Clone, Debug)]
pub struct VertexFailure {
    /// Retryable or not.
    pub class: FailureClass,
    /// Human-readable cause. For deterministic failures this is exactly
    /// the single-node error's `Display` output.
    pub message: String,
    /// `true` when the failure was an unwinding panic caught at the
    /// vertex boundary (the message is then the panic payload).
    pub panicked: bool,
}

impl VertexFailure {
    /// A retryable failure.
    pub fn transient(message: impl Into<String>) -> VertexFailure {
        VertexFailure {
            class: FailureClass::Transient,
            message: message.into(),
            panicked: false,
        }
    }

    /// A non-retryable, data-dependent failure.
    pub fn deterministic(message: impl Into<String>) -> VertexFailure {
        VertexFailure {
            class: FailureClass::Deterministic,
            message: message.into(),
            panicked: false,
        }
    }

    /// A caught panic (transient: Dryad re-executes crashed vertices).
    pub fn panic(payload: impl Into<String>) -> VertexFailure {
        VertexFailure {
            class: FailureClass::Transient,
            message: payload.into(),
            panicked: true,
        }
    }
}

/// Extracts a printable payload from a caught panic.
pub(crate) fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A cooperative cancellation flag shared between a running attempt and
/// the scheduler. "Cancelling" a vertex cannot preempt arbitrary user
/// code (threads are not killable — the same is true of Dryad worker
/// processes); instead long-running cooperative points (the injected
/// straggler stall, future operator yield points) poll the token and
/// bail out early, and the scheduler ignores results from cancelled
/// attempts.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }

    /// Sleeps for `total`, polling for cancellation every millisecond.
    /// Returns `false` if the sleep was cut short by cancellation.
    pub fn sleep_cooperatively(&self, total: Duration) -> bool {
        let slice = Duration::from_millis(1);
        let deadline = std::time::Instant::now() + total;
        loop {
            if self.is_cancelled() {
                return false;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return true;
            }
            std::thread::sleep(slice.min(deadline - now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_scripted_faults() {
        let plan = FaultPlan::fail_once(2).with(1, 3, FaultKind::Panic);
        assert_eq!(plan.lookup(2, 0), Some(&FaultKind::Error));
        assert_eq!(plan.lookup(2, 1), None);
        assert_eq!(plan.lookup(1, 3), Some(&FaultKind::Panic));
        assert_eq!(plan.lookup(0, 0), None);
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn fail_each_once_covers_every_vertex() {
        let plan = FaultPlan::fail_each_once(4);
        for v in 0..4 {
            assert_eq!(plan.lookup(v, 0), Some(&FaultKind::Error));
            assert_eq!(plan.lookup(v, 1), None);
        }
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(42, 16, 3, 0.3);
        let b = FaultPlan::seeded(42, 16, 3, 0.3);
        for v in 0..16 {
            for k in 0..3 {
                assert_eq!(a.lookup(v, k), b.lookup(v, k));
            }
        }
        // Degenerate probabilities hit everything / nothing.
        assert!(FaultPlan::seeded(7, 8, 2, 1.0).lookup(3, 1).is_some());
        assert!(FaultPlan::seeded(7, 8, 2, 0.0).is_empty());
    }

    #[test]
    fn cancel_token_cuts_sleep_short() {
        let t = CancelToken::new();
        t.cancel();
        let start = std::time::Instant::now();
        assert!(!t.sleep_cooperatively(Duration::from_secs(5)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn failure_constructors_classify() {
        assert_eq!(
            VertexFailure::transient("x").class,
            FailureClass::Transient
        );
        assert_eq!(
            VertexFailure::deterministic("x").class,
            FailureClass::Deterministic
        );
        let p = VertexFailure::panic("boom");
        assert!(p.panicked);
        assert_eq!(p.class, FailureClass::Transient);
    }
}
