//! Parallel query optimization (§6).
//!
//! "To optimize a query that can execute in parallel, Steno traverses the
//! QUIL representation of the query and identifies the homomorphic
//! operators. Contiguous subsequences of homomorphic operators are
//! combined into subqueries, and the subqueries are optimized separately.
//! ... if an associative Sink or Agg operator follows a subquery, a
//! partial `Sink_i` or `Agg_i` operator can be appended to the i-th
//! subquery, which reduces the amount of coordination between
//! partitions."
//!
//! [`plan`] splits a chain into a per-partition *map chain* and a *reduce
//! stage*; `steno-cluster` executes the plan on partitioned data.

use steno_expr::{Expr, Ty};

use crate::ir::{AggDesc, QuilChain, QuilOp, SinkKind, SinkOp};

/// How partition results are merged (the `Agg*` vertex of Fig. 12).
#[derive(Clone, Debug, PartialEq)]
pub enum Reduce {
    /// Concatenate partition outputs in partition order.
    Concat,
    /// Each partition produced a partial accumulator; combine them with
    /// the aggregate's combiner and apply its finish.
    CombinePartials(AggDesc),
    /// Each partition produced `(key, partial)` pairs; merge per key with
    /// the combiner, then apply finish and the result selector.
    MergeGroupedPartials {
        /// The per-group aggregate (combiner + finish).
        agg: AggDesc,
        /// Name binding the key in `result`.
        key_param: String,
        /// Name binding the aggregate in `result`.
        agg_param: String,
        /// The per-group result expression.
        result: Expr,
    },
    /// Each partition is sorted; merge the sorted runs.
    MergeSorted {
        /// Sort-key parameter name.
        param: String,
        /// Sort-key expression.
        key: Expr,
        /// Sort direction.
        descending: bool,
    },
    /// The remaining operators are not decomposable: concatenate partition
    /// outputs and run the rest of the chain serially over them.
    SerialRest {
        /// Remaining operators.
        ops: Vec<QuilOp>,
        /// Remaining aggregate, if any.
        agg: Option<AggDesc>,
    },
}

/// A parallel execution plan: the same optimized `map_chain` applied to
/// every partition, plus a reduce stage.
#[derive(Clone, Debug, PartialEq)]
pub struct ParallelPlan {
    /// The per-partition chain (homomorphic prefix, possibly with a
    /// partial aggregate or partial grouped aggregate appended).
    pub map_chain: QuilChain,
    /// How to merge partition results.
    pub reduce: Reduce,
}

impl ParallelPlan {
    /// `true` when the plan moves only partial aggregates between
    /// partitions (the coordination-reducing case of §6).
    pub fn uses_partial_aggregation(&self) -> bool {
        matches!(
            self.reduce,
            Reduce::CombinePartials(_) | Reduce::MergeGroupedPartials { .. }
        )
    }
}

/// Strips the finishing projection from an aggregate, leaving the partial
/// (`Agg_i`) form whose output is the raw accumulator.
fn partial_of(agg: &AggDesc) -> AggDesc {
    AggDesc {
        finish: None,
        out_ty: agg.acc_ty.clone(),
        ..agg.clone()
    }
}

/// The length of the maximal homomorphic prefix of the operator list.
pub fn homomorphic_prefix_len(ops: &[QuilOp]) -> usize {
    ops.iter().take_while(|op| op.is_homomorphic()).count()
}

/// Builds a parallel plan for a chain (§6, Fig. 12).
///
/// The decomposition cases, in order:
///
/// 1. every operator homomorphic and the final aggregate associative →
///    per-partition partial aggregation + `Agg*` combine;
/// 2. the only non-homomorphic operator is a final `GroupByAggregate`
///    with an associative fold → per-partition partial grouped
///    aggregation + per-key merge (distributed GroupBy-Aggregate, §4.3/§6);
/// 3. the only non-homomorphic operator is a final `OrderBy` →
///    per-partition sort + sorted merge (the distributed sort of §6);
/// 4. otherwise → the homomorphic prefix runs in parallel and the
///    remainder runs serially over the concatenated outputs.
pub fn plan(chain: &QuilChain) -> ParallelPlan {
    let split = homomorphic_prefix_len(&chain.ops);
    let prefix = chain.ops[..split].to_vec();
    let suffix = &chain.ops[split..];

    // Case 1: fully homomorphic, associative aggregate.
    if suffix.is_empty() {
        match &chain.agg {
            Some(agg) if agg.is_associative() => {
                return ParallelPlan {
                    map_chain: QuilChain {
                        src: chain.src.clone(),
                        ops: prefix,
                        agg: Some(partial_of(agg)),
                    },
                    reduce: Reduce::CombinePartials(agg.clone()),
                };
            }
            Some(agg) => {
                return ParallelPlan {
                    map_chain: QuilChain {
                        src: chain.src.clone(),
                        ops: prefix,
                        agg: None,
                    },
                    reduce: Reduce::SerialRest {
                        ops: Vec::new(),
                        agg: Some(agg.clone()),
                    },
                };
            }
            None => {
                return ParallelPlan {
                    map_chain: QuilChain {
                        src: chain.src.clone(),
                        ops: prefix,
                        agg: None,
                    },
                    reduce: Reduce::Concat,
                };
            }
        }
    }

    // Case 2: ... GroupByAggregate (associative) at the very end.
    if suffix.len() == 1 && chain.agg.is_none() {
        if let QuilOp::Sink(SinkOp {
            param,
            kind:
                SinkKind::GroupByAggregate {
                    key,
                    elem,
                    agg,
                    key_param,
                    agg_param,
                    result,
                    key_ty,
                },
            in_ty,
            ..
        }) = &suffix[0]
        {
            if agg.is_associative() {
                // Per-partition: emit (key, partial accumulator) pairs.
                let mut map_ops = prefix.clone();
                let partial = partial_of(agg);
                let pair_ty = Ty::pair(key_ty.clone(), partial.out_ty.clone());
                map_ops.push(QuilOp::Sink(SinkOp {
                    param: param.clone(),
                    kind: SinkKind::GroupByAggregate {
                        key: key.clone(),
                        elem: elem.clone(),
                        agg: partial,
                        key_param: "__pk".into(),
                        agg_param: "__pa".into(),
                        result: Expr::mk_pair(Expr::var("__pk"), Expr::var("__pa")),
                        key_ty: key_ty.clone(),
                    },
                    in_ty: in_ty.clone(),
                    out_ty: pair_ty,
                    span: suffix[0].span(),
                }));
                return ParallelPlan {
                    map_chain: QuilChain {
                        src: chain.src.clone(),
                        ops: map_ops,
                        agg: None,
                    },
                    reduce: Reduce::MergeGroupedPartials {
                        agg: agg.clone(),
                        key_param: key_param.clone(),
                        agg_param: agg_param.clone(),
                        result: result.clone(),
                    },
                };
            }
        }
        // Case 3: final OrderBy → sort partitions, merge sorted runs.
        if let QuilOp::Sink(SinkOp {
            param,
            kind: SinkKind::OrderBy { key, descending },
            ..
        }) = &suffix[0]
        {
            let mut map_ops = prefix.clone();
            map_ops.push(suffix[0].clone());
            return ParallelPlan {
                map_chain: QuilChain {
                    src: chain.src.clone(),
                    ops: map_ops,
                    agg: None,
                },
                reduce: Reduce::MergeSorted {
                    param: param.clone(),
                    key: key.clone(),
                    descending: *descending,
                },
            };
        }
    }

    // Case 4: general fallback.
    ParallelPlan {
        map_chain: QuilChain {
            src: chain.src.clone(),
            ops: prefix,
            agg: None,
        },
        reduce: Reduce::SerialRest {
            ops: suffix.to_vec(),
            agg: chain.agg.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use steno_expr::{Ty, UdfRegistry};
    use steno_query::typing::SourceTypes;
    use steno_query::{GroupResult, Query};

    fn srcs() -> SourceTypes {
        SourceTypes::new().with("xs", Ty::F64).with("ns", Ty::I64)
    }

    fn chain_of(q: steno_query::QueryExpr) -> QuilChain {
        lower(&q, &srcs(), &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn select_sum_decomposes_into_partial_sums() {
        // Fig. 12: Src-Trans-Agg splits into Src_i-Trans-Agg_i plus Agg*.
        let chain = chain_of(
            Query::source("xs")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .sum()
                .build(),
        );
        let plan = plan(&chain);
        assert!(plan.uses_partial_aggregation());
        assert!(plan.map_chain.agg.is_some());
        match &plan.reduce {
            Reduce::CombinePartials(agg) => assert!(agg.is_associative()),
            other => panic!("unexpected reduce {other:?}"),
        }
    }

    #[test]
    fn average_keeps_finish_in_the_combine_stage() {
        let chain = chain_of(Query::source("xs").average().build());
        let plan = plan(&chain);
        // The map stage must emit the raw (sum, count) accumulator...
        let partial = plan.map_chain.agg.as_ref().unwrap();
        assert!(partial.finish.is_none());
        assert_eq!(partial.out_ty, Ty::pair(Ty::F64, Ty::I64));
        // ...and the reduce stage applies the finish.
        match &plan.reduce {
            Reduce::CombinePartials(agg) => assert!(agg.finish.is_some()),
            other => panic!("unexpected reduce {other:?}"),
        }
    }

    #[test]
    fn pure_elementwise_chain_concatenates() {
        let chain = chain_of(
            Query::source("xs")
                .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
                .select(Expr::var("x") * Expr::litf(2.0), "x")
                .build(),
        );
        let plan = plan(&chain);
        assert_eq!(plan.reduce, Reduce::Concat);
        assert_eq!(plan.map_chain.ops.len(), 2);
    }

    #[test]
    fn grouped_aggregate_merges_per_key_partials() {
        let chain = chain_of(
            Query::source("ns")
                .group_by_result(
                    Expr::var("x") % Expr::liti(10),
                    "x",
                    GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
                )
                .build(),
        );
        let plan = plan(&chain);
        assert!(plan.uses_partial_aggregation());
        match &plan.reduce {
            Reduce::MergeGroupedPartials { agg, result, .. } => {
                assert!(agg.is_associative());
                assert_eq!(result.to_string(), "(k, __agg)");
            }
            other => panic!("unexpected reduce {other:?}"),
        }
        // The map chain ends in a partial grouped sink emitting pairs.
        match &plan.map_chain.ops.last().unwrap() {
            QuilOp::Sink(SinkOp {
                kind: SinkKind::GroupByAggregate { result, .. },
                out_ty,
                ..
            }) => {
                assert_eq!(result.to_string(), "(__pk, __pa)");
                assert_eq!(*out_ty, Ty::pair(Ty::I64, Ty::I64));
            }
            other => panic!("unexpected map op {other:?}"),
        }
    }

    #[test]
    fn order_by_sorts_partitions_then_merges() {
        let chain = chain_of(
            Query::source("xs")
                .select(Expr::var("x") * Expr::litf(-1.0), "x")
                .order_by(Expr::var("x"), "x")
                .build(),
        );
        let plan = plan(&chain);
        assert!(matches!(plan.reduce, Reduce::MergeSorted { .. }));
        // Each partition sorts locally.
        assert!(matches!(
            plan.map_chain.ops.last().unwrap(),
            QuilOp::Sink(SinkOp {
                kind: SinkKind::OrderBy { .. },
                ..
            })
        ));
    }

    #[test]
    fn take_forces_serial_remainder() {
        let chain = chain_of(
            Query::source("xs")
                .select(Expr::var("x") + Expr::litf(1.0), "x")
                .take(10)
                .count()
                .build(),
        );
        let plan = plan(&chain);
        match &plan.reduce {
            Reduce::SerialRest { ops, agg } => {
                assert_eq!(ops.len(), 1);
                assert!(agg.is_some());
            }
            other => panic!("unexpected reduce {other:?}"),
        }
        // Only the Select ran in parallel.
        assert_eq!(plan.map_chain.ops.len(), 1);
    }

    #[test]
    fn non_associative_fold_is_serial() {
        // A fold without a declared combiner cannot be decomposed.
        let chain = chain_of(
            Query::source("xs")
                .aggregate(
                    Expr::litf(0.0),
                    "a",
                    "x",
                    Expr::var("a") * Expr::litf(0.5) + Expr::var("x"),
                )
                .build(),
        );
        let plan = plan(&chain);
        assert!(!plan.uses_partial_aggregation());
        assert!(matches!(plan.reduce, Reduce::SerialRest { .. }));
    }
}
