/root/repo/target/debug/deps/steno_repro-97f9fcf2111f9629.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/steno_repro-97f9fcf2111f9629: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
