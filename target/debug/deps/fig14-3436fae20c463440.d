/root/repo/target/debug/deps/fig14-3436fae20c463440.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-3436fae20c463440: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
