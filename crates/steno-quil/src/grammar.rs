//! The QUIL grammar recognizers.
//!
//! Ignoring nesting, QUIL is the regular language
//! `Src (Trans | Pred | Sink)* Agg? Ret`, recognized by the five-state
//! finite state machine of Fig. 4. With nested queries the language is
//! context-free, and the recognizer becomes a deterministic pushdown
//! automaton (§5.1) whose stack frames mirror the code generator's
//! insertion-pointer stack.

/// A flat QUIL symbol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuilSym {
    /// Source collection.
    Src,
    /// Element-wise transformation.
    Trans,
    /// Element-wise predicate.
    Pred,
    /// Sink into an intermediate collection.
    Sink,
    /// Scalar aggregation.
    Agg,
    /// End of query.
    Ret,
}

/// A token of the *nested* QUIL language: a symbol, or a bracket around a
/// nested query substituting for a `Trans`/`Pred`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tok {
    /// A flat symbol.
    Sym(QuilSym),
    /// Start of a nested query.
    Open,
    /// End of a nested query.
    Close,
}

/// The states of the Fig. 4 FSM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FsmState {
    /// Before `Src`.
    Start,
    /// Streaming elements (after `Src`, `Trans` or `Pred`).
    Iterating,
    /// After a `Sink`: subsequent operators consume the sink collection.
    Sinking,
    /// After the `Agg`.
    Aggregating,
    /// Terminal state after `Ret`.
    Returning,
}

/// An error from the recognizers: the offending position and a
/// description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrammarError {
    /// Index of the offending token.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for GrammarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid QUIL at token {}: {}", self.position, self.message)
    }
}

impl std::error::Error for GrammarError {}

/// The finite state machine of Fig. 4, for flat (non-nested) QUIL.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Fsm;

impl Fsm {
    /// One transition of the Fig. 4 state machine.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated rule for an invalid
    /// `(state, symbol)` pair.
    pub fn step(state: FsmState, sym: QuilSym) -> Result<FsmState, String> {
        use FsmState::*;
        use QuilSym::*;
        match (state, sym) {
            // The initial Src enters the streaming state.
            (Start, Src) => Ok(Iterating),
            // Element-wise operators keep streaming; after a Sink they
            // consume the sink collection, which is again a stream.
            (Iterating, Trans) | (Iterating, Pred) => Ok(Iterating),
            (Sinking, Trans) | (Sinking, Pred) => Ok(Iterating),
            // Sinks may follow any collection-valued state.
            (Iterating, Sink) | (Sinking, Sink) => Ok(Sinking),
            // Agg consumes a stream or a sink collection, and must be
            // penultimate: only Ret may follow.
            (Iterating, Agg) | (Sinking, Agg) => Ok(Aggregating),
            // Ret may appear after any other symbol.
            (Iterating, Ret) | (Sinking, Ret) | (Aggregating, Ret) => Ok(Returning),
            (Start, s) => Err(format!("query must begin with Src, found {s:?}")),
            (Aggregating, s) => Err(format!("only Ret may follow Agg, found {s:?}")),
            (Returning, s) => Err(format!("no symbol may follow Ret, found {s:?}")),
            (_, Src) => Err("Src may only appear at the start of a query".into()),
        }
    }

    /// Recognizes a flat sentence: returns the final state, which must be
    /// [`FsmState::Returning`].
    ///
    /// # Errors
    ///
    /// Returns the first grammar violation.
    pub fn recognize(sentence: &[QuilSym]) -> Result<(), GrammarError> {
        let mut state = FsmState::Start;
        for (position, sym) in sentence.iter().enumerate() {
            state = Fsm::step(state, *sym).map_err(|message| GrammarError { position, message })?;
        }
        if state == FsmState::Returning {
            Ok(())
        } else {
            Err(GrammarError {
                position: sentence.len(),
                message: format!("query ended in state {state:?}, expected Returning"),
            })
        }
    }

    /// `true` when the flat sentence is a valid QUIL query.
    pub fn accepts(sentence: &[QuilSym]) -> bool {
        Fsm::recognize(sentence).is_ok()
    }
}

/// The deterministic pushdown recognizer for nested QUIL (§5.1).
///
/// A nested query (`Open … Close`) may substitute for a `Trans` or `Pred`
/// symbol: the automaton pushes its state, recognizes the bracketed query
/// with a fresh FSM, and on `Close` resumes the outer query as if a
/// `Trans` had been read.
#[derive(Clone, Debug, Default)]
pub struct Pda;

impl Pda {
    /// Recognizes a token sentence with nested queries.
    ///
    /// # Errors
    ///
    /// Returns the first grammar violation, including unbalanced brackets.
    pub fn recognize(tokens: &[Tok]) -> Result<(), GrammarError> {
        let mut stack: Vec<FsmState> = Vec::new();
        let mut state = FsmState::Start;
        for (position, tok) in tokens.iter().enumerate() {
            match tok {
                Tok::Sym(sym) => {
                    state = Fsm::step(state, *sym)
                        .map_err(|message| GrammarError { position, message })?;
                }
                Tok::Open => {
                    // A nested query substitutes for Trans/Pred, which is
                    // only valid where such a symbol would be.
                    if !matches!(state, FsmState::Iterating | FsmState::Sinking) {
                        return Err(GrammarError {
                            position,
                            message: format!(
                                "nested query may not begin in state {state:?}"
                            ),
                        });
                    }
                    stack.push(state);
                    state = FsmState::Start;
                }
                Tok::Close => {
                    if state != FsmState::Returning {
                        return Err(GrammarError {
                            position,
                            message: format!(
                                "nested query ended in state {state:?}, expected Returning"
                            ),
                        });
                    }
                    let outer = stack.pop().ok_or_else(|| GrammarError {
                        position,
                        message: "unbalanced Close".into(),
                    })?;
                    // Resume the outer query as if a Trans had been read.
                    state = Fsm::step(outer, QuilSym::Trans)
                        .map_err(|message| GrammarError { position, message })?;
                }
            }
        }
        if !stack.is_empty() {
            return Err(GrammarError {
                position: tokens.len(),
                message: "unbalanced Open".into(),
            });
        }
        if state == FsmState::Returning {
            Ok(())
        } else {
            Err(GrammarError {
                position: tokens.len(),
                message: format!("query ended in state {state:?}, expected Returning"),
            })
        }
    }

    /// `true` when the token sentence is a valid nested QUIL query.
    pub fn accepts(tokens: &[Tok]) -> bool {
        Pda::recognize(tokens).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use QuilSym::*;

    #[test]
    fn accepts_grammar_examples() {
        // The minimal query: Src Ret.
        assert!(Fsm::accepts(&[Src, Ret]));
        // Src Trans Agg Ret — Fig. 12's sequential query.
        assert!(Fsm::accepts(&[Src, Trans, Agg, Ret]));
        // GroupBy ... Where (the GROUP BY ... HAVING pattern, §4.2).
        assert!(Fsm::accepts(&[Src, Trans, Sink, Pred, Ret]));
        // Multiple sinks.
        assert!(Fsm::accepts(&[Src, Sink, Sink, Agg, Ret]));
        // Unbounded element-wise chains in arbitrary order.
        assert!(Fsm::accepts(&[Src, Pred, Trans, Pred, Trans, Ret]));
    }

    #[test]
    fn rejects_malformed_sentences() {
        // Must begin with Src.
        assert!(!Fsm::accepts(&[Trans, Ret]));
        // Must end with Ret.
        assert!(!Fsm::accepts(&[Src, Trans]));
        // Agg must be penultimate.
        assert!(!Fsm::accepts(&[Src, Agg, Trans, Ret]));
        assert!(!Fsm::accepts(&[Src, Agg, Agg, Ret]));
        // Nothing after Ret.
        assert!(!Fsm::accepts(&[Src, Ret, Ret]));
        // Src only at the start.
        assert!(!Fsm::accepts(&[Src, Src, Ret]));
        // Empty sentence.
        assert!(!Fsm::accepts(&[]));
    }

    #[test]
    fn error_positions_are_reported() {
        let err = Fsm::recognize(&[Src, Agg, Trans, Ret]).unwrap_err();
        assert_eq!(err.position, 2);
        assert!(err.message.contains("only Ret may follow Agg"));
        let err = Fsm::recognize(&[Src, Trans]).unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn pda_accepts_nested_queries() {
        // xs.SelectMany(x => ys.Select(...)) . Sum:
        // Src ( Src Trans Ret ) Agg Ret
        let toks = vec![
            Tok::Sym(Src),
            Tok::Open,
            Tok::Sym(Src),
            Tok::Sym(Trans),
            Tok::Sym(Ret),
            Tok::Close,
            Tok::Sym(Agg),
            Tok::Sym(Ret),
        ];
        assert!(Pda::accepts(&toks));
        // Two levels of nesting (the triple Cartesian product of §5).
        let toks = vec![
            Tok::Sym(Src),
            Tok::Open,
            Tok::Sym(Src),
            Tok::Open,
            Tok::Sym(Src),
            Tok::Sym(Trans),
            Tok::Sym(Ret),
            Tok::Close,
            Tok::Sym(Ret),
            Tok::Close,
            Tok::Sym(Agg),
            Tok::Sym(Ret),
        ];
        assert!(Pda::accepts(&toks));
    }

    #[test]
    fn pda_rejects_unbalanced_and_misplaced_brackets() {
        // Nested query cannot start a query (no Src yet).
        assert!(!Pda::accepts(&[Tok::Open, Tok::Sym(Src), Tok::Sym(Ret), Tok::Close]));
        // Unbalanced Open.
        assert!(!Pda::accepts(&[Tok::Sym(Src), Tok::Open, Tok::Sym(Src), Tok::Sym(Ret)]));
        // Unbalanced Close.
        assert!(!Pda::accepts(&[Tok::Sym(Src), Tok::Close, Tok::Sym(Ret)]));
        // Inner query must be complete.
        assert!(!Pda::accepts(&[
            Tok::Sym(Src),
            Tok::Open,
            Tok::Sym(Src),
            Tok::Close,
            Tok::Sym(Ret)
        ]));
        // A nested query after Agg is invalid.
        assert!(!Pda::accepts(&[
            Tok::Sym(Src),
            Tok::Sym(Agg),
            Tok::Open,
            Tok::Sym(Src),
            Tok::Sym(Ret),
            Tok::Close,
            Tok::Sym(Ret)
        ]));
    }

    #[test]
    fn flat_sentences_agree_between_fsm_and_pda() {
        let cases: Vec<Vec<QuilSym>> = vec![
            vec![Src, Ret],
            vec![Src, Trans, Ret],
            vec![Src, Agg, Ret],
            vec![Trans, Ret],
            vec![Src, Agg, Trans, Ret],
        ];
        for s in cases {
            let toks: Vec<Tok> = s.iter().map(|x| Tok::Sym(*x)).collect();
            assert_eq!(Fsm::accepts(&s), Pda::accepts(&toks), "{s:?}");
        }
    }
}
