/root/repo/target/release/deps/bench-5ea3584988f60bb9.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libbench-5ea3584988f60bb9.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libbench-5ea3584988f60bb9.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
