/root/repo/target/debug/deps/verify_corpus-fc3a40b6ea7f87c5.d: tests/verify_corpus.rs Cargo.toml

/root/repo/target/debug/deps/libverify_corpus-fc3a40b6ea7f87c5.rmeta: tests/verify_corpus.rs Cargo.toml

tests/verify_corpus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
