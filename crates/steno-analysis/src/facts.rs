//! Effect & totality analysis over expression trees.
//!
//! A bottom-up abstract interpreter computing, per expression: purity,
//! may-trap flags (integer division by zero, row index out of bounds,
//! cast failure), an integer interval range, and boolean constancy. The
//! facts respect the reference semantics in `steno_expr::eval`: i64
//! arithmetic wraps (so interval propagation bails to ⊤ on overflow),
//! `&&`/`||` short-circuit, and f64 division follows IEEE (never traps).
//!
//! The analysis is deliberately trap-sound rather than complete: it may
//! report that a total expression could trap, but it must never report
//! [`ExprFacts::never_traps`] for an expression whose concrete
//! evaluation can fail. The seeded-generator tests in this crate check
//! exactly that property against the reference evaluator.

use std::collections::HashMap;

use steno_expr::typecheck::TyEnv;
use steno_expr::{BinOp, Expr, Ty, UnOp};

/// A (possibly half-open) interval of `i64` values; `None` bounds mean
/// unbounded. `Interval::top()` is the lattice top: no information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound, or unbounded below.
    pub lo: Option<i64>,
    /// Inclusive upper bound, or unbounded above.
    pub hi: Option<i64>,
}

impl Interval {
    /// The unbounded interval.
    pub fn top() -> Interval {
        Interval { lo: None, hi: None }
    }

    /// The singleton interval `[n, n]`.
    pub fn exact(n: i64) -> Interval {
        Interval {
            lo: Some(n),
            hi: Some(n),
        }
    }

    /// The interval `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Interval {
        Interval {
            lo: Some(lo),
            hi: Some(hi),
        }
    }

    /// The single value, if the interval is a singleton.
    pub fn singleton(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// `true` when `0` may lie in the interval.
    pub fn contains_zero(&self) -> bool {
        self.lo.is_none_or(|l| l <= 0) && self.hi.is_none_or(|h| h >= 0)
    }

    /// `true` when the interval provably excludes `0` — the fact that
    /// licenses dropping a division-by-zero guard.
    pub fn excludes_zero(&self) -> bool {
        !self.contains_zero()
    }

    /// `true` when `n` may lie in the interval.
    pub fn contains(&self, n: i64) -> bool {
        self.lo.is_none_or(|l| l <= n) && self.hi.is_none_or(|h| h >= n)
    }

    /// The smallest interval containing both operands.
    pub fn union(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).map(|(a, b)| a.min(b)),
            hi: self.hi.zip(other.hi).map(|(a, b)| a.max(b)),
        }
    }

    /// The intersection, or `None` if the intervals are disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let lo = match (self.lo, other.lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (self.hi, other.hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return None;
            }
        }
        Some(Interval { lo, hi })
    }

    fn add(&self, other: &Interval) -> Interval {
        // Wrapping semantics: a sum can only be bounded when both inputs
        // are fully bounded and neither corner overflows — a wrap on one
        // side would jump past the bound on the other.
        match (
            self.lo.zip(other.lo).and_then(|(a, b)| a.checked_add(b)),
            self.hi.zip(other.hi).and_then(|(a, b)| a.checked_add(b)),
        ) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::top(),
        }
    }

    fn sub(&self, other: &Interval) -> Interval {
        match (
            self.lo.zip(other.hi).and_then(|(a, b)| a.checked_sub(b)),
            self.hi.zip(other.lo).and_then(|(a, b)| a.checked_sub(b)),
        ) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::top(),
        }
    }

    fn mul(&self, other: &Interval) -> Interval {
        let (Some(al), Some(ah), Some(bl), Some(bh)) = (self.lo, self.hi, other.lo, other.hi)
        else {
            return Interval::top();
        };
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        for a in [al, ah] {
            for b in [bl, bh] {
                match a.checked_mul(b) {
                    Some(p) => {
                        lo = lo.min(p);
                        hi = hi.max(p);
                    }
                    None => return Interval::top(),
                }
            }
        }
        Interval::new(lo, hi)
    }

    fn neg(&self) -> Interval {
        // `-i64::MIN` wraps back to `i64::MIN`, outside any bounded
        // negation, so an overflowing corner poisons the whole result.
        match (
            self.hi.and_then(i64::checked_neg),
            self.lo.and_then(i64::checked_neg),
        ) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::top(),
        }
    }

    fn abs(&self) -> Interval {
        // `abs(i64::MIN)` wraps back to `i64::MIN`, so any bound whose
        // magnitude overflows poisons the result to ⊤ (not `[0, ∞)`).
        let mag = |n: i64| n.checked_abs();
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l >= 0 => Interval::new(l, h),
            (Some(l), Some(h)) if h <= 0 => match (mag(h), mag(l)) {
                (Some(lo), Some(hi)) => Interval::new(lo, hi),
                _ => Interval::top(),
            },
            (Some(l), Some(h)) => match (mag(l), mag(h)) {
                (Some(a), Some(b)) => Interval::new(0, a.max(b)),
                _ => Interval::top(),
            },
            _ => Interval::top(),
        }
    }

    /// `a % b` under wrapping semantics, assuming `b` excludes zero: the
    /// result magnitude is strictly below `max(|b.lo|, |b.hi|)`, and the
    /// sign follows the dividend.
    fn rem(&self, divisor: &Interval) -> Interval {
        let (Some(bl), Some(bh)) = (divisor.lo, divisor.hi) else {
            return Interval::top();
        };
        let (Some(ma), Some(mb)) = (bl.checked_abs(), bh.checked_abs()) else {
            return Interval::top();
        };
        let k = ma.max(mb);
        if k == 0 {
            // Degenerate divisor [0,0]: the operation always traps; any
            // interval is vacuously sound.
            return Interval::top();
        }
        let mut out = Interval::new(-(k - 1), k - 1);
        if self.lo.is_some_and(|l| l >= 0) {
            out.lo = Some(0);
        }
        if self.hi.is_some_and(|h| h <= 0) {
            out.hi = Some(0);
        }
        out
    }

    /// `a / b` under wrapping semantics, assuming `b` excludes zero: with
    /// `|b| >= 1` the quotient magnitude never exceeds the dividend's.
    fn div(&self, _divisor: &Interval) -> Interval {
        let (Some(al), Some(ah)) = (self.lo, self.hi) else {
            return Interval::top();
        };
        let (Some(ma), Some(mb)) = (al.checked_abs(), ah.checked_abs()) else {
            return Interval::top();
        };
        let k = ma.max(mb);
        Interval::new(-k, k)
    }

    fn min_op(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.zip(other.lo).map(|(a, b)| a.min(b)),
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    fn max_op(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: self.hi.zip(other.hi).map(|(a, b)| a.max(b)),
        }
    }

}

/// Which run-time failures an expression may exhibit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Traps {
    /// Integer `/` or `%` whose divisor may be zero.
    pub div_by_zero: bool,
    /// `row[i]` whose index is not provably in bounds.
    pub index_oob: bool,
    /// A cast that may fail at run time. The current expression language
    /// only casts between `f64` and `i64` with saturating `as` semantics,
    /// so this flag is never set today; it exists so the lattice stays
    /// complete if a fallible cast is ever added.
    pub bad_cast: bool,
}

impl Traps {
    fn none() -> Traps {
        Traps::default()
    }

    fn join(self, other: Traps) -> Traps {
        Traps {
            div_by_zero: self.div_by_zero || other.div_by_zero,
            index_oob: self.index_oob || other.index_oob,
            bad_cast: self.bad_cast || other.bad_cast,
        }
    }

    /// `true` when any trap flag is set.
    pub fn any(self) -> bool {
        self.div_by_zero || self.index_oob || self.bad_cast
    }
}

/// The per-expression facts computed by [`analyze`].
#[derive(Clone, Debug, PartialEq)]
pub struct ExprFacts {
    /// `false` when the expression calls a user-defined function, which
    /// the analysis cannot see into.
    pub pure: bool,
    /// May-trap flags, sound with respect to the reference evaluator.
    pub traps: Traps,
    /// For `i64`-typed expressions: an interval containing every possible
    /// value. `None` means no information (or a non-`i64` type).
    pub range: Option<Interval>,
    /// For `bool`-typed expressions: the constant value, if the
    /// expression provably always evaluates to it.
    pub bool_const: Option<bool>,
}

impl ExprFacts {
    fn unknown() -> ExprFacts {
        ExprFacts {
            pure: true,
            traps: Traps::none(),
            range: None,
            bool_const: None,
        }
    }

    /// `true` when the expression provably cannot trap.
    pub fn never_traps(&self) -> bool {
        !self.traps.any()
    }

    /// `true` when the expression may trap at run time.
    pub fn may_trap(&self) -> bool {
        self.traps.any()
    }
}

/// Variable refinements gathered from dominating conditions (`len > 0`
/// guarding a division, `x != 0`, …).
#[derive(Clone, Debug, Default)]
struct Ctx {
    ranges: HashMap<String, Interval>,
}

impl Ctx {
    fn refined(&self, name: &str, iv: Interval) -> Ctx {
        let mut next = self.clone();
        let merged = match next.ranges.get(name) {
            Some(prev) => prev.intersect(&iv).unwrap_or(iv),
            None => iv,
        };
        next.ranges.insert(name.to_string(), merged);
        next
    }
}

/// Computes [`ExprFacts`] for `expr` under the typing environment `env`.
///
/// The environment supplies variable types only; variable *values* are
/// unknown (⊤), so ranges arise from literals and operator algebra (for
/// example `x % 16` lies in `[-15, 15]`, and `x % 16 + 20` therefore
/// provably excludes zero). Conditions refine variables inside `if`
/// branches: in `if len > 0 { total / len } else { 0 }` the division
/// cannot trap.
pub fn analyze(expr: &Expr, env: &TyEnv) -> ExprFacts {
    go(expr, env, &Ctx::default()).1
}

/// The scalar type of an expression, when the analysis can determine it.
fn ty_of(expr: &Expr, env: &TyEnv) -> Option<Ty> {
    go(expr, env, &Ctx::default()).0
}

fn go(expr: &Expr, env: &TyEnv, ctx: &Ctx) -> (Option<Ty>, ExprFacts) {
    match expr {
        Expr::Var(name) => {
            let ty = env.lookup(name).cloned();
            let mut facts = ExprFacts::unknown();
            if ty == Some(Ty::I64) {
                facts.range = ctx.ranges.get(name).copied();
            }
            (ty, facts)
        }
        Expr::LitF64(_) => (Some(Ty::F64), ExprFacts::unknown()),
        Expr::LitI64(n) => (
            Some(Ty::I64),
            ExprFacts {
                range: Some(Interval::exact(*n)),
                ..ExprFacts::unknown()
            },
        ),
        Expr::LitBool(b) => (
            Some(Ty::Bool),
            ExprFacts {
                bool_const: Some(*b),
                ..ExprFacts::unknown()
            },
        ),
        Expr::Bin(op, a, b) => bin(*op, a, b, env, ctx),
        Expr::Un(op, a) => {
            let (ta, fa) = go(a, env, ctx);
            // `abs(i64::MIN)` wraps back to `i64::MIN`, so abs of an
            // unbounded input proves nothing, not even the sign.
            let range = match (op, fa.range) {
                (UnOp::Neg, Some(r)) => Some(r.neg()),
                (UnOp::Abs, Some(r)) => Some(r.abs()),
                _ => None,
            };
            let ty = match op {
                UnOp::Neg | UnOp::Abs => ta,
                UnOp::Not => Some(Ty::Bool),
                UnOp::Sqrt | UnOp::Floor => Some(Ty::F64),
            };
            let bool_const = match op {
                UnOp::Not => fa.bool_const.map(|b| !b),
                _ => None,
            };
            (
                ty,
                ExprFacts {
                    pure: fa.pure,
                    traps: fa.traps,
                    range,
                    bool_const,
                },
            )
        }
        Expr::Call(_, args) => {
            let mut traps = Traps::none();
            for a in args {
                traps = traps.join(go(a, env, ctx).1.traps);
            }
            // The callee is opaque: assume impure, learn nothing about the
            // result. (Registered UDFs are native functions that return a
            // `Value` rather than raising the evaluator's traps.)
            (
                None,
                ExprFacts {
                    pure: false,
                    traps,
                    range: None,
                    bool_const: None,
                },
            )
        }
        Expr::Field(a, i) => {
            let (ta, fa) = go(a, env, ctx);
            let ty = match (ta, i) {
                (Some(Ty::Pair(x, _)), 0) => Some(*x),
                (Some(Ty::Pair(_, y)), 1) => Some(*y),
                _ => None,
            };
            (
                ty,
                ExprFacts {
                    pure: fa.pure,
                    traps: fa.traps,
                    range: None,
                    bool_const: None,
                },
            )
        }
        Expr::RowIndex(a, i) => {
            let (_, fa) = go(a, env, ctx);
            let (_, fi) = go(i, env, ctx);
            // Row lengths are not tracked, so indexing may always be out
            // of bounds.
            (
                Some(Ty::F64),
                ExprFacts {
                    pure: fa.pure && fi.pure,
                    traps: fa.traps.join(fi.traps).join(Traps {
                        index_oob: true,
                        ..Traps::none()
                    }),
                    range: None,
                    bool_const: None,
                },
            )
        }
        Expr::RowLen(a) => {
            let (_, fa) = go(a, env, ctx);
            (
                Some(Ty::I64),
                ExprFacts {
                    pure: fa.pure,
                    traps: fa.traps,
                    range: Some(Interval {
                        lo: Some(0),
                        hi: None,
                    }),
                    bool_const: None,
                },
            )
        }
        Expr::MkPair(a, b) => {
            let (ta, fa) = go(a, env, ctx);
            let (tb, fb) = go(b, env, ctx);
            (
                ta.zip(tb).map(|(x, y)| Ty::pair(x, y)),
                ExprFacts {
                    pure: fa.pure && fb.pure,
                    traps: fa.traps.join(fb.traps),
                    range: None,
                    bool_const: None,
                },
            )
        }
        Expr::If(c, t, e) => {
            let (_, fc) = go(c, env, ctx);
            let then_ctx = refine(c, true, env, ctx);
            let else_ctx = refine(c, false, env, ctx);
            let (tt, ft) = go(t, env, &then_ctx);
            let (te, fe) = go(e, env, &else_ctx);
            let ty = tt.or(te);
            match fc.bool_const {
                // A constant condition selects one branch; the other is
                // never evaluated.
                Some(true) => (
                    ty,
                    ExprFacts {
                        pure: fc.pure && ft.pure,
                        traps: fc.traps.join(ft.traps),
                        range: ft.range,
                        bool_const: ft.bool_const,
                    },
                ),
                Some(false) => (
                    ty,
                    ExprFacts {
                        pure: fc.pure && fe.pure,
                        traps: fc.traps.join(fe.traps),
                        range: fe.range,
                        bool_const: fe.bool_const,
                    },
                ),
                None => (
                    ty,
                    ExprFacts {
                        pure: fc.pure && ft.pure && fe.pure,
                        traps: fc.traps.join(ft.traps).join(fe.traps),
                        range: ft.range.zip(fe.range).map(|(a, b)| a.union(&b)),
                        bool_const: match (ft.bool_const, fe.bool_const) {
                            (Some(a), Some(b)) if a == b => Some(a),
                            _ => None,
                        },
                    },
                ),
            }
        }
        Expr::Cast(ty, a) => {
            let (_, fa) = go(a, env, ctx);
            let range = match ty {
                // i64 → i64 is the identity; f64 → i64 saturates, so no
                // interval without float tracking.
                Ty::I64 if ty_of(a, env) == Some(Ty::I64) => fa.range,
                _ => None,
            };
            (
                Some(ty.clone()),
                ExprFacts {
                    pure: fa.pure,
                    traps: fa.traps,
                    range,
                    bool_const: None,
                },
            )
        }
    }
}

fn bin(op: BinOp, a: &Expr, b: &Expr, env: &TyEnv, ctx: &Ctx) -> (Option<Ty>, ExprFacts) {
    if op.is_logical() {
        let (_, fa) = go(a, env, ctx);
        // The RHS only evaluates when the LHS does not short-circuit, and
        // then the LHS outcome refines variables in the RHS (e.g.
        // `x != 0 && k / x > 1`).
        let rhs_ctx = refine(a, op == BinOp::And, env, ctx);
        let (_, fb) = go(b, env, &rhs_ctx);
        let (decides, decided) = match op {
            BinOp::And => (fa.bool_const == Some(false), Some(false)),
            BinOp::Or => (fa.bool_const == Some(true), Some(true)),
            _ => unreachable!("logical operator expected"),
        };
        let facts = if decides {
            ExprFacts {
                pure: fa.pure,
                traps: fa.traps,
                range: None,
                bool_const: decided,
            }
        } else {
            let bool_const = match (op, fa.bool_const, fb.bool_const) {
                (BinOp::And, Some(true), r) => r,
                (BinOp::Or, Some(false), r) => r,
                (BinOp::And, None, Some(false)) | (BinOp::Or, None, Some(true)) => {
                    // Can't decide: the LHS value is the result when it
                    // short-circuits.
                    None
                }
                (BinOp::And, None, Some(true)) | (BinOp::Or, None, Some(false)) => None,
                _ => None,
            };
            ExprFacts {
                pure: fa.pure && fb.pure,
                traps: fa.traps.join(fb.traps),
                range: None,
                bool_const,
            }
        };
        return (Some(Ty::Bool), facts);
    }

    let (ta, fa) = go(a, env, ctx);
    let (tb, fb) = go(b, env, ctx);
    let pure = fa.pure && fb.pure;
    let mut traps = fa.traps.join(fb.traps);

    if op.is_comparison() {
        let bool_const = compare_intervals(op, fa.range, fb.range);
        return (
            Some(Ty::Bool),
            ExprFacts {
                pure,
                traps,
                range: None,
                bool_const,
            },
        );
    }

    // Arithmetic. Integer division/remainder traps unless the divisor
    // interval excludes zero; all other arithmetic is total (i64 wraps,
    // f64 follows IEEE).
    let int_operands = ta == Some(Ty::I64) || tb == Some(Ty::I64);
    let unknown_operands = ta.is_none() && tb.is_none();
    let range = if int_operands {
        match op {
            BinOp::Add => fa.range.zip(fb.range).map(|(x, y)| x.add(&y)),
            BinOp::Sub => fa.range.zip(fb.range).map(|(x, y)| x.sub(&y)),
            BinOp::Mul => fa.range.zip(fb.range).map(|(x, y)| x.mul(&y)),
            BinOp::Min => fa.range.zip(fb.range).map(|(x, y)| x.min_op(&y)),
            BinOp::Max => fa.range.zip(fb.range).map(|(x, y)| x.max_op(&y)),
            BinOp::Rem => fb
                .range
                .filter(Interval::excludes_zero)
                .map(|d| fa.range.unwrap_or_else(Interval::top).rem(&d)),
            BinOp::Div => fb
                .range
                .filter(Interval::excludes_zero)
                .map(|d| fa.range.unwrap_or_else(Interval::top).div(&d)),
            _ => None,
        }
    } else {
        None
    };
    if matches!(op, BinOp::Div | BinOp::Rem) && (int_operands || unknown_operands) {
        let divisor_safe = fb.range.is_some_and(|d| d.excludes_zero());
        if !divisor_safe {
            traps.div_by_zero = true;
        }
    }
    (
        ta.or(tb),
        ExprFacts {
            pure,
            traps,
            range,
            bool_const: None,
        },
    )
}

fn compare_intervals(op: BinOp, a: Option<Interval>, b: Option<Interval>) -> Option<bool> {
    let (a, b) = (a?, b?);
    let (al, ah, bl, bh) = (a.lo, a.hi, b.lo, b.hi);
    let lt_always = ah.zip(bl).map(|(x, y)| x < y);
    let le_always = ah.zip(bl).map(|(x, y)| x <= y);
    let gt_always = al.zip(bh).map(|(x, y)| x > y);
    let ge_always = al.zip(bh).map(|(x, y)| x >= y);
    match op {
        BinOp::Lt => pick(lt_always, ge_always),
        BinOp::Le => pick(le_always, gt_always),
        BinOp::Gt => pick(gt_always, le_always),
        BinOp::Ge => pick(ge_always, lt_always),
        BinOp::Eq => match (a.singleton(), b.singleton()) {
            (Some(x), Some(y)) => Some(x == y),
            _ if a.intersect(&b).is_none() => Some(false),
            _ => None,
        },
        BinOp::Ne => match (a.singleton(), b.singleton()) {
            (Some(x), Some(y)) => Some(x != y),
            _ if a.intersect(&b).is_none() => Some(true),
            _ => None,
        },
        _ => None,
    }
}

fn pick(always: Option<bool>, never_via: Option<bool>) -> Option<bool> {
    if always == Some(true) {
        Some(true)
    } else if never_via == Some(true) {
        Some(false)
    } else {
        None
    }
}

/// Refines variable ranges from a branch condition. `positive` selects
/// whether the condition is assumed true (then-branch, `&&` RHS) or
/// false (else-branch).
fn refine(cond: &Expr, positive: bool, env: &TyEnv, ctx: &Ctx) -> Ctx {
    match cond {
        Expr::Un(UnOp::Not, inner) => refine(inner, !positive, env, ctx),
        Expr::Bin(BinOp::And, a, b) if positive => {
            let ctx = refine(a, true, env, ctx);
            refine(b, true, env, &ctx)
        }
        Expr::Bin(BinOp::Or, a, b) if !positive => {
            // ¬(a ∨ b) = ¬a ∧ ¬b.
            let ctx = refine(a, false, env, ctx);
            refine(b, false, env, &ctx)
        }
        Expr::Bin(op, a, b) if op.is_comparison() => {
            let eff = if positive { *op } else { negate_cmp(*op) };
            match (&**a, &**b) {
                (Expr::Var(x), Expr::LitI64(n)) if env.lookup(x) == Some(&Ty::I64) => {
                    var_bound(ctx, x, eff, *n)
                }
                (Expr::LitI64(n), Expr::Var(x)) if env.lookup(x) == Some(&Ty::I64) => {
                    var_bound(ctx, x, flip_cmp(eff), *n)
                }
                _ => ctx.clone(),
            }
        }
        _ => ctx.clone(),
    }
}

fn negate_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        other => other,
    }
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Applies `x <op> n` as a range refinement for `x`.
fn var_bound(ctx: &Ctx, x: &str, op: BinOp, n: i64) -> Ctx {
    let iv = match op {
        BinOp::Eq => Interval::exact(n),
        BinOp::Lt => match n.checked_sub(1) {
            Some(h) => Interval {
                lo: None,
                hi: Some(h),
            },
            None => return ctx.clone(),
        },
        BinOp::Le => Interval {
            lo: None,
            hi: Some(n),
        },
        BinOp::Gt => match n.checked_add(1) {
            Some(l) => Interval {
                lo: Some(l),
                hi: None,
            },
            None => return ctx.clone(),
        },
        BinOp::Ge => Interval {
            lo: Some(n),
            hi: None,
        },
        // `x != n` excludes a point, which an interval can only express
        // at the ends.
        BinOp::Ne => {
            let prev = ctx
                .ranges
                .get(x)
                .copied()
                .unwrap_or_else(Interval::top);
            let mut next = prev;
            if prev.lo == Some(n) {
                match n.checked_add(1) {
                    Some(l) => next.lo = Some(l),
                    None => return ctx.clone(),
                }
            }
            if prev.hi == Some(n) {
                match n.checked_sub(1) {
                    Some(h) => next.hi = Some(h),
                    None => return ctx.clone(),
                }
            }
            // The common guard `x != 0` with no prior bound still proves
            // nothing interval-shaped unless we split; approximate the
            // zero case as "nonzero ⇒ magnitude ≥ 1" only when one side
            // is already bounded by 0.
            if next == prev && n == 0 {
                if prev.lo.is_some_and(|l| l >= 0) {
                    next.lo = Some(prev.lo.unwrap_or(0).max(1));
                } else if prev.hi.is_some_and(|h| h <= 0) {
                    next.hi = Some(prev.hi.unwrap_or(0).min(-1));
                }
            }
            return ctx.refined(x, next);
        }
        _ => return ctx.clone(),
    };
    ctx.refined(x, iv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::eval::{eval, Env};
    use steno_expr::{UdfRegistry, Value};

    fn env_i(name: &str) -> TyEnv {
        TyEnv::new().with(name, Ty::I64)
    }

    #[test]
    fn literal_and_modulo_ranges() {
        let f = analyze(&Expr::liti(7), &TyEnv::new());
        assert_eq!(f.range, Some(Interval::exact(7)));
        // x % 16 ∈ [-15, 15] for unknown x.
        let f = analyze(&(Expr::var("x") % Expr::liti(16)), &env_i("x"));
        assert_eq!(f.range, Some(Interval::new(-15, 15)));
        assert!(f.never_traps());
    }

    #[test]
    fn shifted_modulo_excludes_zero() {
        // x % 7 + 9 ∈ [3, 15]: a provably nonzero divisor.
        let d = Expr::var("x") % Expr::liti(7) + Expr::liti(9);
        let f = analyze(&d, &env_i("x"));
        assert_eq!(f.range, Some(Interval::new(3, 15)));
        assert!(f.range.unwrap().excludes_zero());
        // Dividing by it therefore cannot trap.
        let q = Expr::var("y") / d;
        let env = env_i("x").with("y", Ty::I64);
        assert!(analyze(&q, &env).never_traps());
    }

    #[test]
    fn unknown_divisor_may_trap() {
        let q = Expr::var("y") / Expr::var("x");
        let env = env_i("x").with("y", Ty::I64);
        let f = analyze(&q, &env);
        assert!(f.traps.div_by_zero);
        // A literal nonzero divisor is safe; literal zero is not.
        assert!(analyze(&(Expr::var("y") / Expr::liti(2)), &env).never_traps());
        assert!(analyze(&(Expr::var("y") / Expr::liti(0)), &env).traps.div_by_zero);
    }

    #[test]
    fn float_division_never_traps() {
        let env = TyEnv::new().with("x", Ty::F64);
        let f = analyze(&(Expr::var("x") / Expr::litf(0.0)), &env);
        assert!(f.never_traps());
    }

    #[test]
    fn guard_dominates_division() {
        // if len > 0 { total / len } else { 0 }: the division is guarded.
        let e = Expr::if_(
            Expr::var("len").gt(Expr::liti(0)),
            Expr::var("total") / Expr::var("len"),
            Expr::liti(0),
        );
        let env = env_i("len").with("total", Ty::I64);
        assert!(analyze(&e, &env).never_traps());
        // Without the guard the same division may trap.
        let bare = Expr::var("total") / Expr::var("len");
        assert!(analyze(&bare, &env).traps.div_by_zero);
    }

    #[test]
    fn short_circuit_guards_rhs() {
        // x != 0 is not interval-expressible for unknown x, but x > 0 is.
        let e = Expr::var("x")
            .gt(Expr::liti(0))
            .and((Expr::liti(100) / Expr::var("x") % Expr::liti(3)).eq(Expr::liti(0)));
        let f = analyze(&e, &env_i("x"));
        assert!(f.never_traps());
    }

    #[test]
    fn constant_predicates_fold() {
        // x % 4 < 10 is always true.
        let e = (Expr::var("x") % Expr::liti(4)).lt(Expr::liti(10));
        assert_eq!(analyze(&e, &env_i("x")).bool_const, Some(true));
        // x % 4 > 10 is always false.
        let e = (Expr::var("x") % Expr::liti(4)).gt(Expr::liti(10));
        assert_eq!(analyze(&e, &env_i("x")).bool_const, Some(false));
        // Plain literals fold through logic.
        let e = Expr::litb(true).and(Expr::litb(false));
        assert_eq!(analyze(&e, &TyEnv::new()).bool_const, Some(false));
        // Data-dependent predicates don't.
        let e = (Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0));
        assert_eq!(analyze(&e, &env_i("x")).bool_const, None);
    }

    #[test]
    fn udf_calls_are_impure() {
        let e = Expr::call("f", vec![Expr::var("x")]);
        let f = analyze(&e, &env_i("x"));
        assert!(!f.pure);
        assert!(analyze(&Expr::var("x"), &env_i("x")).pure);
    }

    #[test]
    fn row_indexing_may_be_out_of_bounds() {
        let env = TyEnv::new().with("p", Ty::Row);
        let f = analyze(&Expr::var("p").row_index(Expr::liti(0)), &env);
        assert!(f.traps.index_oob);
        let f = analyze(&Expr::var("p").row_len(), &env);
        assert!(f.never_traps());
        assert_eq!(
            f.range,
            Some(Interval {
                lo: Some(0),
                hi: None
            })
        );
    }

    #[test]
    fn wrapping_overflow_widens_to_top() {
        let e = Expr::liti(i64::MAX) + Expr::liti(1);
        let f = analyze(&e, &TyEnv::new());
        assert_eq!(f.range, Some(Interval::top()));
        assert!(f.never_traps());
    }

    #[test]
    fn interval_algebra() {
        let a = Interval::new(-3, 5);
        assert!(a.contains_zero());
        assert!(!a.excludes_zero());
        assert!(Interval::new(1, 9).excludes_zero());
        assert!(Interval::new(-9, -1).excludes_zero());
        assert_eq!(
            Interval::new(0, 3).union(&Interval::new(5, 7)),
            Interval::new(0, 7)
        );
        assert_eq!(Interval::new(0, 3).intersect(&Interval::new(5, 7)), None);
        assert_eq!(Interval::exact(4).singleton(), Some(4));
    }

    /// A tiny deterministic LCG so the generator tests are reproducible
    /// without external crates.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn pick(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Generates a random i64-typed expression over variable `x`.
    fn gen_expr(rng: &mut Lcg, depth: u32) -> Expr {
        if depth == 0 {
            return match rng.pick(3) {
                0 => Expr::var("x"),
                1 => Expr::liti(rng.pick(7) as i64 - 3),
                _ => Expr::liti(rng.pick(20) as i64),
            };
        }
        match rng.pick(8) {
            0 => gen_expr(rng, depth - 1) + gen_expr(rng, depth - 1),
            1 => gen_expr(rng, depth - 1) - gen_expr(rng, depth - 1),
            2 => gen_expr(rng, depth - 1) * gen_expr(rng, depth - 1),
            3 => gen_expr(rng, depth - 1) / gen_expr(rng, depth - 1),
            4 => gen_expr(rng, depth - 1) % gen_expr(rng, depth - 1),
            5 => Expr::if_(
                gen_expr(rng, depth - 1).lt(gen_expr(rng, depth - 1)),
                gen_expr(rng, depth - 1),
                gen_expr(rng, depth - 1),
            ),
            6 => gen_expr(rng, depth - 1).min(gen_expr(rng, depth - 1)),
            _ => -gen_expr(rng, depth - 1),
        }
    }

    /// Soundness: no expression whose concrete evaluation traps is ever
    /// marked `never_traps`, and reported ranges contain the concrete
    /// result.
    #[test]
    fn seeded_generator_range_and_trap_soundness() {
        let env = env_i("x");
        let udfs = UdfRegistry::new();
        let mut rng = Lcg(0x5353_7454_454e_4f21);
        let mut trapped = 0usize;
        let mut ranged = 0usize;
        for _ in 0..400 {
            let e = gen_expr(&mut rng, 3);
            let facts = analyze(&e, &env);
            for x in [-5i64, -1, 0, 1, 2, 7, 100] {
                let renv = Env::new().with("x", Value::I64(x));
                match eval(&e, &renv, &udfs) {
                    Ok(Value::I64(v)) => {
                        if let Some(iv) = facts.range {
                            ranged += 1;
                            assert!(
                                iv.contains(v),
                                "range {iv:?} of `{e}` omits concrete value {v} at x={x}"
                            );
                        }
                    }
                    Ok(_) => {}
                    Err(_) => {
                        trapped += 1;
                        assert!(
                            facts.may_trap(),
                            "`{e}` trapped concretely at x={x} but was marked never_traps"
                        );
                    }
                }
            }
        }
        // The generator must actually exercise both properties.
        assert!(trapped > 50, "generator produced too few trapping cases");
        assert!(ranged > 200, "generator produced too few ranged cases");
    }
}
