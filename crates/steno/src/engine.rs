//! The high-level engine: `WithSteno()` as an API.
//!
//! The paper applies Steno by marking a query with the `WithSteno()`
//! extension method (§3). The [`Steno`] engine is that entry point here:
//! it runs the full optimization pipeline, caches compiled queries
//! (§3.3), and — like the real system, which "can only optimize the
//! standard LINQ queries" — transparently falls back to the unoptimized
//! iterator-based executor for shapes it does not handle.

use std::fmt;
use std::sync::Arc;

use steno_cluster::exec::{DistError, RuntimeConfig};
use steno_cluster::{ClusterSpec, DistributedCollection, JobReport, VertexEngine};
use steno_expr::{DataContext, EvalError, UdfRegistry, Value};
use steno_linq::interp;
use steno_query::typing::SourceTypes;
use steno_query::QueryExpr;
use steno_syntax::ParseError;
use steno_vm::query::OptimizeError;
use steno_vm::{CompiledQuery, QueryCache, StenoOptions, VectorizationPolicy, VmError};

/// Which executor ran a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecutionPath {
    /// The Steno pipeline: QUIL → generated loops → bytecode.
    Optimized,
    /// The unoptimized boxed-iterator interpreter (fallback).
    Fallback,
}

/// An error from the engine.
#[derive(Debug)]
pub enum StenoError {
    /// Query text failed to parse.
    Parse(ParseError),
    /// Both the optimizer and the fallback rejected the query.
    Eval(EvalError),
    /// The compiled query failed at run time.
    Vm(VmError),
    /// Optimization failed for a reason other than an unsupported shape.
    Optimize(OptimizeError),
    /// A distributed execution failed (vertex failure, exhausted retry
    /// budget, caught vertex panic, bad root source).
    Dist(DistError),
}

impl From<DistError> for StenoError {
    fn from(e: DistError) -> StenoError {
        StenoError::Dist(e)
    }
}

impl fmt::Display for StenoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StenoError::Parse(e) => write!(f, "{e}"),
            StenoError::Eval(e) => write!(f, "{e}"),
            StenoError::Vm(e) => write!(f, "{e}"),
            StenoError::Optimize(e) => write!(f, "{e}"),
            StenoError::Dist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StenoError {}

/// The query optimizer and executor.
///
/// Owns a [`QueryCache`], so repeated executions of the same query pay
/// the one-off optimization cost once (§7.1: "the compiled query object
/// can then be cached by the application").
#[derive(Default)]
pub struct Steno {
    cache: QueryCache,
    runtime: RuntimeConfig,
    options: StenoOptions,
}

impl Steno {
    /// Creates an engine with an empty query cache and the default
    /// fault-tolerance runtime (retries and straggler speculation on, no
    /// injected faults).
    pub fn new() -> Steno {
        Steno::default()
    }

    /// Sets the fault-tolerance runtime (retry policy, straggler
    /// speculation, fault injection) used by
    /// [`Steno::execute_distributed`].
    #[must_use = "with_runtime returns the configured engine"]
    pub fn with_runtime(mut self, runtime: RuntimeConfig) -> Steno {
        self.runtime = runtime;
        self
    }

    /// The engine's fault-tolerance runtime configuration.
    pub fn runtime(&self) -> &RuntimeConfig {
        &self.runtime
    }

    /// Sets the vectorization policy for every query this engine
    /// compiles. [`VectorizationPolicy::Auto`] (the default) batch-
    /// compiles eligible loops; [`VectorizationPolicy::Off`] pins the
    /// scalar tiers (ablation baselines, debugging).
    #[must_use = "with_vectorization returns the configured engine"]
    pub fn with_vectorization(mut self, policy: VectorizationPolicy) -> Steno {
        self.options.vectorize = policy;
        self
    }

    /// The engine's compilation options.
    pub fn options(&self) -> &StenoOptions {
        &self.options
    }

    /// Executes a query AST, optimizing when possible.
    ///
    /// # Errors
    ///
    /// Returns [`StenoError`] for ill-typed queries or runtime failures.
    pub fn execute(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<Value, StenoError> {
        self.execute_traced(q, ctx, udfs).map(|(v, _)| v)
    }

    /// As [`Steno::execute`], also reporting which path ran.
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`].
    pub fn execute_traced(
        &self,
        q: &QueryExpr,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<(Value, ExecutionPath), StenoError> {
        match self
            .cache
            .get_or_compile_tuned(q, SourceTypes::from(ctx), udfs, self.options)
        {
            Ok(compiled) => compiled
                .run(ctx, udfs)
                .map(|v| (v, ExecutionPath::Optimized))
                .map_err(StenoError::Vm),
            Err(OptimizeError::Lower(steno_quil::LowerError::Unsupported(_))) => {
                // The paper's behaviour: shapes Steno does not optimize
                // run through the stock iterator implementation.
                interp::execute(q, ctx, udfs)
                    .map(|v| (v, ExecutionPath::Fallback))
                    .map_err(StenoError::Eval)
            }
            Err(e) => Err(StenoError::Optimize(e)),
        }
    }

    /// Parses and executes query text.
    ///
    /// # Errors
    ///
    /// As [`Steno::execute`], plus parse errors.
    pub fn execute_text(
        &self,
        text: &str,
        ctx: &DataContext,
        udfs: &UdfRegistry,
    ) -> Result<Value, StenoError> {
        let (q, _) = steno_syntax::parse_query(text).map_err(StenoError::Parse)?;
        self.execute(&q, ctx, udfs)
    }

    /// Compiles a query without running it (inspect
    /// [`CompiledQuery::rust_source`] to see the generated loops).
    ///
    /// # Errors
    ///
    /// Returns [`StenoError::Optimize`] when the query cannot be
    /// optimized.
    pub fn compile(
        &self,
        q: &QueryExpr,
        sources: SourceTypes,
        udfs: &UdfRegistry,
    ) -> Result<Arc<CompiledQuery>, StenoError> {
        self.cache
            .get_or_compile_tuned(q, sources, udfs, self.options)
            .map_err(StenoError::Optimize)
    }

    /// `(hits, misses)` of the query cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Executes a query over a partitioned collection on the simulated
    /// cluster (§6), under the engine's fault-tolerance runtime: vertex
    /// panics are isolated, transient failures retried with backoff,
    /// stragglers speculatively duplicated, and deterministic errors
    /// surfaced byte-identical to the single-node engines.
    ///
    /// The returned [`JobReport`] records retry counts, the retry log,
    /// speculation wins, and per-vertex attempt/wall-time data alongside
    /// the usual phase timings.
    ///
    /// # Errors
    ///
    /// Returns [`StenoError::Dist`] for unloweable queries, mismatched
    /// roots, and vertex failures that survive the retry budget.
    pub fn execute_distributed(
        &self,
        q: &QueryExpr,
        input: &DistributedCollection,
        broadcast: &DataContext,
        udfs: &UdfRegistry,
        spec: &ClusterSpec,
        engine: VertexEngine,
    ) -> Result<(Value, JobReport), StenoError> {
        steno_cluster::execute_distributed_with(
            q,
            input,
            broadcast,
            udfs,
            spec,
            engine,
            &self.runtime,
        )
        .map_err(StenoError::Dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_expr::Expr;
    use steno_query::Query;

    fn ctx() -> DataContext {
        DataContext::new().with_source("xs", vec![1.0, 2.0, 3.0, 4.0])
    }

    #[test]
    fn optimized_path_runs_supported_queries() {
        let engine = Steno::new();
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let (v, path) = engine
            .execute_traced(&q, &ctx(), &UdfRegistry::new())
            .unwrap();
        assert_eq!(v, Value::F64(30.0));
        assert_eq!(path, ExecutionPath::Optimized);
    }

    #[test]
    fn unsupported_queries_fall_back_to_iterators() {
        let engine = Steno::new();
        // Concat is outside the QUIL operator classes.
        let q = Query::source("xs").concat(Query::source("xs")).count().build();
        let (v, path) = engine
            .execute_traced(&q, &ctx(), &UdfRegistry::new())
            .unwrap();
        assert_eq!(v, Value::I64(8));
        assert_eq!(path, ExecutionPath::Fallback);
    }

    #[test]
    fn text_queries_execute() {
        let engine = Steno::new();
        let v = engine
            .execute_text(
                "(from x in xs where x > 1.5 select x * x).sum()",
                &ctx(),
                &UdfRegistry::new(),
            )
            .unwrap();
        assert_eq!(v, Value::F64(29.0));
    }

    #[test]
    fn vectorization_knob_selects_the_engine() {
        use steno_vm::EngineKind;

        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let c = ctx();
        let udfs = UdfRegistry::new();

        let auto = Steno::new();
        let compiled = auto.compile(&q, SourceTypes::from(&c), &udfs).unwrap();
        assert_eq!(compiled.engine(), EngineKind::Vectorized);
        assert!(compiled.vectorized_loops() > 0);

        let scalar = Steno::new().with_vectorization(VectorizationPolicy::Off);
        let compiled_off = scalar.compile(&q, SourceTypes::from(&c), &udfs).unwrap();
        assert_eq!(compiled_off.engine(), EngineKind::Scalar);
        assert_eq!(compiled_off.vectorized_loops(), 0);

        // Both engines agree on the answer.
        assert_eq!(
            auto.execute(&q, &c, &udfs).unwrap(),
            scalar.execute(&q, &c, &udfs).unwrap()
        );
    }

    #[test]
    fn cache_amortizes_compilation() {
        let engine = Steno::new();
        let q = Query::source("xs").sum().build();
        let c = ctx();
        let udfs = UdfRegistry::new();
        for _ in 0..5 {
            engine.execute(&q, &c, &udfs).unwrap();
        }
        let (hits, misses) = engine.cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 4);
    }

    #[test]
    fn distributed_execution_through_the_facade() {
        use steno_cluster::FaultPlan;

        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let input = DistributedCollection::from_f64(
            "xs",
            (0..100).map(f64::from).collect(),
            4,
        );
        // Inject one transient failure per map vertex: the answer must
        // match the fault-free run and the report must show the retries.
        let engine = Steno::new()
            .with_runtime(RuntimeConfig::with_faults(FaultPlan::fail_each_once(4)));
        let (v, report) = engine
            .execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &UdfRegistry::new(),
                &ClusterSpec { workers: 2 },
                VertexEngine::Steno,
            )
            .unwrap();
        let clean = Steno::new()
            .execute_distributed(
                &q,
                &input,
                &DataContext::new(),
                &UdfRegistry::new(),
                &ClusterSpec { workers: 2 },
                VertexEngine::Steno,
            )
            .unwrap()
            .0;
        assert_eq!(v, clean);
        assert!(report.retries >= 4, "one retry per vertex: {}", report.retries);
    }

    #[test]
    fn ill_typed_queries_error() {
        let engine = Steno::new();
        let q = Query::source("missing").sum().build();
        assert!(engine.execute(&q, &ctx(), &UdfRegistry::new()).is_err());
        assert!(engine
            .execute_text("xs.sum() nonsense", &ctx(), &UdfRegistry::new())
            .is_err());
    }
}
