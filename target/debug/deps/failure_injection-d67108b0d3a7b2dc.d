/root/repo/target/debug/deps/failure_injection-d67108b0d3a7b2dc.d: crates/steno-vm/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-d67108b0d3a7b2dc: crates/steno-vm/tests/failure_injection.rs

crates/steno-vm/tests/failure_injection.rs:
