//! Fault-injection tests for the cluster runtime (Dryad §6's
//! re-execution contract): transient failures are retried and change
//! nothing, deterministic failures are never retried and surface
//! byte-identical to single-node runs, panics are isolated at the vertex
//! boundary, and straggler speculation preserves the answer.

use std::time::Duration;

use steno_cluster::exec::execute_distributed_with;
use steno_cluster::{
    execute_distributed, ClusterSpec, DistError, DistributedCollection, FaultKind, FaultPlan,
    RetryPolicy, RuntimeConfig, SpeculationPolicy, VertexEngine,
};
use steno_expr::{DataContext, Expr, Ty, UdfRegistry, Value};
use steno_query::{GroupResult, Query, QueryExpr};
use steno_vm::CompiledQuery;

const PARTITIONS: usize = 6;

fn f64_data(n: usize) -> Vec<f64> {
    (0..n).map(|i| (i as f64) * 0.75 - 40.0).collect()
}

/// `xs.Select(x => x * x + 1).Sum()` — an associative aggregate, so the
/// plan decomposes into per-partition partials (§6).
fn sum_query() -> QueryExpr {
    Query::source("xs")
        .select(
            Expr::var("x") * Expr::var("x") + Expr::litf(1.0),
            "x",
        )
        .sum()
        .build()
}

/// `ns.GroupBy(x => x % 5).Select((k, g) => (k, g.Count()))` — the
/// histogram shape, exercising the grouped-partial merge.
fn histogram_query() -> QueryExpr {
    Query::source("ns")
        .group_by_result(
            Expr::var("x") % Expr::liti(5),
            "x",
            GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
        )
        .build()
}

fn run(
    q: &QueryExpr,
    input: &DistributedCollection,
    engine: VertexEngine,
    runtime: &RuntimeConfig,
) -> Result<(Value, steno_cluster::JobReport), DistError> {
    let broadcast = DataContext::new();
    let udfs = UdfRegistry::new();
    let spec = ClusterSpec { workers: 3 };
    execute_distributed_with(q, input, &broadcast, &udfs, &spec, engine, runtime)
}

// ---------------------------------------------------------------------
// Transient failures: retried, answer unchanged.
// ---------------------------------------------------------------------

#[test]
fn transient_fault_is_retried_and_the_answer_is_unchanged() {
    let q = sum_query();
    let input = DistributedCollection::from_f64("xs", f64_data(600), PARTITIONS);
    for engine in [VertexEngine::Steno, VertexEngine::Linq] {
        let (clean, clean_report) = run(&q, &input, engine, &RuntimeConfig::default()).unwrap();
        assert_eq!(clean_report.retries, 0);

        let runtime = RuntimeConfig::with_faults(FaultPlan::fail_once(2));
        let (recovered, report) = run(&q, &input, engine, &runtime).unwrap();
        assert_eq!(recovered.key(), clean.key(), "engine {engine:?}");
        assert_eq!(report.retries, 1);
        assert_eq!(report.vertex_attempts[2], 2, "vertex 2 needed a retry");
        for (v, &attempts) in report.vertex_attempts.iter().enumerate() {
            if v != 2 {
                assert_eq!(attempts, 1, "vertex {v} ran clean");
            }
        }
        assert_eq!(report.retry_log.len(), 1);
        assert_eq!(report.retry_log[0].vertex, 2);
        assert_eq!(report.retry_log[0].attempt, 0);
    }
}

#[test]
fn every_vertex_failing_once_still_recovers_identically() {
    // The acceptance bar: fail each map vertex's first attempt for both
    // workload shapes; the recovered answers must be identical.
    let sum_q = sum_query();
    let sum_input = DistributedCollection::from_f64("xs", f64_data(600), PARTITIONS);
    let hist_q = histogram_query();
    let hist_input = DistributedCollection::from_i64(
        "ns",
        (0..500).map(|i| (i * 7 + 3) % 23).collect(),
        PARTITIONS,
    );

    let runtime = RuntimeConfig::with_faults(FaultPlan::fail_each_once(PARTITIONS));
    let (clean_sum, _) = run(&sum_q, &sum_input, VertexEngine::Steno, &RuntimeConfig::default())
        .unwrap();
    let (sum, sum_report) = run(&sum_q, &sum_input, VertexEngine::Steno, &runtime).unwrap();
    assert_eq!(sum.key(), clean_sum.key());
    assert!(
        sum_report.retries >= PARTITIONS,
        "expected >= {PARTITIONS} retries, got {}",
        sum_report.retries
    );

    let (clean_hist, _) = run(
        &hist_q,
        &hist_input,
        VertexEngine::Steno,
        &RuntimeConfig::default(),
    )
    .unwrap();
    let (hist, hist_report) = run(&hist_q, &hist_input, VertexEngine::Steno, &runtime).unwrap();
    assert_eq!(hist.key(), clean_hist.key());
    assert!(hist_report.retries >= PARTITIONS);
    assert!(hist_report.vertex_attempts.iter().all(|&a| a >= 2));
}

#[test]
fn retries_exhausted_surfaces_the_last_transient_error() {
    let q = sum_query();
    let input = DistributedCollection::from_f64("xs", f64_data(120), PARTITIONS);
    // Vertex 1 fails transiently on every attempt the budget allows.
    let faults = (0..8).fold(FaultPlan::none(), |p, a| {
        p.with(1, a, FaultKind::Error)
    });
    let runtime = RuntimeConfig {
        retry: RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        },
        speculation: SpeculationPolicy::disabled(),
        faults,
    };
    let err = run(&q, &input, VertexEngine::Steno, &runtime).unwrap_err();
    match err {
        DistError::RetriesExhausted {
            vertex,
            attempts,
            ref last,
        } => {
            assert_eq!(vertex, 1);
            assert_eq!(attempts, 3);
            assert!(last.contains("injected fault"), "last = {last}");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Deterministic failures: never retried, single-node-identical message.
// ---------------------------------------------------------------------

#[test]
fn deterministic_errors_are_not_retried_and_match_single_node() {
    // One partition holds a zero divisor: integer division by zero is
    // data-dependent, so re-execution must fail identically — the runtime
    // fails fast instead of retrying.
    let mut data: Vec<i64> = (1..=240).collect();
    data[200] = 0; // lands in a late partition
    let q = Query::source("ns")
        .select(Expr::liti(100) / Expr::var("x"), "x")
        .sum()
        .build();

    // The single-node reference error.
    let ctx = DataContext::new().with_source("ns", data.clone());
    let udfs = UdfRegistry::new();
    let compiled = CompiledQuery::compile(&q, (&ctx).into(), &udfs).unwrap();
    let single_node = compiled.run(&ctx, &udfs).unwrap_err().to_string();
    assert_eq!(single_node, "integer division by zero");

    let input = DistributedCollection::from_i64("ns", data, PARTITIONS);
    for engine in [VertexEngine::Steno, VertexEngine::Linq] {
        let err = run(&q, &input, engine, &RuntimeConfig::default()).unwrap_err();
        match err {
            DistError::VertexFailed {
                attempts,
                ref message,
                ..
            } => {
                assert_eq!(
                    attempts, 1,
                    "deterministic failures must not be retried ({engine:?})"
                );
                assert_eq!(
                    message, &single_node,
                    "distributed error must be byte-identical to the \
                     single-node engine ({engine:?})"
                );
            }
            other => panic!("expected VertexFailed, got {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Panic isolation.
// ---------------------------------------------------------------------

#[test]
fn panicking_udf_is_isolated_and_reported() {
    let mut udfs = UdfRegistry::new();
    udfs.register("boom", vec![Ty::F64], Ty::F64, |args| {
        let x = args[0].as_f64().unwrap_or(0.0);
        assert!(x >= 0.0, "boom: negative input");
        Value::F64(x)
    });
    let q = Query::source("xs")
        .select(Expr::call("boom", vec![Expr::var("x")]), "x")
        .sum()
        .build();
    let input = DistributedCollection::from_f64("xs", f64_data(600), PARTITIONS);
    let broadcast = DataContext::new();
    let spec = ClusterSpec { workers: 3 };

    // f64_data starts at -40.0, so partition 0 panics on every attempt:
    // the panic is caught at the vertex boundary, retried as transient,
    // and finally reported as VertexPanic — the process never aborts.
    let err = execute_distributed(
        &q,
        &input,
        &broadcast,
        &udfs,
        &spec,
        VertexEngine::Steno,
    )
    .unwrap_err();
    match err {
        DistError::VertexPanic { ref payload, .. } => {
            assert!(payload.contains("boom"), "payload = {payload}");
        }
        other => panic!("expected VertexPanic, got {other}"),
    }

    // The pool survives: the same process immediately runs a clean job.
    let ok_q = sum_query();
    let ok = execute_distributed(
        &ok_q,
        &input,
        &broadcast,
        &UdfRegistry::new(),
        &spec,
        VertexEngine::Steno,
    );
    assert!(ok.is_ok(), "a clean job after a panic must succeed");
}

#[test]
fn injected_panic_is_retried_and_recovers() {
    let q = sum_query();
    let input = DistributedCollection::from_f64("xs", f64_data(600), PARTITIONS);
    let (clean, _) = run(&q, &input, VertexEngine::Steno, &RuntimeConfig::default()).unwrap();

    let runtime = RuntimeConfig::with_faults(FaultPlan::panic_once(1));
    let (recovered, report) = run(&q, &input, VertexEngine::Steno, &runtime).unwrap();
    assert_eq!(recovered.key(), clean.key());
    assert_eq!(report.vertex_attempts[1], 2);
    assert_eq!(report.retries, 1);
}

#[test]
fn unrelenting_panics_exhaust_the_budget_as_vertex_panic() {
    let q = sum_query();
    let input = DistributedCollection::from_f64("xs", f64_data(120), PARTITIONS);
    let runtime = RuntimeConfig {
        speculation: SpeculationPolicy::disabled(),
        ..RuntimeConfig::with_faults(FaultPlan::panic_always(3, 8))
    };
    let err = run(&q, &input, VertexEngine::Steno, &runtime).unwrap_err();
    match err {
        DistError::VertexPanic { vertex, ref payload } => {
            assert_eq!(vertex, 3);
            assert!(payload.contains("injected panic"), "payload = {payload}");
        }
        other => panic!("expected VertexPanic, got {other}"),
    }
}

// ---------------------------------------------------------------------
// Straggler speculation.
// ---------------------------------------------------------------------

#[test]
fn straggler_speculation_preserves_the_answer() {
    let q = sum_query();
    let input = DistributedCollection::from_f64("xs", f64_data(600), PARTITIONS);
    let (clean, _) = run(&q, &input, VertexEngine::Steno, &RuntimeConfig::default()).unwrap();

    // Vertex 0's first attempt stalls half a second; an aggressive
    // speculation policy launches a backup which wins.
    let runtime = RuntimeConfig {
        speculation: SpeculationPolicy::aggressive(Duration::from_millis(20)),
        faults: FaultPlan::delay_once(0, Duration::from_millis(500)),
        ..RuntimeConfig::default()
    };
    let (recovered, report) = run(&q, &input, VertexEngine::Steno, &runtime).unwrap();
    assert_eq!(
        recovered.key(),
        clean.key(),
        "speculative re-execution changed the answer"
    );
    assert!(
        report.speculation_launched >= 1,
        "no backup launched for the straggler"
    );
    assert!(
        report.speculation_wins >= 1,
        "the 500ms straggler should lose to its backup"
    );
}
