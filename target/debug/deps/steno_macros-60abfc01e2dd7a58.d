/root/repo/target/debug/deps/steno_macros-60abfc01e2dd7a58.d: crates/steno-macros/src/lib.rs

/root/repo/target/debug/deps/libsteno_macros-60abfc01e2dd7a58.so: crates/steno-macros/src/lib.rs

crates/steno-macros/src/lib.rs:
