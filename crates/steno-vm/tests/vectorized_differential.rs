//! Differential testing of the batch-vectorized tier: the LINQ
//! interpreter, the scalar VM ([`VectorizationPolicy::Off`]), and the
//! vectorized VM ([`VectorizationPolicy::Auto`]) must agree bit-for-bit
//! — on results *and* on data-dependent errors.
//!
//! Vectorization reorders evaluation (a whole batch of multiplications
//! before a whole batch of additions), so bitwise agreement is the
//! strongest possible statement that the tier is an optimization and not
//! a semantics change. Error parity (`DivisionByZero` raised by the
//! right engine-independent element, never by a filtered-out lane) pins
//! the trap semantics under eager batch execution.

use steno_expr::{Column, DataContext, Expr, Ty, UdfRegistry, Value};
use steno_linq::interp;
use steno_query::{GroupResult, Query, QueryExpr};
use steno_vm::query::StenoOptions;
use steno_vm::{CompiledQuery, EngineKind, VectorizationPolicy, VmError};

const BATCH: usize = 1024;

fn x() -> Expr {
    Expr::var("x")
}

fn scalar_opts() -> StenoOptions {
    StenoOptions {
        vectorize: VectorizationPolicy::Off,
        ..StenoOptions::default()
    }
}

/// Compiles `q` twice: scalar-only and vectorization-enabled.
fn compile_pair(q: &QueryExpr, c: &DataContext, u: &UdfRegistry) -> (CompiledQuery, CompiledQuery) {
    let scalar = CompiledQuery::compile_tuned(q, c.into(), u, scalar_opts())
        .unwrap_or_else(|e| panic!("scalar compile failed for {q}: {e}"));
    let vectorized = CompiledQuery::compile_tuned(q, c.into(), u, StenoOptions::default())
        .unwrap_or_else(|e| panic!("vectorized compile failed for {q}: {e}"));
    assert_eq!(scalar.engine(), EngineKind::Scalar);
    (scalar, vectorized)
}

/// Asserts interpreter == scalar VM == vectorized VM on `q`, comparing
/// values through `key()` (bit-exact on floats, NaN-normalizing).
#[track_caller]
fn check3(q: &QueryExpr, c: &DataContext, u: &UdfRegistry) {
    let expected = interp::execute(q, c, u).expect("interpreter failed");
    let (scalar, vectorized) = compile_pair(q, c, u);
    let s = scalar.run(c, u).expect("scalar vm failed");
    let v = vectorized.run(c, u).expect("vectorized vm failed");
    assert_eq!(
        expected.key(),
        s.key(),
        "interp vs scalar mismatch for {q}"
    );
    assert_eq!(
        s.key(),
        v.key(),
        "scalar vs vectorized mismatch for {q} (engine {:?}, fallbacks {:?})",
        vectorized.engine(),
        vectorized.batch_fallbacks()
    );
}

/// As [`check3`], also requiring that the query really exercised the
/// batch tier (so the comparison is not fallback-vs-fallback).
#[track_caller]
fn check3_vectorized(q: &QueryExpr, c: &DataContext, u: &UdfRegistry) {
    let (_, vectorized) = compile_pair(q, c, u);
    assert_eq!(
        vectorized.engine(),
        EngineKind::Vectorized,
        "expected {q} to vectorize; fallbacks: {:?}",
        vectorized.batch_fallbacks()
    );
    check3(q, c, u);
}

// ---------------------------------------------------------------------
// Edge sizes: empty, singleton, batch-boundary, non-multiple-of-batch.
// ---------------------------------------------------------------------

#[test]
fn edge_sizes_agree_bit_for_bit() {
    let u = UdfRegistry::new();
    let sizes = [0, 1, 2, BATCH - 1, BATCH, BATCH + 1, 2 * BATCH + 37];
    for &n in &sizes {
        // Deterministic but non-trivial data: sign flips and fractions.
        let data: Vec<f64> = (0..n)
            .map(|i| ((i as f64) * 0.37 - (n as f64) / 3.0) * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let c = DataContext::new().with_source("xs", data);
        check3_vectorized(
            &Query::source("xs").select(x() * x(), "x").sum().build(),
            &c,
            &u,
        );
        check3_vectorized(
            &Query::source("xs")
                .where_(x().gt(Expr::litf(0.0)), "x")
                .select(x() + Expr::litf(1.5), "x")
                .sum()
                .build(),
            &c,
            &u,
        );
        check3_vectorized(&Query::source("xs").min().build(), &c, &u);
        check3_vectorized(&Query::source("xs").max().build(), &c, &u);
        check3_vectorized(&Query::source("xs").count().build(), &c, &u);
    }
}

#[test]
fn i64_edge_sizes_agree() {
    let u = UdfRegistry::new();
    for &n in &[0usize, 1, BATCH, BATCH + 1, 3 * BATCH - 5] {
        let data: Vec<i64> = (0..n as i64).map(|i| i * 7 - (n as i64) * 3).collect();
        let c = DataContext::new().with_source("ns", data);
        check3_vectorized(
            &Query::source("ns")
                .where_((x() % Expr::liti(3)).eq(Expr::liti(0)), "x")
                .select(x() * x(), "x")
                .sum()
                .build(),
            &c,
            &u,
        );
        check3_vectorized(&Query::source("ns").min().build(), &c, &u);
    }
}

// ---------------------------------------------------------------------
// Error parity: traps fire on the same inputs in both tiers, with the
// same error value, and never from filtered-out lanes.
// ---------------------------------------------------------------------

/// Runs `q` on both VM tiers and asserts the outcomes (value or error)
/// are identical; returns the common outcome.
#[track_caller]
fn outcomes_match(q: &QueryExpr, c: &DataContext, u: &UdfRegistry) -> Result<Value, VmError> {
    let (scalar, vectorized) = compile_pair(q, c, u);
    let s = scalar.run(c, u);
    let v = vectorized.run(c, u);
    match (&s, &v) {
        (Ok(a), Ok(b)) => assert_eq!(a.key(), b.key(), "value mismatch for {q}"),
        (a, b) => assert_eq!(a, b, "outcome mismatch for {q}"),
    }
    s
}

#[test]
fn division_by_zero_parity() {
    let u = UdfRegistry::new();
    // A zero divisor in the data traps identically in both tiers, and
    // the interpreter also rejects it.
    let mut data: Vec<i64> = (1..2000).collect();
    data[1500] = 0;
    let c = DataContext::new().with_source("ns", data);
    let q = Query::source("ns")
        .select(Expr::liti(840) / x(), "x")
        .sum()
        .build();
    let (_, vectorized) = compile_pair(&q, &c, &u);
    assert_eq!(vectorized.engine(), EngineKind::Vectorized);
    let out = outcomes_match(&q, &c, &u);
    assert_eq!(out, Err(VmError::DivisionByZero));

    // Remainder traps the same way.
    let qr = Query::source("ns")
        .select(Expr::liti(7) % x(), "x")
        .sum()
        .build();
    assert_eq!(outcomes_match(&qr, &c, &u), Err(VmError::DivisionByZero));
}

#[test]
fn filtered_out_zero_divisors_do_not_trap() {
    let u = UdfRegistry::new();
    // Zeros exist in the data but the Where clause removes them before
    // the division: no engine may trap on a dead lane.
    let data: Vec<i64> = (0..3000).map(|i| i % 5).collect();
    let c = DataContext::new().with_source("ns", data.clone());
    let q = Query::source("ns")
        .where_(x().ne(Expr::liti(0)), "x")
        .select(Expr::liti(60) / x(), "x")
        .sum()
        .build();
    let (_, vectorized) = compile_pair(&q, &c, &u);
    assert_eq!(
        vectorized.engine(),
        EngineKind::Vectorized,
        "fallbacks: {:?}",
        vectorized.batch_fallbacks()
    );
    let out = outcomes_match(&q, &c, &u).expect("no lane should trap");
    let expect: i64 = data.iter().filter(|&&v| v != 0).map(|&v| 60 / v).sum();
    assert_eq!(out, Value::I64(expect));

    // ...and with the filter removed, both tiers trap identically.
    let q_unfiltered = Query::source("ns")
        .select(Expr::liti(60) / x(), "x")
        .sum()
        .build();
    assert_eq!(
        outcomes_match(&q_unfiltered, &c, &u),
        Err(VmError::DivisionByZero)
    );
}

#[test]
fn index_out_of_bounds_parity() {
    let u = UdfRegistry::new();
    // Row indexing is outside the batch tier (it falls back), but the
    // engine toggle must not change observable behaviour either way.
    let c = DataContext::new().with_source(
        "pts",
        Column::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3),
    );
    let q = Query::source("pts")
        .select(Expr::var("p").row_index(Expr::liti(9)), "p")
        .sum()
        .build();
    let out = outcomes_match(&q, &c, &u);
    assert_eq!(out, Err(VmError::IndexOutOfBounds { index: 9, len: 3 }));

    // In-range indexing agrees on the value.
    let ok = Query::source("pts")
        .select(Expr::var("p").row_index(Expr::liti(1)), "p")
        .sum()
        .build();
    check3(&ok, &c, &u);
}

// ---------------------------------------------------------------------
// Seeded random pipelines across all three engines.
// ---------------------------------------------------------------------

/// A tiny deterministic PRNG (SplitMix64).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// A batch-eligible f64 transform.
fn arb_transform(rng: &mut Rng) -> Expr {
    match rng.index(10) {
        0 => x() * x(),
        1 => x() + Expr::litf(1.0),
        2 => x() - Expr::litf(2.5),
        3 => x() * Expr::litf(-0.5),
        4 => x().abs(),
        5 => x().floor(),
        6 => x().min(Expr::litf(3.0)),
        7 => x().max(Expr::litf(-3.0)),
        8 => x() / Expr::litf(4.0),
        _ => Expr::if_(
            x().gt(Expr::litf(0.0)),
            x() * Expr::litf(2.0),
            x() - Expr::litf(1.0),
        ),
    }
}

fn arb_predicate(rng: &mut Rng) -> Expr {
    match rng.index(6) {
        0 => x().gt(Expr::litf(0.0)),
        1 => x().le(Expr::litf(2.0)),
        2 => x().ne(Expr::litf(1.0)),
        3 => x().abs().lt(Expr::litf(5.0)),
        4 => x().ge(Expr::litf(-1.0)).and(x().lt(Expr::litf(4.0))),
        _ => x().lt(Expr::litf(-2.0)).or(x().gt(Expr::litf(2.0))),
    }
}

/// Random batch-eligible pipelines (Select/Where chains into a fold)
/// agree across interpreter, scalar VM, and vectorized VM.
#[test]
fn random_vectorizable_pipelines_agree() {
    let mut rng = Rng::new(0xBA7C);
    let u = UdfRegistry::new();
    for case in 0..160 {
        let len = match case % 4 {
            0 => rng.index(40),
            1 => BATCH - 1 + rng.index(3),
            2 => rng.index(3 * BATCH),
            _ => 2 * BATCH + rng.index(200),
        };
        let data: Vec<f64> = (0..len).map(|_| rng.range_f64(-50.0, 50.0)).collect();
        let mut q = Query::source("data");
        for _ in 0..rng.index(5) {
            q = if rng.next_u64() & 1 == 0 {
                q.select(arb_transform(&mut rng), "x")
            } else {
                q.where_(arb_predicate(&mut rng), "x")
            };
        }
        let q = match rng.index(5) {
            0 => q.sum().build(),
            1 => q.min().build(),
            2 => q.max().build(),
            3 => q.count().build(),
            _ => q.sum().build(),
        };
        let c = DataContext::new().with_source("data", data);
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let (scalar, vectorized) = compile_pair(&q, &c, &u);
        assert_eq!(
            vectorized.engine(),
            EngineKind::Vectorized,
            "case {case}: {q} should vectorize; fallbacks: {:?}",
            vectorized.batch_fallbacks()
        );
        let s = scalar.run(&c, &u).expect("scalar failed");
        let v = vectorized.run(&c, &u).expect("vectorized failed");
        assert_eq!(expected.key(), s.key(), "case {case}, query {q}");
        assert_eq!(s.key(), v.key(), "case {case}, query {q}");
    }
}

/// Random i64 pipelines with data-dependent division: all three engines
/// agree on the value when no divisor is zero, and the two VM tiers
/// agree on the error when one is.
#[test]
fn random_int_division_error_parity() {
    let mut rng = Rng::new(0x51D0);
    let u = UdfRegistry::new();
    let mut traps = 0;
    let mut values = 0;
    for case in 0..120 {
        let len = 1 + rng.index(2 * BATCH);
        // Half the cases are zero-free; the other half plant at least
        // one zero divisor at a random position.
        let want_zero = case % 2 == 1;
        let mut data: Vec<i64> = (0..len)
            .map(|_| {
                let d = rng.range_i64(-9, 10);
                if d == 0 {
                    1
                } else {
                    d
                }
            })
            .collect();
        if want_zero {
            let at = rng.index(len);
            data[at] = 0;
        }
        let has_zero = data.contains(&0);
        let numerator = rng.range_i64(1, 1000);
        let q = Query::source("data")
            .select(Expr::liti(numerator) / x(), "x")
            .sum()
            .build();
        let c = DataContext::new().with_source("data", data);
        let (_, vectorized) = compile_pair(&q, &c, &u);
        assert_eq!(vectorized.engine(), EngineKind::Vectorized);
        match outcomes_match(&q, &c, &u) {
            Ok(v) => {
                values += 1;
                assert!(!has_zero, "case {case}: zero divisor but no trap");
                let expected = interp::execute(&q, &c, &u).expect("interp failed");
                assert_eq!(expected.key(), v.key(), "case {case}");
            }
            Err(e) => {
                traps += 1;
                assert!(has_zero, "case {case}: trap without zero divisor");
                assert_eq!(e, VmError::DivisionByZero, "case {case}");
            }
        }
    }
    // The distribution must actually exercise both paths.
    assert!(traps > 5, "too few trapping cases: {traps}");
    assert!(values > 5, "too few value cases: {values}");
}

/// Random grouped aggregations agree across all three engines,
/// including group-entry ordering.
#[test]
fn random_grouped_aggregates_agree_vectorized() {
    let mut rng = Rng::new(0x6B0B);
    let u = UdfRegistry::new();
    for _case in 0..96 {
        let len = rng.index(2 * BATCH);
        let data: Vec<i64> = (0..len).map(|_| rng.range_i64(-20, 20)).collect();
        let modulus = rng.range_i64(1, 6);
        let use_count = rng.next_u64() & 1 == 0;
        let inner = if use_count {
            Query::over(Expr::var("g")).count().build()
        } else {
            Query::over(Expr::var("g")).sum().build()
        };
        let q = Query::source("data")
            .group_by_result(
                x() % Expr::liti(modulus),
                "x",
                GroupResult::keyed("k", "g", inner),
            )
            .build();
        let c = DataContext::new().with_source("data", data);
        check3(&q, &c, &u);
    }
}

/// Queries the batch tier cannot take (UDF calls, rows, ordering,
/// multi-yield) silently fall back and still agree everywhere.
#[test]
fn non_vectorizable_shapes_fall_back_and_agree() {
    let u = UdfRegistry::new();
    let c = DataContext::new()
        .with_source("xs", vec![3.0, -1.5, 4.0, 1.0, -5.0, 9.25, 2.0, 6.0])
        .with_source("ys", vec![0.5, 2.0, -3.0])
        .with_source("ns", vec![7i64, 1, 4, 4, -2, 8, 0, 3, 3, 5]);

    let cases = vec![
        Query::source("xs").order_by(x(), "x").build(),
        Query::source("ns").distinct().build(),
        Query::source("xs").take(3).sum().build(),
        Query::source("xs").skip(2).take(3).build(),
        Query::source("xs")
            .select_many(Query::source("ys").select(x() * Expr::var("y"), "y"), "x")
            .sum()
            .build(),
        Query::source("xs").average().build(),
        Query::source("xs").first().build(),
    ];
    for q in &cases {
        let (_, vectorized) = compile_pair(q, &c, &u);
        check3(q, &c, &u);
        // When the loop was attempted and rejected, a reason is logged.
        if vectorized.engine() == EngineKind::Scalar {
            // Fallback reasons are advisory; just ensure accessors work.
            let _ = vectorized.batch_fallbacks();
        }
    }
}

#[test]
fn boolean_lane_pipelines_agree() {
    let u = UdfRegistry::new();
    let bools: Vec<bool> = (0..(BATCH + 100)).map(|i| i % 3 != 1).collect();
    let c = DataContext::new().with_source("bs", Column::from_bool(bools));
    check3(&Query::source("bs").all_by(x(), "x").build(), &c, &u);
    check3(&Query::source("bs").any_by(x().not(), "x").build(), &c, &u);
    check3(&Query::source("bs").count().build(), &c, &u);
}

/// Divisions under a conditional used to refuse vectorization outright
/// ("trapping op under a conditional branch"). When range analysis
/// proves every divisor non-zero, the loop vectorizes with the per-lane
/// trap guards dropped — and must still agree bit-for-bit with the
/// scalar VM and the interpreter, including on lanes where the branch
/// not taken by the scalar semantics also computes the division.
#[test]
fn proven_nonzero_divisors_vectorize_and_agree() {
    let u = UdfRegistry::new();
    let collatz = Expr::if_(
        (x() % Expr::liti(2)).eq(Expr::liti(0)),
        x() / Expr::liti(2),
        Expr::liti(3) * x() + Expr::liti(1),
    );
    for &n in &[0usize, 1, 7, BATCH, BATCH + 1, 2 * BATCH + 37] {
        let data: Vec<i64> = (0..n as i64).map(|i| i * 11 - (n as i64) * 2).collect();
        let c = DataContext::new().with_source("ns", data);
        let q = Query::source("ns")
            .select(collatz.clone(), "x")
            .sum_by(x(), "x")
            .build();
        let (_, vectorized) = compile_pair(&q, &c, &u);
        assert_eq!(
            vectorized.engine(),
            EngineKind::Vectorized,
            "fallbacks: {:?}",
            vectorized.batch_fallbacks()
        );
        assert!(
            vectorized.guards_dropped() >= 2,
            "both `x % 2` and `x / 2` guards should drop: {}",
            vectorized.guards_dropped()
        );
        check3(&q, &c, &u);
    }

    // Negative control: the same shape with an unprovable divisor must
    // still refuse the batch tier and keep agreeing through fallback.
    let risky = Expr::if_(
        x().gt(Expr::liti(0)),
        Expr::liti(100) / x(),
        Expr::liti(0),
    );
    let data: Vec<i64> = (-40..40).collect();
    let c = DataContext::new().with_source("ns", data);
    let q = Query::source("ns")
        .select(risky, "x")
        .sum_by(x(), "x")
        .build();
    let (_, vectorized) = compile_pair(&q, &c, &u);
    assert_eq!(vectorized.engine(), EngineKind::Scalar);
    assert_eq!(vectorized.guards_dropped(), 0);
    check3(&q, &c, &u);
}

#[test]
fn casts_cross_lanes_bit_for_bit() {
    let u = UdfRegistry::new();
    let ns: Vec<i64> = (-700..700).map(|i| i * 13).collect();
    let c = DataContext::new().with_source("ns", ns);
    check3_vectorized(
        &Query::source("ns")
            .select(x().cast(Ty::F64), "x")
            .select(x() / Expr::litf(3.0), "x")
            .sum()
            .build(),
        &c,
        &u,
    );
    let xs: Vec<f64> = (0..1500).map(|i| (i as f64) * 0.71 - 400.0).collect();
    let c2 = DataContext::new().with_source("xs", xs);
    check3_vectorized(
        &Query::source("xs")
            .select(x().floor().cast(Ty::I64), "x")
            .sum()
            .build(),
        &c2,
        &u,
    );
}
