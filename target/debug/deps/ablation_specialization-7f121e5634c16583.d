/root/repo/target/debug/deps/ablation_specialization-7f121e5634c16583.d: crates/bench/benches/ablation_specialization.rs Cargo.toml

/root/repo/target/debug/deps/libablation_specialization-7f121e5634c16583.rmeta: crates/bench/benches/ablation_specialization.rs Cargo.toml

crates/bench/benches/ablation_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
