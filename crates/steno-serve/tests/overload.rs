//! The overload acceptance test: a seeded zipfian burst past queue
//! capacity, with injected transient faults, must shed explicitly,
//! never panic or deadlock, and answer every admitted in-deadline query
//! bit-for-bit identically to a direct `Steno::execute`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use steno::Steno;
use steno_cluster::FaultPlan;
use steno_expr::{UdfRegistry, Value};
use steno_obs::MemoryCollector;
use steno_query::QueryExpr;
use steno_serve::loadgen::{query_pool, tenant_context};
use steno_serve::{
    QueryRequest, QueryService, SaturationReport, ServeConfig, ServeError, SplitMix64, Zipf,
};

const SEED: u64 = 0x5EED_10AD;

#[test]
fn seeded_overload_sheds_explicitly_and_answers_correctly() {
    let metrics = Arc::new(MemoryCollector::new());
    let engine = Steno::new()
        .with_collector(metrics.clone())
        .with_cache_capacity(32);
    let service = QueryService::start(
        engine,
        ServeConfig {
            workers: 2,
            queue_depth: 3,
            max_in_flight: 1,
            default_deadline: Duration::from_secs(10),
            // ~20% of sequence numbers hit a transient fault on their
            // first attempt; the retries must still produce the exact
            // answers.
            faults: FaultPlan::seeded(SEED, 4096, 1, 0.2),
            ..ServeConfig::default()
        },
    );

    let pool = query_pool(8);
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = SplitMix64::new(SEED);
    let tenants: Vec<String> = (0..3).map(|t| format!("tenant-{t}")).collect();
    let ctxs: Vec<_> = (0..3)
        .map(|t| tenant_context(150_000, SEED ^ t as u64))
        .collect();
    let udfs = UdfRegistry::new();

    // Open-loop burst: 40 submissions per tenant, far past queue depth
    // 3, all before draining anything.
    let mut admitted: Vec<(usize, QueryExpr, steno_serve::QueryTicket)> = Vec::new();
    let mut shed = 0u64;
    for round in 0..40 {
        for (t, tenant) in tenants.iter().enumerate() {
            let q = pool[zipf.sample(&mut rng)].clone();
            let req = QueryRequest::new(tenant, q.clone(), ctxs[t].clone(), udfs.clone());
            match service.submit(req) {
                Ok(ticket) => admitted.push((t, q, ticket)),
                Err(ServeError::Rejected { retry_after }) => {
                    assert!(retry_after > Duration::ZERO);
                    shed += 1;
                }
                Err(e) => panic!("round {round}: unexpected admission error: {e}"),
            }
        }
    }
    assert!(shed > 0, "burst past queue capacity must shed");
    assert!(!admitted.is_empty(), "some queries must be admitted");

    // Every admitted query completes with exactly the value a direct,
    // unserved execution produces — retries, fairness rotation, and
    // cache eviction must not perturb a single bit.
    let reference = Steno::new();
    for (t, q, ticket) in admitted {
        let got = ticket.wait().unwrap_or_else(|e| panic!("query failed: {e}"));
        let want = reference.execute(&q, &ctxs[t], &udfs).unwrap();
        assert_eq!(got, want, "served answer must match direct execution");
        if let Value::F64(f) = got {
            assert!(f.is_finite());
        }
    }

    // The books balance and the fault plan actually fired.
    let report = SaturationReport::from_collector(&metrics, Duration::from_secs(1));
    assert_eq!(report.submitted, report.admitted + report.shed);
    assert_eq!(report.shed, shed);
    assert_eq!(report.failed, 0, "no admitted query may fail");
    assert!(report.retries > 0, "seeded faults must trigger retries");
    assert!(report.p99_latency_us.is_some());
}

#[test]
fn past_deadline_query_fails_in_bounded_time_under_load() {
    let service = QueryService::start(
        Steno::new(),
        ServeConfig {
            workers: 1,
            queue_depth: 8,
            max_in_flight: 1,
            default_deadline: Duration::from_secs(10),
            wait_grace: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    );
    let ctx = tenant_context(400_000, 7);
    let udfs = UdfRegistry::new();
    let pool = query_pool(4);

    // Fill the single worker with slow work, then submit a query whose
    // deadline will expire while it sits in the queue.
    let busy: Vec<_> = (0..4)
        .map(|i| {
            service
                .submit(QueryRequest::new(
                    "busy",
                    pool[i % pool.len()].clone(),
                    ctx.clone(),
                    udfs.clone(),
                ))
                .unwrap()
        })
        .collect();
    let doomed = service
        .submit(
            QueryRequest::new("busy", pool[0].clone(), ctx.clone(), udfs.clone())
                .with_deadline(Duration::from_millis(1)),
        )
        .unwrap();
    let start = Instant::now();
    assert_eq!(doomed.wait().unwrap_err(), ServeError::DeadlineExceeded);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "deadline failure must be reported in bounded time, took {:?}",
        start.elapsed()
    );
    for t in busy {
        t.wait().unwrap();
    }
}

#[test]
fn degradation_under_compile_pressure_recovers_and_stays_correct() {
    use steno_serve::{BreakerConfig, BreakerState};

    let metrics = Arc::new(MemoryCollector::new());
    let engine = Steno::new().with_collector(metrics.clone());
    let service = QueryService::start(
        engine,
        ServeConfig {
            workers: 1,
            // A zero compile budget makes every cache-missing compile a
            // pressure signal: the breaker trips as soon as the trip
            // threshold of *fresh* compiles passes through.
            breaker: BreakerConfig {
                enabled: true,
                compile_budget: Duration::ZERO,
                trip_threshold: 2,
                cooldown: Duration::from_millis(50),
                close_after: 1,
            },
            ..ServeConfig::default()
        },
    );
    let ctx = tenant_context(10_000, 11);
    let udfs = UdfRegistry::new();
    let pool = query_pool(12);

    let reference = Steno::new();
    for q in &pool {
        let got = service
            .execute_blocking(QueryRequest::new("acme", q.clone(), ctx.clone(), udfs.clone()))
            .unwrap();
        assert_eq!(got, reference.execute(q, &ctx, &udfs).unwrap());
    }
    assert!(
        service.breaker().times_opened() > 0,
        "sustained fresh compiles past a zero budget must trip the breaker"
    );
    assert!(
        metrics.counter_value("serve.degraded_compiles") > 0,
        "open breaker must degrade at least one compile"
    );

    // After the cooldown with no fresh compiles (cache hits don't touch
    // the breaker), a healthy compile closes it again.
    std::thread::sleep(Duration::from_millis(60));
    assert_ne!(service.breaker().state(), BreakerState::Closed);
    service.breaker().record_compile(Duration::ZERO, true);
    assert_eq!(service.breaker().state(), BreakerState::Closed);
}
