/root/repo/target/debug/examples/explain_profile-51657fa8e3b7714b.d: examples/explain_profile.rs Cargo.toml

/root/repo/target/debug/examples/libexplain_profile-51657fa8e3b7714b.rmeta: examples/explain_profile.rs Cargo.toml

examples/explain_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
