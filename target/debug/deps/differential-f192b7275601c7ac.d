/root/repo/target/debug/deps/differential-f192b7275601c7ac.d: crates/steno-vm/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-f192b7275601c7ac.rmeta: crates/steno-vm/tests/differential.rs Cargo.toml

crates/steno-vm/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
