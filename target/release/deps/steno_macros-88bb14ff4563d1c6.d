/root/repo/target/release/deps/steno_macros-88bb14ff4563d1c6.d: crates/steno-macros/src/lib.rs

/root/repo/target/release/deps/libsteno_macros-88bb14ff4563d1c6.so: crates/steno-macros/src/lib.rs

crates/steno-macros/src/lib.rs:
