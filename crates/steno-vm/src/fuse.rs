//! The loop-fusion tier: whole-loop kernels for scalar `f64` pipelines.
//!
//! The paper's generated C# is machine code after the JIT runs; a
//! general bytecode interpreter pays an indirect branch per instruction
//! per element, which gives away exactly the kind of overhead Steno
//! eliminates. This module closes that gap for the common case — an
//! innermost loop over an `f64` source whose body is a pure element-wise
//! pipeline feeding scalar accumulators — by compiling the *whole loop*
//! into one superinstruction that processes elements in batches:
//!
//! * transformation and predicate arithmetic runs vectorized, one tape
//!   operation over a 1024-element batch at a time (the SIMD-style
//!   execution §9 of the paper explicitly suggests), while
//! * reductions run as strict per-element folds over the batch, so
//!   floating-point results are **bit-identical** to the sequential
//!   reference semantics.
//!
//! Loops that do not fit (boxed elements, user-defined function calls,
//! grouping sinks, nested loops, stateful predicates) simply stay on the
//! general bytecode path.

use std::sync::Arc;

use crate::instr::{FReg, SinkId, SrcId};
use crate::sink::{upsert_sf, upsert_si, ScalarKey, SinkRt};

/// Batch width. One batch of slots fits comfortably in L1.
pub const BATCH: usize = 1024;

/// Absent mask marker.
pub const NO_MASK: u8 = u8::MAX;

/// A vectorized tape operation over batch slots.
///
/// Slots are written in SSA order (every destination is a fresh, higher
/// slot index), which the executor exploits to split borrows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VOp {
    /// `slot = current batch of source elements`.
    LoadX(u8),
    /// Broadcast a constant (prologue only).
    Const(u8, f64),
    /// Broadcast a loop-invariant parameter (prologue only).
    Param(u8, u8),
    /// `dst = a + b`.
    Add(u8, u8, u8),
    /// `dst = a - b`.
    Sub(u8, u8, u8),
    /// `dst = a * b`.
    Mul(u8, u8, u8),
    /// `dst = a / b`.
    Div(u8, u8, u8),
    /// `dst = a % b`.
    Rem(u8, u8, u8),
    /// `dst = a.min(b)`.
    Min(u8, u8, u8),
    /// `dst = a.max(b)`.
    Max(u8, u8, u8),
    /// `dst = -a`.
    Neg(u8, u8),
    /// `dst = a.abs()`.
    Abs(u8, u8),
    /// `dst = a.sqrt()`.
    Sqrt(u8, u8),
    /// `dst = a.floor()`.
    Floor(u8, u8),
    /// Comparison masks (1.0 / 0.0).
    Lt(u8, u8, u8),
    /// `dst = (a <= b)`.
    Le(u8, u8, u8),
    /// `dst = (a > b)`.
    Gt(u8, u8, u8),
    /// `dst = (a >= b)`.
    Ge(u8, u8, u8),
    /// `dst = (a == b)`.
    EqM(u8, u8, u8),
    /// `dst = (a != b)`.
    NeM(u8, u8, u8),
    /// Mask conjunction (`a * b`).
    AndM(u8, u8, u8),
    /// Mask disjunction (`max(a, b)`).
    OrM(u8, u8, u8),
    /// Mask negation (`1 - a`).
    NotM(u8, u8),
    /// `dst = mask ? t : e` lane-wise.
    Select {
        /// Destination slot.
        dst: u8,
        /// Mask slot.
        mask: u8,
        /// Value when the mask is set.
        t: u8,
        /// Value when the mask is clear.
        e: u8,
    },
}

/// How an accumulator folds batch values. Reductions are strict
/// (element order preserved) so results match sequential execution
/// bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Reduction {
    /// `acc += v` per surviving lane.
    Add {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
        /// Guard mask slot, or [`NO_MASK`].
        mask: u8,
    },
    /// `acc = acc.min(v)` per surviving lane.
    Min {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
        /// Guard mask slot, or [`NO_MASK`].
        mask: u8,
    },
    /// `acc = acc.max(v)` per surviving lane.
    Max {
        /// Accumulator index.
        acc: u8,
        /// Value slot.
        val: u8,
        /// Guard mask slot, or [`NO_MASK`].
        mask: u8,
    },
    /// Grouped count: `table[key] += n` per surviving lane (the fused
    /// form of the §4.3 `GroupByAggregate` sink with a Count fold).
    GroupCount {
        /// The scalar-key i64 sink.
        sink: SinkId,
        /// Key slot (f64 keys).
        key: u8,
        /// Increment per element.
        n: i64,
        /// Guard mask slot, or [`NO_MASK`].
        mask: u8,
    },
    /// Grouped sum: `table[key] += v` per surviving lane.
    GroupAddF {
        /// The scalar-key f64 sink.
        sink: SinkId,
        /// Key slot (f64 keys).
        key: u8,
        /// Value slot.
        val: u8,
        /// Guard mask slot, or [`NO_MASK`].
        mask: u8,
    },
}

/// A fused loop kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct FusedKernel {
    /// The f64 source column the loop iterates.
    pub src: SrcId,
    /// Loop-invariant f64 inputs, read from these registers at entry.
    pub params: Vec<FReg>,
    /// Accumulator registers, read at entry and written back at exit.
    pub accs: Vec<FReg>,
    /// Number of batch slots.
    pub n_slots: u8,
    /// Loop-invariant slot fills, run once.
    pub prologue: Vec<VOp>,
    /// Per-batch operations.
    pub tape: Vec<VOp>,
    /// Per-batch reductions, in statement order.
    pub reductions: Vec<Reduction>,
}

/// A shared kernel handle (keeps [`crate::instr::Instr`] small).
pub type KernelRef = Arc<FusedKernel>;

/// Executes a kernel over a data slice, updating `acc_values` (and any
/// grouped-aggregate sinks) in place.
pub fn run_kernel(
    kernel: &FusedKernel,
    data: &[f64],
    acc_values: &mut [f64],
    sinks: &mut [SinkRt],
) {
    let n_slots = kernel.n_slots as usize;
    let mut slots: Vec<[f64; BATCH]> = vec![[0.0; BATCH]; n_slots];

    // Loop-invariant fills.
    for op in &kernel.prologue {
        match *op {
            VOp::Const(d, x) => slots[d as usize] = [x; BATCH],
            VOp::Param(d, p) => slots[d as usize] = [acc_or_param(kernel, acc_values, p); BATCH],
            _ => unreachable!("prologue holds only Const/Param"),
        }
    }

    for chunk in data.chunks(BATCH) {
        let len = chunk.len();
        for op in &kernel.tape {
            exec_vop(*op, &mut slots, chunk, len);
        }
        for red in &kernel.reductions {
            match *red {
                Reduction::Add { acc, val, mask } => {
                    let v = &slots[val as usize];
                    let a = &mut acc_values[acc as usize];
                    if mask == NO_MASK {
                        for x in &v[..len] {
                            *a += *x;
                        }
                    } else {
                        let m = &slots[mask as usize];
                        for i in 0..len {
                            if m[i] != 0.0 {
                                *a += v[i];
                            }
                        }
                    }
                }
                Reduction::Min { acc, val, mask } => {
                    let v = &slots[val as usize];
                    let a = &mut acc_values[acc as usize];
                    if mask == NO_MASK {
                        for x in &v[..len] {
                            *a = a.min(*x);
                        }
                    } else {
                        let m = &slots[mask as usize];
                        for i in 0..len {
                            if m[i] != 0.0 {
                                *a = a.min(v[i]);
                            }
                        }
                    }
                }
                Reduction::Max { acc, val, mask } => {
                    let v = &slots[val as usize];
                    let a = &mut acc_values[acc as usize];
                    if mask == NO_MASK {
                        for x in &v[..len] {
                            *a = a.max(*x);
                        }
                    } else {
                        let m = &slots[mask as usize];
                        for i in 0..len {
                            if m[i] != 0.0 {
                                *a = a.max(v[i]);
                            }
                        }
                    }
                }
                Reduction::GroupCount { sink, key, n, mask } => {
                    let keys = &slots[key as usize];
                    let SinkRt::GroupAggSI {
                        index,
                        entries,
                        default,
                        ..
                    } = &mut sinks[sink as usize]
                    else {
                        unreachable!("fused group count over a non-SI sink");
                    };
                    for i in 0..len {
                        if mask != NO_MASK && slots[mask as usize][i] == 0.0 {
                            continue;
                        }
                        let slot = upsert_si(index, entries, *default, ScalarKey::F(keys[i]));
                        entries[slot].1 += n;
                    }
                }
                Reduction::GroupAddF { sink, key, val, mask } => {
                    let keys = &slots[key as usize];
                    let SinkRt::GroupAggSF {
                        index,
                        entries,
                        default,
                        ..
                    } = &mut sinks[sink as usize]
                    else {
                        unreachable!("fused group sum over a non-SF sink");
                    };
                    for i in 0..len {
                        if mask != NO_MASK && slots[mask as usize][i] == 0.0 {
                            continue;
                        }
                        let slot = upsert_sf(index, entries, *default, ScalarKey::F(keys[i]));
                        entries[slot].1 += slots[val as usize][i];
                    }
                }
            }
        }
    }
}

fn acc_or_param(kernel: &FusedKernel, acc_values: &[f64], p: u8) -> f64 {
    // Params were snapshotted into the tail of acc_values by the caller.
    acc_values[kernel.accs.len() + p as usize]
}

/// Executes one vector op. Destinations are strictly above sources (SSA),
/// so the slot array can be split for aliasing-free access.
#[inline]
fn exec_vop(op: VOp, slots: &mut [[f64; BATCH]], chunk: &[f64], len: usize) {
    macro_rules! bin {
        ($d:expr, $a:expr, $b:expr, $f:expr) => {{
            let (src, dst) = slots.split_at_mut($d as usize);
            let d = &mut dst[0];
            let a = &src[$a as usize];
            let b = &src[$b as usize];
            for i in 0..len {
                d[i] = $f(a[i], b[i]);
            }
        }};
    }
    macro_rules! un {
        ($d:expr, $a:expr, $f:expr) => {{
            let (src, dst) = slots.split_at_mut($d as usize);
            let d = &mut dst[0];
            let a = &src[$a as usize];
            for i in 0..len {
                d[i] = $f(a[i]);
            }
        }};
    }
    match op {
        VOp::LoadX(d) => slots[d as usize][..len].copy_from_slice(chunk),
        VOp::Const(..) | VOp::Param(..) => unreachable!("prologue op in tape"),
        VOp::Add(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x + y),
        VOp::Sub(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x - y),
        VOp::Mul(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x * y),
        VOp::Div(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x / y),
        VOp::Rem(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x % y),
        VOp::Min(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x.min(y)),
        VOp::Max(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x.max(y)),
        VOp::Neg(d, a) => un!(d, a, |x: f64| -x),
        VOp::Abs(d, a) => un!(d, a, |x: f64| x.abs()),
        VOp::Sqrt(d, a) => un!(d, a, |x: f64| x.sqrt()),
        VOp::Floor(d, a) => un!(d, a, |x: f64| x.floor()),
        VOp::Lt(d, a, b) => bin!(d, a, b, |x: f64, y: f64| f64::from(x < y)),
        VOp::Le(d, a, b) => bin!(d, a, b, |x: f64, y: f64| f64::from(x <= y)),
        VOp::Gt(d, a, b) => bin!(d, a, b, |x: f64, y: f64| f64::from(x > y)),
        VOp::Ge(d, a, b) => bin!(d, a, b, |x: f64, y: f64| f64::from(x >= y)),
        VOp::EqM(d, a, b) => bin!(d, a, b, |x: f64, y: f64| f64::from(x == y)),
        VOp::NeM(d, a, b) => bin!(d, a, b, |x: f64, y: f64| f64::from(x != y)),
        VOp::AndM(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x * y),
        VOp::OrM(d, a, b) => bin!(d, a, b, |x: f64, y: f64| x.max(y)),
        VOp::NotM(d, a) => un!(d, a, |x: f64| 1.0 - x),
        VOp::Select { dst, mask, t, e } => {
            let (src, dstp) = slots.split_at_mut(dst as usize);
            let d = &mut dstp[0];
            let m = &src[mask as usize];
            let tv = &src[t as usize];
            let ev = &src[e as usize];
            for i in 0..len {
                d[i] = if m[i] != 0.0 { tv[i] } else { ev[i] };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_sq_kernel() -> FusedKernel {
        // slot0 = x; slot1 = x*x; acc0 += slot1
        FusedKernel {
            src: 0,
            params: vec![],
            accs: vec![0],
            n_slots: 2,
            prologue: vec![],
            tape: vec![VOp::LoadX(0), VOp::Mul(1, 0, 0)],
            reductions: vec![Reduction::Add {
                acc: 0,
                val: 1,
                mask: NO_MASK,
            }],
        }
    }

    #[test]
    fn kernel_matches_sequential_sum_of_squares() {
        let data: Vec<f64> = (0..2500).map(|i| (i as f64) * 0.37 - 400.0).collect();
        let mut accs = vec![0.0];
        run_kernel(&sum_sq_kernel(), &data, &mut accs, &mut []);
        let mut expected = 0.0;
        for &x in &data {
            expected += x * x;
        }
        // Strict reductions: bit-identical, not just approximately equal.
        assert_eq!(accs[0].to_bits(), expected.to_bits());
    }

    #[test]
    fn masked_reduction_skips_lanes_exactly() {
        // sum of x where x > 0
        let kernel = FusedKernel {
            src: 0,
            params: vec![],
            accs: vec![0],
            n_slots: 3,
            prologue: vec![VOp::Const(1, 0.0)],
            tape: vec![VOp::LoadX(0), VOp::Gt(2, 0, 1)],
            reductions: vec![Reduction::Add {
                acc: 0,
                val: 0,
                mask: 2,
            }],
        };
        let data = vec![1.0, -2.0, 3.0, f64::NAN, 5.0, -0.0];
        let mut accs = vec![0.0];
        run_kernel(&kernel, &data, &mut accs, &mut []);
        // NaN fails the predicate and must not poison the accumulator —
        // strict masked loops branch instead of multiplying by the mask.
        assert_eq!(accs[0], 9.0);
    }

    #[test]
    fn params_broadcast_loop_invariants() {
        // sum of x * p, where p is a loop-invariant parameter = 2.5.
        let kernel = FusedKernel {
            src: 0,
            params: vec![7],
            accs: vec![0],
            n_slots: 3,
            prologue: vec![VOp::Param(1, 0)],
            tape: vec![VOp::LoadX(0), VOp::Mul(2, 0, 1)],
            reductions: vec![Reduction::Add {
                acc: 0,
                val: 2,
                mask: NO_MASK,
            }],
        };
        // acc_values layout: [accs..., params...]
        let mut accs = vec![0.0, 2.5];
        run_kernel(&kernel, &[1.0, 2.0, 3.0], &mut accs, &mut []);
        assert_eq!(accs[0], 15.0);
    }

    #[test]
    fn min_max_reductions() {
        let kernel = FusedKernel {
            src: 0,
            params: vec![],
            accs: vec![0, 1],
            n_slots: 1,
            prologue: vec![],
            tape: vec![VOp::LoadX(0)],
            reductions: vec![
                Reduction::Min {
                    acc: 0,
                    val: 0,
                    mask: NO_MASK,
                },
                Reduction::Max {
                    acc: 1,
                    val: 0,
                    mask: NO_MASK,
                },
            ],
        };
        let mut accs = vec![f64::INFINITY, f64::NEG_INFINITY];
        run_kernel(&kernel, &[3.0, -7.5, 2.0, 11.0], &mut accs, &mut []);
        assert_eq!(accs, vec![-7.5, 11.0]);
    }
}
