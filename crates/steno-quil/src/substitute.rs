//! Substitution of free variables through a QUIL chain.
//!
//! Nested chains reference outer-scope variables (the outer element, a
//! group's contents, captured values). Rewriting those references — the
//! paper's "all occurrences of `x` in the nested query are rewritten with
//! the current `elem_i` variable name" (§5.2) — must respect the binders
//! introduced along the chain: each operator's parameter shadows an outer
//! variable of the same name within that operator's own expressions.

use steno_expr::subst::subst;
use steno_expr::Expr;

use crate::ir::{AggDesc, NestedTrans, PredKind, QuilChain, QuilOp, SinkKind, SinkOp, TransKind};

fn subst_unless_shadowed(body: &Expr, bound: &[&str], name: &str, replacement: &Expr) -> Expr {
    if bound.contains(&name) {
        body.clone()
    } else {
        subst(body, name, replacement)
    }
}

fn subst_agg(agg: &AggDesc, name: &str, replacement: &Expr) -> AggDesc {
    AggDesc {
        // The seed is evaluated in the outer scope: no binders.
        init: subst(&agg.init, name, replacement),
        update: subst_unless_shadowed(
            &agg.update,
            &[&agg.acc_param, &agg.elem_param],
            name,
            replacement,
        ),
        finish: agg
            .finish
            .as_ref()
            .map(|f| subst_unless_shadowed(f, &[&agg.acc_param], name, replacement)),
        combine: agg
            .combine
            .as_ref()
            .map(|c| subst_unless_shadowed(c, &[&agg.acc_param, &agg.rhs_param], name, replacement)),
        ..agg.clone()
    }
}

fn subst_op(op: &QuilOp, name: &str, replacement: &Expr) -> QuilOp {
    match op {
        QuilOp::Trans {
            param,
            kind,
            in_ty,
            out_ty,
            span,
        } => QuilOp::Trans {
            param: param.clone(),
            kind: match kind {
                TransKind::Expr(e) => {
                    TransKind::Expr(subst_unless_shadowed(e, &[param], name, replacement))
                }
                TransKind::Nested(n) => TransKind::Nested(NestedTrans {
                    chain: if param == name {
                        n.chain.clone()
                    } else {
                        Box::new(subst_chain(&n.chain, name, replacement))
                    },
                    wrap: n.wrap.as_ref().map(|(p, e)| {
                        (
                            p.clone(),
                            subst_unless_shadowed(e, &[param, p], name, replacement),
                        )
                    }),
                }),
            },
            in_ty: in_ty.clone(),
            out_ty: out_ty.clone(),
            span: *span,
        },
        QuilOp::Pred {
            param,
            kind,
            elem_ty,
            span,
        } => QuilOp::Pred {
            param: param.clone(),
            kind: match kind {
                PredKind::Expr(e) => {
                    PredKind::Expr(subst_unless_shadowed(e, &[param], name, replacement))
                }
                PredKind::Nested(c) => PredKind::Nested(if param == name {
                    c.clone()
                } else {
                    Box::new(subst_chain(c, name, replacement))
                }),
                PredKind::Take(n) => PredKind::Take(*n),
                PredKind::Skip(n) => PredKind::Skip(*n),
                PredKind::TakeWhile(e) => {
                    PredKind::TakeWhile(subst_unless_shadowed(e, &[param], name, replacement))
                }
                PredKind::SkipWhile(e) => {
                    PredKind::SkipWhile(subst_unless_shadowed(e, &[param], name, replacement))
                }
            },
            elem_ty: elem_ty.clone(),
            span: *span,
        },
        QuilOp::Sink(s) => QuilOp::Sink(SinkOp {
            param: s.param.clone(),
            kind: match &s.kind {
                SinkKind::GroupBy {
                    key,
                    elem,
                    key_ty,
                    val_ty,
                } => SinkKind::GroupBy {
                    key: subst_unless_shadowed(key, &[&s.param], name, replacement),
                    elem: elem
                        .as_ref()
                        .map(|e| subst_unless_shadowed(e, &[&s.param], name, replacement)),
                    key_ty: key_ty.clone(),
                    val_ty: val_ty.clone(),
                },
                SinkKind::GroupByAggregate {
                    key,
                    elem,
                    agg,
                    key_param,
                    agg_param,
                    result,
                    key_ty,
                } => SinkKind::GroupByAggregate {
                    key: subst_unless_shadowed(key, &[&s.param], name, replacement),
                    elem: elem
                        .as_ref()
                        .map(|e| subst_unless_shadowed(e, &[&s.param], name, replacement)),
                    agg: if s.param == name {
                        agg.clone()
                    } else {
                        subst_agg(agg, name, replacement)
                    },
                    key_param: key_param.clone(),
                    agg_param: agg_param.clone(),
                    result: subst_unless_shadowed(
                        result,
                        &[key_param, agg_param],
                        name,
                        replacement,
                    ),
                    key_ty: key_ty.clone(),
                },
                SinkKind::OrderBy { key, descending } => SinkKind::OrderBy {
                    key: subst_unless_shadowed(key, &[&s.param], name, replacement),
                    descending: *descending,
                },
                SinkKind::Distinct => SinkKind::Distinct,
                SinkKind::ToVec => SinkKind::ToVec,
            },
            in_ty: s.in_ty.clone(),
            out_ty: s.out_ty.clone(),
            span: s.span,
        }),
    }
}

/// Replaces every free occurrence of variable `name` in the chain with
/// `replacement`, respecting the binders introduced by operator
/// parameters.
pub fn subst_chain(chain: &QuilChain, name: &str, replacement: &Expr) -> QuilChain {
    let src = match &chain.src {
        crate::ir::SrcDesc::Expr { expr, elem_ty } => crate::ir::SrcDesc::Expr {
            expr: subst(expr, name, replacement),
            elem_ty: elem_ty.clone(),
        },
        other => other.clone(),
    };
    QuilChain {
        src,
        ops: chain
            .ops
            .iter()
            .map(|op| subst_op(op, name, replacement))
            .collect(),
        agg: chain.agg.as_ref().map(|a| subst_agg(a, name, replacement)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SrcDesc;
    use steno_expr::Ty;

    fn chain_over_var(v: &str) -> QuilChain {
        QuilChain {
            src: SrcDesc::Expr {
                expr: Expr::var(v),
                elem_ty: Ty::F64,
            },
            ops: vec![QuilOp::Trans {
                param: "y".into(),
                kind: TransKind::Expr(Expr::var("y") * Expr::var("scale")),
                in_ty: Ty::F64,
                out_ty: Ty::F64,
                span: crate::ir::OpSpan::none(),
            }],
            agg: None,
        }
    }

    #[test]
    fn substitutes_source_and_bodies() {
        let c = chain_over_var("g");
        let s = subst_chain(&c, "g", &Expr::var("kv").field(1));
        match &s.src {
            SrcDesc::Expr { expr, .. } => assert_eq!(expr.to_string(), "kv.1"),
            other => panic!("unexpected source {other:?}"),
        }
        let s2 = subst_chain(&c, "scale", &Expr::litf(2.0));
        match &s2.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Expr(e),
                ..
            } => assert_eq!(e.to_string(), "(y * 2.0)"),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn operator_parameter_shadows() {
        let c = chain_over_var("g");
        // `y` is the Trans parameter: substituting `y` must not touch the body.
        let s = subst_chain(&c, "y", &Expr::litf(9.0));
        match &s.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Expr(e),
                ..
            } => assert_eq!(e.to_string(), "(y * scale)"),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn agg_params_shadow_in_update_but_not_init() {
        let agg = AggDesc {
            kind: crate::ir::AggKind::Fold,
            acc_ty: Ty::F64,
            out_ty: Ty::F64,
            elem_ty: Ty::F64,
            init: Expr::var("seed"),
            acc_param: "acc".into(),
            elem_param: "x".into(),
            rhs_param: "rhs".into(),
            update: Expr::var("acc") + Expr::var("x"),
            finish: None,
            combine: None,
        };
        let chain = QuilChain {
            src: SrcDesc::Expr {
                expr: Expr::var("g"),
                elem_ty: Ty::F64,
            },
            ops: vec![],
            agg: Some(agg),
        };
        let s = subst_chain(&chain, "seed", &Expr::litf(5.0));
        assert_eq!(s.agg.as_ref().unwrap().init.to_string(), "5.0");
        // `acc` is bound in update: substituting it is a no-op there.
        let s = subst_chain(&chain, "acc", &Expr::litf(1.0));
        assert_eq!(s.agg.as_ref().unwrap().update.to_string(), "(acc + x)");
    }
}
