/root/repo/target/debug/deps/pipeline_properties-f9b79518efab34ea.d: tests/pipeline_properties.rs

/root/repo/target/debug/deps/pipeline_properties-f9b79518efab34ea: tests/pipeline_properties.rs

tests/pipeline_properties.rs:
