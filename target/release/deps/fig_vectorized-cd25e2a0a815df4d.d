/root/repo/target/release/deps/fig_vectorized-cd25e2a0a815df4d.d: crates/bench/src/bin/fig_vectorized.rs

/root/repo/target/release/deps/fig_vectorized-cd25e2a0a815df4d: crates/bench/src/bin/fig_vectorized.rs

crates/bench/src/bin/fig_vectorized.rs:
