//! The distributed k-means of §7.2, run to convergence on the simulated
//! cluster, comparing Steno-optimized and unoptimized vertices.
//!
//! Run with `cargo run --release --example distributed_kmeans`.
//!
//! Pass `--faults` to additionally run one iteration under deterministic
//! fault injection (every map vertex fails its first attempt, one vertex
//! straggles) and print the retry/speculation section of the
//! [`JobReport`] — demonstrating Dryad's §6 re-execution contract: the
//! recovered run returns the identical answer.

use std::time::Duration;

use steno::cluster::{execute_distributed, ClusterSpec, DistributedCollection, VertexEngine};
use steno::prelude::*;

// The workload builders live in the bench crate's public API; this
// example re-creates them inline to stay self-contained.

fn clustered_points(n: usize, dim: usize, centers: &[Vec<f64>], seed: u64) -> Vec<f64> {
    use steno_repro::prng::SplitMix64;
    let mut rng = SplitMix64::new(seed);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let c = &centers[rng.index(centers.len())];
        for coord in c.iter().take(dim) {
            data.push(coord + rng.range_f64(-0.5, 0.5));
        }
    }
    data
}

fn udfs(dim: usize) -> UdfRegistry {
    let mut u = UdfRegistry::new();
    u.register("dist2", vec![Ty::Row, Ty::Row], Ty::F64, |args| {
        let a = args[0].as_row().unwrap();
        let b = args[1].as_row().unwrap();
        Value::F64(a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum())
    });
    u.register("vadd", vec![Ty::Row, Ty::Row], Ty::Row, |args| {
        let a = args[0].as_row().unwrap();
        let b = args[1].as_row().unwrap();
        Value::row(a.iter().zip(b.iter()).map(|(x, y)| x + y).collect())
    });
    u.register("vzero", vec![], Ty::Row, move |_| Value::row(vec![0.0; dim]));
    u
}

/// Step 1 of each iteration (§7.2) as a declarative query: assign each
/// point to its nearest centroid and compute per-cluster partial sums.
fn assignment_query() -> QueryExpr {
    let p = || Expr::var("p");
    let nearest = Query::source("centroids")
        .select(
            Expr::mk_pair(
                Expr::var("c").field(0),
                Expr::call("dist2", vec![p(), Expr::var("c").field(1)]),
            ),
            "c",
        )
        .aggregate(
            Expr::mk_pair(Expr::mk_pair(Expr::liti(-1), p()), Expr::litf(f64::INFINITY)),
            "best",
            "cur",
            Expr::if_(
                Expr::var("cur").field(1).lt(Expr::var("best").field(1)),
                Expr::mk_pair(
                    Expr::mk_pair(Expr::var("cur").field(0), p()),
                    Expr::var("cur").field(1),
                ),
                Expr::var("best"),
            ),
        );
    let partial_sum = Query::over(Expr::var("g")).aggregate_assoc(
        Expr::mk_pair(Expr::call("vzero", vec![]), Expr::liti(0)),
        "acc",
        "pt",
        Expr::mk_pair(
            Expr::call("vadd", vec![Expr::var("acc").field(0), Expr::var("pt")]),
            Expr::var("acc").field(1) + Expr::liti(1),
        ),
        steno::query::QFn2::new(
            "a",
            "b",
            Expr::mk_pair(
                Expr::call("vadd", vec![Expr::var("a").field(0), Expr::var("b").field(0)]),
                Expr::var("a").field(1) + Expr::var("b").field(1),
            ),
        ),
    );
    Query::source("points")
        .select_query(nearest, "p")
        .select(Expr::var("kv").field(0), "kv")
        .group_by_elem_result(
            Expr::var("x").field(0),
            Expr::var("x").field(1),
            "x",
            GroupResult::keyed("k", "g", partial_sum.build()),
        )
        .build()
}

fn centroid_column(centroids: &[Vec<f64>]) -> Column {
    Column::from_values(
        centroids
            .iter()
            .enumerate()
            .map(|(i, c)| Value::pair(Value::I64(i as i64), Value::row(c.clone())))
            .collect(),
    )
}

/// One assignment iteration under deterministic fault injection: every
/// map vertex fails its first attempt, vertex 0 straggles, and the
/// recovered answer must equal the fault-free one.
fn faulted_iteration(
    q: &QueryExpr,
    input: &DistributedCollection,
    broadcast: &DataContext,
    registry: &UdfRegistry,
    spec: &ClusterSpec,
) {
    use steno::cluster::exec::execute_distributed_with;
    use steno::cluster::{FaultKind, FaultPlan, RuntimeConfig, SpeculationPolicy};

    let partitions = input.partition_count();
    let faults = (0..partitions)
        .fold(FaultPlan::none(), |p, v| p.with(v, 0, FaultKind::Error))
        // The retry (attempt 1) of vertex 0 stalls: a straggler for the
        // speculative backup to beat.
        .with(0, 1, FaultKind::Delay(Duration::from_millis(400)));
    let runtime = RuntimeConfig {
        speculation: SpeculationPolicy::aggressive(Duration::from_millis(40)),
        faults,
        ..RuntimeConfig::default()
    };

    let (clean, _) =
        execute_distributed(q, input, broadcast, registry, spec, VertexEngine::Steno)
            .expect("fault-free iteration failed");
    let (recovered, report) = execute_distributed_with(
        q,
        input,
        broadcast,
        registry,
        spec,
        VertexEngine::Steno,
        &runtime,
    )
    .expect("faulted iteration failed to recover");
    assert_eq!(
        recovered.key(),
        clean.key(),
        "re-execution changed the answer"
    );

    println!("--- fault-injected iteration (--faults) ---");
    println!(
        "every map vertex failed attempt 0; vertex 0's retry stalled {:?}",
        Duration::from_millis(400)
    );
    println!(
        "recovered: retries {}, speculative backups launched {}, speculative wins {}",
        report.retries, report.speculation_launched, report.speculation_wins
    );
    println!("per-vertex attempts: {:?}", report.vertex_attempts);
    println!("retry log:");
    for ev in &report.retry_log {
        println!("  {ev}");
    }
    println!("answer identical to the fault-free run ✓\n");
}

fn main() {
    let with_faults = std::env::args().any(|a| a == "--faults");
    let dim = 8;
    let k = 4;
    let n = 40_000;
    let partitions = 8;
    let true_centers: Vec<Vec<f64>> = (0..k)
        .map(|i| (0..dim).map(|d| ((i * 7 + d) % 11) as f64).collect())
        .collect();
    let data = clustered_points(n, dim, &true_centers, 13);
    let input = DistributedCollection::from_rows("points", data.clone(), dim, partitions);
    let registry = udfs(dim);
    let q = assignment_query();
    let spec = ClusterSpec { workers: 4 };

    // Deliberately bad initial centroids.
    let mut centroids: Vec<Vec<f64>> = (0..k)
        .map(|i| data[i * dim..(i + 1) * dim].to_vec())
        .collect();

    println!("distributed k-means: {n} points, dim {dim}, k={k}, {partitions} partitions\n");
    if with_faults {
        let broadcast = DataContext::new().with_source("centroids", centroid_column(&centroids));
        faulted_iteration(&q, &input, &broadcast, &registry, &spec);
    }
    for iter in 0..8 {
        let broadcast = DataContext::new().with_source("centroids", centroid_column(&centroids));
        let (result, report) = execute_distributed(
            &q,
            &input,
            &broadcast,
            &registry,
            &spec,
            VertexEngine::Steno,
        )
        .expect("iteration failed");
        // Also run the unoptimized vertices for comparison (same plan).
        let (_, linq_report) = execute_distributed(
            &q,
            &input,
            &broadcast,
            &registry,
            &spec,
            VertexEngine::Linq,
        )
        .expect("iteration failed");

        // Step 2: recompute centroids on the driver.
        let mut movement = 0.0;
        let mut next = centroids.clone();
        for row in result.as_seq().unwrap() {
            let (kid, agg) = row.as_pair().unwrap();
            let id = kid.as_i64().unwrap() as usize;
            let (sum, count) = agg.as_pair().unwrap();
            let cnt = count.as_i64().unwrap();
            if cnt > 0 {
                let s = sum.as_row().unwrap();
                let fresh: Vec<f64> = s.iter().map(|x| x / cnt as f64).collect();
                movement += fresh
                    .iter()
                    .zip(&centroids[id])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                next[id] = fresh;
            }
        }
        centroids = next;
        let steno_t = report.map_wall + report.reduce_wall;
        let linq_t = linq_report.map_wall + linq_report.reduce_wall;
        println!(
            "iter {iter}: moved {movement:>9.4}   steno {steno_t:>9.2?}  unoptimized {linq_t:>9.2?}  ({:.2}x)  exchanged {} partials",
            linq_t.as_secs_f64() / steno_t.as_secs_f64(),
            report.exchanged_elements,
        );
        if movement < 1e-9 {
            println!("\nconverged after {} iterations", iter + 1);
            break;
        }
    }
    println!("\nfinal centroids:");
    for (i, c) in centroids.iter().enumerate() {
        let rounded: Vec<f64> = c.iter().map(|x| (x * 100.0).round() / 100.0).collect();
        println!("  cluster {i}: {rounded:?}");
    }
}
