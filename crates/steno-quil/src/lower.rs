//! Lowering query ASTs to QUIL chains (§3.1).
//!
//! "Steno translates this AST into a chain of operators, by post-order
//! traversing the tree, and yielding a canonical operator for each
//! method-call expression." Lowering also resolves operator overloads,
//! annotates every operator with element types, canonicalizes the built-in
//! aggregates into [`AggDesc`] folds, and — when enabled — inserts the
//! specialized `GroupByAggregate` sink for aggregating result selectors
//! (§4.3).
//!
//! Operators Steno does not know how to optimize (e.g. `Concat`) are
//! reported as [`LowerError::Unsupported`]; callers fall back to the
//! unoptimized LINQ executor, exactly as the real system leaves
//! unoptimizable queries to the stock LINQ implementation.

use std::fmt;

use steno_expr::subst::subst;
use steno_expr::typecheck::TyEnv;
use steno_expr::{Expr, Ty, TypeError, UdfRegistry};
use steno_query::typing::{expr_ty, SourceTypes};
use steno_query::{AggOp, GroupResult, QBody, QFn, QueryExpr, SourceRef};

use crate::grammar::Pda;
use crate::ir::{
    AggDesc, AggKind, NestedTrans, OpSpan, PredKind, QuilChain, QuilOp, SinkKind, SinkOp, SrcDesc,
    TransKind,
};
use crate::substitute::subst_chain;

/// Options controlling lowering.
#[derive(Clone, Copy, Debug)]
pub struct LowerOptions {
    /// Insert the specialized `GroupByAggregate` sink for aggregating
    /// result selectors (§4.3). Disabling this yields the naive
    /// GroupBy-then-reduce plan, used by the specialization ablation.
    pub specialize_group_aggregate: bool,
}

impl Default for LowerOptions {
    fn default() -> LowerOptions {
        LowerOptions {
            specialize_group_aggregate: true,
        }
    }
}

/// An error produced during lowering.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// The query is ill-typed.
    Type(TypeError),
    /// The query uses a shape Steno does not optimize; callers should fall
    /// back to the unoptimized executor.
    Unsupported(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Type(e) => write!(f, "type error during lowering: {e}"),
            LowerError::Unsupported(msg) => write!(f, "unsupported query shape: {msg}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<TypeError> for LowerError {
    fn from(e: TypeError) -> LowerError {
        LowerError::Type(e)
    }
}

fn unsupported(msg: impl Into<String>) -> LowerError {
    LowerError::Unsupported(msg.into())
}

struct Lowerer<'a> {
    sources: &'a SourceTypes,
    udfs: &'a UdfRegistry,
    opts: LowerOptions,
}

impl<'a> Lowerer<'a> {
    fn expr_ty_with(&self, e: &Expr, env: &TyEnv, param: &str, ty: &Ty) -> Result<Ty, LowerError> {
        let mut inner = env.clone();
        inner.bind(param.to_string(), ty.clone());
        Ok(expr_ty(e, &inner, self.udfs)?)
    }

    fn lower_chain(&self, q: &QueryExpr, env: &TyEnv) -> Result<QuilChain, LowerError> {
        match q {
            QueryExpr::Source(s) => {
                let src = match s {
                    SourceRef::Named(name) => {
                        let elem_ty = self
                            .sources
                            .get(name)
                            .cloned()
                            .ok_or_else(|| {
                                LowerError::Type(TypeError::UnboundVariable(format!(
                                    "source `{name}`"
                                )))
                            })?;
                        SrcDesc::Collection {
                            name: name.clone(),
                            elem_ty,
                        }
                    }
                    SourceRef::Range { start, count } => SrcDesc::Range {
                        start: *start,
                        count: *count,
                    },
                    SourceRef::Repeat { value, count } => SrcDesc::Repeat {
                        value: value.clone(),
                        count: *count,
                    },
                    SourceRef::Expr(e) => {
                        let elem_ty = match expr_ty(e, env, self.udfs)? {
                            Ty::Seq(t) => *t,
                            Ty::Row => Ty::F64,
                            other => {
                                return Err(LowerError::Type(TypeError::Mismatch {
                                    context: "query source".into(),
                                    expected: "sequence".into(),
                                    found: other,
                                }))
                            }
                        };
                        SrcDesc::Expr {
                            expr: e.clone(),
                            elem_ty,
                        }
                    }
                };
                Ok(QuilChain {
                    src,
                    ops: Vec::new(),
                    agg: None,
                })
            }
            QueryExpr::Select { input, f } => {
                let mut chain = self.input_chain(input, env)?;
                let in_ty = chain.elem_ty();
                let span = OpSpan::at(chain.ops.len() as u32, "Select");
                let op = match &f.body {
                    QBody::Expr(e) => {
                        let out_ty = self.expr_ty_with(e, env, &f.param, &in_ty)?;
                        QuilOp::Trans {
                            param: f.param.clone(),
                            kind: TransKind::Expr(e.clone()),
                            in_ty,
                            out_ty,
                            span,
                        }
                    }
                    QBody::Query(nested) => {
                        let mut inner_env = env.clone();
                        inner_env.bind(f.param.clone(), in_ty.clone());
                        let nested_chain = self.lower_chain(nested, &inner_env)?;
                        if !nested_chain.is_scalar() {
                            return Err(unsupported(
                                "Select with a sequence-valued nested query; use SelectMany",
                            ));
                        }
                        let out_ty = nested_chain.result_ty();
                        QuilOp::Trans {
                            param: f.param.clone(),
                            kind: TransKind::Nested(NestedTrans {
                                chain: Box::new(nested_chain),
                                wrap: None,
                            }),
                            in_ty,
                            out_ty,
                            span,
                        }
                    }
                };
                chain.ops.push(op);
                Ok(chain)
            }
            QueryExpr::Where { input, p } => {
                let mut chain = self.input_chain(input, env)?;
                let elem_ty = chain.elem_ty();
                let kind = match &p.body {
                    QBody::Expr(e) => {
                        let t = self.expr_ty_with(e, env, &p.param, &elem_ty)?;
                        if t != Ty::Bool {
                            return Err(LowerError::Type(TypeError::Mismatch {
                                context: "Where predicate".into(),
                                expected: "bool".into(),
                                found: t,
                            }));
                        }
                        PredKind::Expr(e.clone())
                    }
                    QBody::Query(nested) => {
                        let mut inner_env = env.clone();
                        inner_env.bind(p.param.clone(), elem_ty.clone());
                        let nested_chain = self.lower_chain(nested, &inner_env)?;
                        if nested_chain.result_ty() != Ty::Bool {
                            return Err(LowerError::Type(TypeError::Mismatch {
                                context: "Where predicate query".into(),
                                expected: "bool".into(),
                                found: nested_chain.result_ty(),
                            }));
                        }
                        PredKind::Nested(Box::new(nested_chain))
                    }
                };
                let span = OpSpan::at(chain.ops.len() as u32, "Where");
                chain.ops.push(QuilOp::Pred {
                    param: p.param.clone(),
                    kind,
                    elem_ty,
                    span,
                });
                Ok(chain)
            }
            QueryExpr::SelectMany { input, f } => {
                let mut chain = self.input_chain(input, env)?;
                let in_ty = chain.elem_ty();
                let mut inner_env = env.clone();
                inner_env.bind(f.param.clone(), in_ty.clone());
                let nested_chain = match &f.body {
                    QBody::Query(nested) => self.lower_chain(nested, &inner_env)?,
                    QBody::Expr(e) => {
                        // SelectMany over a sequence-valued expression is a
                        // nested chain with that expression as its source.
                        let elem_ty = match expr_ty(e, &inner_env, self.udfs)? {
                            Ty::Seq(t) => *t,
                            Ty::Row => Ty::F64,
                            other => {
                                return Err(LowerError::Type(TypeError::Mismatch {
                                    context: "SelectMany selector".into(),
                                    expected: "sequence".into(),
                                    found: other,
                                }))
                            }
                        };
                        QuilChain {
                            src: SrcDesc::Expr {
                                expr: e.clone(),
                                elem_ty,
                            },
                            ops: Vec::new(),
                            agg: None,
                        }
                    }
                };
                if nested_chain.is_scalar() {
                    return Err(unsupported(
                        "SelectMany with a scalar-valued nested query; use Select",
                    ));
                }
                let out_ty = nested_chain.elem_ty();
                let span = OpSpan::at(chain.ops.len() as u32, "SelectMany");
                chain.ops.push(QuilOp::Trans {
                    param: f.param.clone(),
                    kind: TransKind::Nested(NestedTrans {
                        chain: Box::new(nested_chain),
                        wrap: None,
                    }),
                    in_ty,
                    out_ty,
                    span,
                });
                Ok(chain)
            }
            QueryExpr::Take { input, count } => {
                self.stateful_pred(input, env, PredKind::Take(*count), "it")
            }
            QueryExpr::Skip { input, count } => {
                self.stateful_pred(input, env, PredKind::Skip(*count), "it")
            }
            QueryExpr::TakeWhile { input, p } => {
                let body = self.expr_pred_body(p)?;
                self.stateful_pred(input, env, PredKind::TakeWhile(body), &p.param)
            }
            QueryExpr::SkipWhile { input, p } => {
                let body = self.expr_pred_body(p)?;
                self.stateful_pred(input, env, PredKind::SkipWhile(body), &p.param)
            }
            QueryExpr::GroupBy {
                input,
                key,
                elem,
                result,
            } => self.lower_group_by(input, key, elem.as_ref(), result.as_ref(), env),
            QueryExpr::OrderBy {
                input,
                key,
                descending,
            } => {
                let mut chain = self.input_chain(input, env)?;
                let elem_ty = chain.elem_ty();
                let key_body = match &key.body {
                    QBody::Expr(e) => e.clone(),
                    QBody::Query(_) => {
                        return Err(unsupported("OrderBy with a nested-query key selector"))
                    }
                };
                let _ = self.expr_ty_with(&key_body, env, &key.param, &elem_ty)?;
                let span = OpSpan::at(chain.ops.len() as u32, "OrderBy");
                chain.ops.push(QuilOp::Sink(SinkOp {
                    param: key.param.clone(),
                    kind: SinkKind::OrderBy {
                        key: key_body,
                        descending: *descending,
                    },
                    in_ty: elem_ty.clone(),
                    out_ty: elem_ty,
                    span,
                }));
                Ok(chain)
            }
            QueryExpr::Distinct { input } => {
                let mut chain = self.input_chain(input, env)?;
                let elem_ty = chain.elem_ty();
                let span = OpSpan::at(chain.ops.len() as u32, "Distinct");
                chain.ops.push(QuilOp::Sink(SinkOp {
                    param: "it".into(),
                    kind: SinkKind::Distinct,
                    in_ty: elem_ty.clone(),
                    out_ty: elem_ty,
                    span,
                }));
                Ok(chain)
            }
            QueryExpr::ToVec { input } => {
                let mut chain = self.input_chain(input, env)?;
                let elem_ty = chain.elem_ty();
                let span = OpSpan::at(chain.ops.len() as u32, "ToVec");
                chain.ops.push(QuilOp::Sink(SinkOp {
                    param: "it".into(),
                    kind: SinkKind::ToVec,
                    in_ty: elem_ty.clone(),
                    out_ty: elem_ty,
                    span,
                }));
                Ok(chain)
            }
            QueryExpr::Concat { .. } => Err(unsupported(
                "Concat is not in the QUIL operator classes; executed unoptimized",
            )),
            QueryExpr::Join { .. } => Err(unsupported(
                "Join must be canonicalized into its SelectMany form before \
                 lowering (QueryExpr::canonicalize / Query::build)",
            )),
            QueryExpr::Aggregate {
                input,
                seed,
                func,
                combine,
            } => {
                let mut chain = self.input_chain(input, env)?;
                let elem_ty = chain.elem_ty();
                let acc_ty = expr_ty(seed, env, self.udfs)?;
                // Verify the fold body type.
                let mut fenv = env.clone();
                fenv.bind(func.param0.clone(), acc_ty.clone());
                fenv.bind(func.param1.clone(), elem_ty.clone());
                let body_ty = expr_ty(&func.body, &fenv, self.udfs)?;
                if body_ty != acc_ty {
                    return Err(LowerError::Type(TypeError::Mismatch {
                        context: "Aggregate function".into(),
                        expected: acc_ty.to_string(),
                        found: body_ty,
                    }));
                }
                let combine_expr = combine.as_ref().map(|c| {
                    // Rename the combiner parameters onto the canonical
                    // (acc, rhs) names, avoiding capture with a temporary.
                    let tmp = subst(&c.body, &c.param0, &Expr::var("__combine_lhs"));
                    let tmp = subst(&tmp, &c.param1, &Expr::var(func.param0.clone() + "__rhs"));
                    subst(&tmp, "__combine_lhs", &Expr::var(func.param0.clone()))
                });
                chain.agg = Some(AggDesc {
                    kind: AggKind::Fold,
                    acc_ty: acc_ty.clone(),
                    out_ty: acc_ty,
                    elem_ty,
                    init: seed.clone(),
                    acc_param: func.param0.clone(),
                    elem_param: func.param1.clone(),
                    rhs_param: func.param0.clone() + "__rhs",
                    update: func.body.clone(),
                    finish: None,
                    combine: combine_expr,
                });
                Ok(chain)
            }
            QueryExpr::Agg { input, op, f } => {
                if f.is_some() {
                    return Err(unsupported(
                        "shorthand aggregate overloads must be canonicalized before lowering",
                    ));
                }
                let mut chain = self.input_chain(input, env)?;
                let elem_ty = chain.elem_ty();
                chain.agg = Some(builtin_agg(*op, &elem_ty)?);
                Ok(chain)
            }
        }
    }

    /// Lowers `input` and rejects chains that already ended in an
    /// aggregate (the grammar's "Agg may only appear as the penultimate
    /// symbol").
    fn input_chain(&self, input: &QueryExpr, env: &TyEnv) -> Result<QuilChain, LowerError> {
        let chain = self.lower_chain(input, env)?;
        if chain.is_scalar() {
            return Err(unsupported("operator applied after an aggregate"));
        }
        Ok(chain)
    }

    fn expr_pred_body(&self, p: &QFn) -> Result<Expr, LowerError> {
        match &p.body {
            QBody::Expr(e) => Ok(e.clone()),
            QBody::Query(_) => Err(unsupported(
                "TakeWhile/SkipWhile with nested-query predicates",
            )),
        }
    }

    fn stateful_pred(
        &self,
        input: &QueryExpr,
        env: &TyEnv,
        kind: PredKind,
        param: &str,
    ) -> Result<QuilChain, LowerError> {
        let mut chain = self.input_chain(input, env)?;
        let elem_ty = chain.elem_ty();
        if let PredKind::TakeWhile(e) | PredKind::SkipWhile(e) = &kind {
            let t = self.expr_ty_with(e, env, param, &elem_ty)?;
            if t != Ty::Bool {
                return Err(LowerError::Type(TypeError::Mismatch {
                    context: "While predicate".into(),
                    expected: "bool".into(),
                    found: t,
                }));
            }
        }
        let operator = match &kind {
            PredKind::Take(_) => "Take",
            PredKind::Skip(_) => "Skip",
            PredKind::TakeWhile(_) => "TakeWhile",
            PredKind::SkipWhile(_) => "SkipWhile",
            PredKind::Expr(_) | PredKind::Nested(_) => "Where",
        };
        let span = OpSpan::at(chain.ops.len() as u32, operator);
        chain.ops.push(QuilOp::Pred {
            param: param.to_string(),
            kind,
            elem_ty,
            span,
        });
        Ok(chain)
    }

    fn lower_group_by(
        &self,
        input: &QueryExpr,
        key: &QFn,
        elem: Option<&QFn>,
        result: Option<&GroupResult>,
        env: &TyEnv,
    ) -> Result<QuilChain, LowerError> {
        let mut chain = self.input_chain(input, env)?;
        let in_ty = chain.elem_ty();
        let key_body = match &key.body {
            QBody::Expr(e) => e.clone(),
            QBody::Query(_) => return Err(unsupported("GroupBy with a nested-query key selector")),
        };
        let key_ty = self.expr_ty_with(&key_body, env, &key.param, &in_ty)?;
        // Rename the element selector onto the key selector's parameter so
        // the sink has a single binder.
        let elem_body = match elem {
            None => None,
            Some(sel) => match &sel.body {
                QBody::Expr(e) => Some(subst(e, &sel.param, &Expr::var(key.param.clone()))),
                QBody::Query(_) => {
                    return Err(unsupported("GroupBy with a nested-query element selector"))
                }
            },
        };
        let val_ty = match &elem_body {
            None => in_ty.clone(),
            Some(e) => self.expr_ty_with(e, env, &key.param, &in_ty)?,
        };

        let Some(r) = result else {
            let out_ty = Ty::pair(key_ty.clone(), Ty::seq(val_ty.clone()));
            let span = OpSpan::at(chain.ops.len() as u32, "GroupBy");
            chain.ops.push(QuilOp::Sink(SinkOp {
                param: key.param.clone(),
                kind: SinkKind::GroupBy {
                    key: key_body,
                    elem: elem_body,
                    key_ty,
                    val_ty,
                },
                in_ty,
                out_ty,
                span,
            }));
            return Ok(chain);
        };

        // Lower the per-group aggregation query with the group in scope.
        let mut genv = env.clone();
        genv.bind(r.group_param.clone(), Ty::seq(val_ty.clone()));
        let gchain = self.lower_chain(&r.agg_query, &genv)?;
        if !gchain.is_scalar() {
            return Err(unsupported(
                "GroupBy result selector whose aggregation is not scalar-valued",
            ));
        }

        if self.opts.specialize_group_aggregate {
            if let Some(agg) = compose_group_aggregate(&gchain, &r.group_param) {
                // §4.3: store per-key partial aggregates instead of bags.
                let mut renv = env.clone();
                renv.bind(r.key_param.clone(), key_ty.clone());
                renv.bind(r.agg_param.clone(), agg.out_ty.clone());
                let out_ty = expr_ty(&r.result, &renv, self.udfs)?;
                let span = OpSpan::at(chain.ops.len() as u32, "GroupBy");
                chain.ops.push(QuilOp::Sink(SinkOp {
                    param: key.param.clone(),
                    kind: SinkKind::GroupByAggregate {
                        key: key_body,
                        elem: elem_body,
                        agg,
                        key_param: r.key_param.clone(),
                        agg_param: r.agg_param.clone(),
                        result: r.result.clone(),
                        key_ty,
                    },
                    in_ty,
                    out_ty,
                    span,
                }));
                return Ok(chain);
            }
        }

        // Fallback (specialization off, or unrecognized aggregation):
        // a plain GroupBy sink followed by a nested-query transform over
        // each (key, group) pair.
        let pair_param = format!("{}_kv", r.group_param);
        let pair_ty = Ty::pair(key_ty.clone(), Ty::seq(val_ty.clone()));
        let span = OpSpan::at(chain.ops.len() as u32, "GroupBy");
        chain.ops.push(QuilOp::Sink(SinkOp {
            param: key.param.clone(),
            kind: SinkKind::GroupBy {
                key: key_body,
                elem: elem_body,
                key_ty: key_ty.clone(),
                val_ty,
            },
            in_ty,
            out_ty: pair_ty.clone(),
            span,
        }));
        let group_ref = Expr::var(pair_param.clone()).field(1);
        let nested = subst_chain(&gchain, &r.group_param, &group_ref);
        let wrap_expr = subst(
            &r.result,
            &r.key_param,
            &Expr::var(pair_param.clone()).field(0),
        );
        let mut renv = env.clone();
        renv.bind(pair_param.clone(), pair_ty.clone());
        renv.bind(r.agg_param.clone(), nested.result_ty());
        let out_ty = expr_ty(&wrap_expr, &renv, self.udfs)?;
        let span = OpSpan::at(chain.ops.len() as u32, "GroupBy");
        chain.ops.push(QuilOp::Trans {
            param: pair_param,
            kind: TransKind::Nested(NestedTrans {
                chain: Box::new(nested),
                wrap: Some((r.agg_param.clone(), wrap_expr)),
            }),
            in_ty: pair_ty,
            out_ty,
            span,
        });
        Ok(chain)
    }
}

/// Attempts to compose a group-aggregation chain into a single fused
/// [`AggDesc`] suitable for the `GroupByAggregate` sink (§4.3).
///
/// The chain must iterate the group directly (`Src = group`), contain only
/// element-wise expression operators, and end in an aggregate. Transforms
/// are inlined into the aggregate's update expression; predicates become a
/// guard around it — the same fusion the code generator performs, applied
/// at the IR level.
pub fn compose_group_aggregate(gchain: &QuilChain, group_param: &str) -> Option<AggDesc> {
    compose_group_aggregate_over(gchain, &Expr::var(group_param))
}

/// As [`compose_group_aggregate`], but matching an arbitrary source
/// expression (e.g. `kv.1` after the fallback lowering).
pub fn compose_group_aggregate_over(gchain: &QuilChain, group_source: &Expr) -> Option<AggDesc> {
    match &gchain.src {
        SrcDesc::Expr { expr, .. } if expr == group_source => {}
        _ => return None,
    }
    let agg = gchain.agg.as_ref()?;
    let elem_name = "__gx";
    let mut cur = Expr::var(elem_name);
    let mut guards: Vec<Expr> = Vec::new();
    let mut elem_ty = gchain.src.elem_ty();
    for op in &gchain.ops {
        match op {
            QuilOp::Trans {
                param,
                kind: TransKind::Expr(e),
                out_ty,
                ..
            } => {
                cur = subst(e, param, &cur);
                elem_ty = out_ty.clone();
            }
            QuilOp::Pred {
                param,
                kind: PredKind::Expr(p),
                ..
            } => guards.push(subst(p, param, &cur)),
            _ => return None,
        }
    }
    let _ = elem_ty;
    let update = subst(&agg.update, &agg.elem_param, &cur);
    let update = match guards.into_iter().reduce(Expr::and) {
        None => update,
        Some(guard) => Expr::if_(guard, update, Expr::var(agg.acc_param.clone())),
    };
    Some(AggDesc {
        elem_param: elem_name.to_string(),
        update,
        elem_ty: gchain.src.elem_ty(),
        ..agg.clone()
    })
}

/// Builds the canonical fold for a built-in aggregate over `elem_ty`.
///
/// # Errors
///
/// Returns an error for unsupported element types (e.g. `First` over
/// non-scalar elements, `Sum` over booleans).
pub fn builtin_agg(op: AggOp, elem_ty: &Ty) -> Result<AggDesc, LowerError> {
    let acc = || Expr::var("acc");
    let x = || Expr::var("x");
    let rhs = || Expr::var("rhs");
    let numeric = |context: &str| -> Result<(), LowerError> {
        if elem_ty.is_numeric() {
            Ok(())
        } else {
            Err(LowerError::Type(TypeError::Mismatch {
                context: context.into(),
                expected: "numeric element".into(),
                found: elem_ty.clone(),
            }))
        }
    };
    let zero = || {
        if *elem_ty == Ty::I64 {
            Expr::liti(0)
        } else {
            Expr::litf(0.0)
        }
    };
    let base = |kind, acc_ty: Ty, out_ty: Ty, init, update, finish, combine| AggDesc {
        kind,
        acc_ty,
        out_ty,
        elem_ty: elem_ty.clone(),
        init,
        acc_param: "acc".into(),
        elem_param: "x".into(),
        rhs_param: "rhs".into(),
        update,
        finish,
        combine,
    };
    match op {
        AggOp::Sum => {
            numeric("Sum")?;
            Ok(base(
                AggKind::Sum,
                elem_ty.clone(),
                elem_ty.clone(),
                zero(),
                acc() + x(),
                None,
                Some(acc() + rhs()),
            ))
        }
        AggOp::Count => Ok(base(
            AggKind::Count,
            Ty::I64,
            Ty::I64,
            Expr::liti(0),
            acc() + Expr::liti(1),
            None,
            Some(acc() + rhs()),
        )),
        AggOp::Min => {
            numeric("Min")?;
            let init = if *elem_ty == Ty::I64 {
                Expr::liti(i64::MAX)
            } else {
                Expr::litf(f64::INFINITY)
            };
            Ok(base(
                AggKind::Min,
                elem_ty.clone(),
                elem_ty.clone(),
                init,
                acc().min(x()),
                None,
                Some(acc().min(rhs())),
            ))
        }
        AggOp::Max => {
            numeric("Max")?;
            let init = if *elem_ty == Ty::I64 {
                Expr::liti(i64::MIN)
            } else {
                Expr::litf(f64::NEG_INFINITY)
            };
            Ok(base(
                AggKind::Max,
                elem_ty.clone(),
                elem_ty.clone(),
                init,
                acc().max(x()),
                None,
                Some(acc().max(rhs())),
            ))
        }
        AggOp::Average => {
            numeric("Average")?;
            let xf = if *elem_ty == Ty::I64 {
                x().cast(Ty::F64)
            } else {
                x()
            };
            // acc = (sum, count)
            Ok(base(
                AggKind::Average,
                Ty::pair(Ty::F64, Ty::I64),
                Ty::F64,
                Expr::mk_pair(Expr::litf(0.0), Expr::liti(0)),
                Expr::mk_pair(acc().field(0) + xf, acc().field(1) + Expr::liti(1)),
                Some(acc().field(0) / acc().field(1).cast(Ty::F64)),
                Some(Expr::mk_pair(
                    acc().field(0) + rhs().field(0),
                    acc().field(1) + rhs().field(1),
                )),
            ))
        }
        AggOp::Any => Ok(base(
            AggKind::Any,
            Ty::Bool,
            Ty::Bool,
            Expr::litb(false),
            Expr::litb(true),
            None,
            Some(acc().or(rhs())),
        )),
        AggOp::All => {
            if *elem_ty != Ty::Bool {
                return Err(LowerError::Type(TypeError::Mismatch {
                    context: "All".into(),
                    expected: "bool element".into(),
                    found: elem_ty.clone(),
                }));
            }
            Ok(base(
                AggKind::All,
                Ty::Bool,
                Ty::Bool,
                Expr::litb(true),
                acc().and(x()),
                None,
                Some(acc().and(rhs())),
            ))
        }
        AggOp::First => {
            let default = match elem_ty {
                Ty::F64 => Expr::litf(0.0),
                Ty::I64 => Expr::liti(0),
                Ty::Bool => Expr::litb(false),
                other => {
                    return Err(unsupported(format!(
                        "FirstOrDefault over non-scalar elements ({other})"
                    )))
                }
            };
            // acc = (taken, value)
            Ok(base(
                AggKind::First,
                Ty::pair(Ty::Bool, elem_ty.clone()),
                elem_ty.clone(),
                Expr::mk_pair(Expr::litb(false), default),
                Expr::if_(
                    acc().field(0),
                    acc(),
                    Expr::mk_pair(Expr::litb(true), x()),
                ),
                Some(acc().field(1)),
                Some(Expr::if_(acc().field(0), acc(), rhs())),
            ))
        }
    }
}

/// Lowers a canonicalized query to a QUIL chain with default options.
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower(
    q: &QueryExpr,
    sources: &SourceTypes,
    udfs: &UdfRegistry,
) -> Result<QuilChain, LowerError> {
    lower_with(q, sources, &TyEnv::new(), udfs, LowerOptions::default())
}

/// Lowers a canonicalized query with explicit outer scope and options.
///
/// The resulting chain is guaranteed to satisfy the QUIL grammar (checked
/// with the pushdown recognizer of §5.1).
///
/// # Errors
///
/// See [`LowerError`].
pub fn lower_with(
    q: &QueryExpr,
    sources: &SourceTypes,
    env: &TyEnv,
    udfs: &UdfRegistry,
    opts: LowerOptions,
) -> Result<QuilChain, LowerError> {
    let lowerer = Lowerer {
        sources,
        udfs,
        opts,
    };
    let chain = lowerer.lower_chain(q, env)?;
    debug_assert!(
        Pda::accepts(&chain.tokens()),
        "lowering produced an invalid QUIL sentence: {chain}"
    );
    Ok(chain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::QuilSym;
    use steno_query::Query;

    fn srcs() -> SourceTypes {
        SourceTypes::new()
            .with("xs", Ty::F64)
            .with("ns", Ty::I64)
            .with("ys", Ty::F64)
    }

    fn lower_q(q: &QueryExpr) -> QuilChain {
        lower(q, &srcs(), &UdfRegistry::new()).unwrap()
    }

    #[test]
    fn sum_of_squares_lowers_to_src_trans_agg_ret() {
        let q = Query::source("xs")
            .select(Expr::var("x") * Expr::var("x"), "x")
            .sum()
            .build();
        let chain = lower_q(&q);
        assert_eq!(
            chain.symbols(),
            vec![QuilSym::Src, QuilSym::Trans, QuilSym::Agg, QuilSym::Ret]
        );
        let agg = chain.agg.as_ref().unwrap();
        assert_eq!(agg.kind, AggKind::Sum);
        assert!(agg.is_associative());
        assert_eq!(chain.result_ty(), Ty::F64);
    }

    #[test]
    fn where_lowered_as_pred_with_type() {
        let q = Query::source("ns")
            .where_((Expr::var("x") % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .build();
        let chain = lower_q(&q);
        match &chain.ops[0] {
            QuilOp::Pred {
                kind: PredKind::Expr(_),
                elem_ty,
                ..
            } => assert_eq!(*elem_ty, Ty::I64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_select_many_lowers_to_nested_trans() {
        let q = Query::source("xs")
            .select_many(
                Query::source("ys").select(Expr::var("x") * Expr::var("y"), "y"),
                "x",
            )
            .sum()
            .build();
        let chain = lower_q(&q);
        assert_eq!(chain.depth(), 2);
        match &chain.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Nested(n),
                ..
            } => {
                assert!(!n.chain.is_scalar(), "SelectMany chain yields elements");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(Pda::accepts(&chain.tokens()));
    }

    #[test]
    fn select_with_scalar_nested_query() {
        let q = Query::source("xs")
            .select_query(
                Query::source("ys")
                    .select(Expr::var("x") - Expr::var("y"), "y")
                    .min(),
                "x",
            )
            .build();
        let chain = lower_q(&q);
        match &chain.ops[0] {
            QuilOp::Trans {
                kind: TransKind::Nested(n),
                out_ty,
                ..
            } => {
                assert!(n.chain.is_scalar());
                assert_eq!(*out_ty, Ty::F64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn select_with_sequence_nested_query_is_rejected() {
        let q = Query::source("xs")
            .select_query(Query::source("ys").take(2), "x")
            .build();
        assert!(matches!(
            lower(&q, &srcs(), &UdfRegistry::new()),
            Err(LowerError::Unsupported(_))
        ));
    }

    #[test]
    fn take_skip_are_stateful_predicates() {
        let q = Query::source("xs").skip(2).take(3).build();
        let chain = lower_q(&q);
        assert!(matches!(
            chain.ops[0],
            QuilOp::Pred {
                kind: PredKind::Skip(2),
                ..
            }
        ));
        assert!(matches!(
            chain.ops[1],
            QuilOp::Pred {
                kind: PredKind::Take(3),
                ..
            }
        ));
        assert!(!chain.ops[0].is_homomorphic());
    }

    #[test]
    fn group_by_with_aggregating_result_specializes() {
        // ns.GroupBy(x % 3, (k, g) => (k, g.Sum()))
        let q = Query::source("ns")
            .group_by_result(
                Expr::var("x") % Expr::liti(3),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
            )
            .build();
        let chain = lower_q(&q);
        assert_eq!(chain.ops.len(), 1);
        match &chain.ops[0] {
            QuilOp::Sink(s) => match &s.kind {
                SinkKind::GroupByAggregate { agg, key_ty, .. } => {
                    assert_eq!(agg.kind, AggKind::Sum);
                    assert_eq!(*key_ty, Ty::I64);
                    assert_eq!(s.out_ty, Ty::pair(Ty::I64, Ty::I64));
                }
                other => panic!("expected GroupByAggregate, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_specialization_fuses_inner_transforms() {
        // g.Select(v => v * v).Where(v > 0).Sum() fuses into the update.
        let inner = Query::over(Expr::var("g"))
            .select(Expr::var("v") * Expr::var("v"), "v")
            .where_(Expr::var("w").gt(Expr::liti(0)), "w")
            .sum()
            .build();
        let q = Query::source("ns")
            .group_by_result(
                Expr::var("x") % Expr::liti(3),
                "x",
                GroupResult::keyed("k", "g", inner),
            )
            .build();
        let chain = lower_q(&q);
        match &chain.ops[0] {
            QuilOp::Sink(s) => match &s.kind {
                SinkKind::GroupByAggregate { agg, .. } => {
                    let u = agg.update.to_string();
                    assert!(u.contains("if"), "predicate guard expected: {u}");
                    assert!(u.contains("(__gx * __gx)"), "transform inlined: {u}");
                }
                other => panic!("expected GroupByAggregate, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn group_by_specialization_can_be_disabled() {
        let q = Query::source("ns")
            .group_by_result(
                Expr::var("x") % Expr::liti(3),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
            )
            .build();
        let opts = LowerOptions {
            specialize_group_aggregate: false,
        };
        let chain = lower_with(&q, &srcs(), &TyEnv::new(), &UdfRegistry::new(), opts).unwrap();
        // Fallback plan: GroupBy sink + nested transform over the pairs.
        assert_eq!(chain.ops.len(), 2);
        assert!(matches!(
            &chain.ops[0],
            QuilOp::Sink(SinkOp {
                kind: SinkKind::GroupBy { .. },
                ..
            })
        ));
        match &chain.ops[1] {
            QuilOp::Trans {
                kind: TransKind::Nested(n),
                ..
            } => {
                assert!(n.chain.is_scalar());
                assert!(n.wrap.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builtin_aggregates_have_expected_shapes() {
        let sum = builtin_agg(AggOp::Sum, &Ty::F64).unwrap();
        assert_eq!(sum.init.to_string(), "0.0");
        assert!(sum.finish.is_none());
        let avg = builtin_agg(AggOp::Average, &Ty::I64).unwrap();
        assert_eq!(avg.acc_ty, Ty::pair(Ty::F64, Ty::I64));
        assert!(avg.finish.is_some());
        assert!(avg.is_associative());
        let first = builtin_agg(AggOp::First, &Ty::I64).unwrap();
        assert_eq!(first.acc_ty, Ty::pair(Ty::Bool, Ty::I64));
        assert!(builtin_agg(AggOp::Sum, &Ty::Bool).is_err());
        assert!(builtin_agg(AggOp::First, &Ty::Row).is_err());
        assert!(builtin_agg(AggOp::All, &Ty::I64).is_err());
    }

    #[test]
    fn concat_is_unsupported() {
        let q = Query::source("xs").concat(Query::source("ys")).build();
        assert!(matches!(
            lower(&q, &srcs(), &UdfRegistry::new()),
            Err(LowerError::Unsupported(_))
        ));
    }

    #[test]
    fn user_aggregate_with_combiner() {
        let q = Query::source("ns")
            .aggregate_assoc(
                Expr::liti(0),
                "a",
                "x",
                Expr::var("a") + Expr::var("x"),
                steno_query::QFn2::new("p", "q", Expr::var("p") + Expr::var("q")),
            )
            .build();
        let chain = lower_q(&q);
        let agg = chain.agg.as_ref().unwrap();
        assert_eq!(agg.kind, AggKind::Fold);
        assert_eq!(
            agg.combine.as_ref().unwrap().to_string(),
            "(a + a__rhs)"
        );
    }

    #[test]
    fn orderby_distinct_tovec_are_sinks() {
        let q = Query::source("xs")
            .distinct()
            .order_by(Expr::var("x"), "x")
            .to_vec()
            .build();
        let chain = lower_q(&q);
        assert_eq!(
            chain.symbols(),
            vec![
                QuilSym::Src,
                QuilSym::Sink,
                QuilSym::Sink,
                QuilSym::Sink,
                QuilSym::Ret
            ]
        );
    }

    #[test]
    fn group_having_pattern() {
        // GROUP BY ... HAVING (§4.2): GroupBy then Where on the groups.
        let q = Query::source("ns")
            .group_by(Expr::var("x") % Expr::liti(3), "x")
            .where_(Expr::var("kv").field(0).gt(Expr::liti(0)), "kv")
            .build();
        let chain = lower_q(&q);
        assert_eq!(
            chain.symbols(),
            vec![QuilSym::Src, QuilSym::Sink, QuilSym::Pred, QuilSym::Ret]
        );
    }
}
