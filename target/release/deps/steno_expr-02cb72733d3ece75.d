/root/repo/target/release/deps/steno_expr-02cb72733d3ece75.d: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs

/root/repo/target/release/deps/libsteno_expr-02cb72733d3ece75.rlib: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs

/root/repo/target/release/deps/libsteno_expr-02cb72733d3ece75.rmeta: crates/steno-expr/src/lib.rs crates/steno-expr/src/data.rs crates/steno-expr/src/error.rs crates/steno-expr/src/eval.rs crates/steno-expr/src/expr.rs crates/steno-expr/src/subst.rs crates/steno-expr/src/ty.rs crates/steno-expr/src/typecheck.rs crates/steno-expr/src/udf.rs crates/steno-expr/src/value.rs

crates/steno-expr/src/lib.rs:
crates/steno-expr/src/data.rs:
crates/steno-expr/src/error.rs:
crates/steno-expr/src/eval.rs:
crates/steno-expr/src/expr.rs:
crates/steno-expr/src/subst.rs:
crates/steno-expr/src/ty.rs:
crates/steno-expr/src/typecheck.rs:
crates/steno-expr/src/udf.rs:
crates/steno-expr/src/value.rs:
