/root/repo/target/release/deps/steno_analysis-36ef545f3f744b8f.d: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

/root/repo/target/release/deps/libsteno_analysis-36ef545f3f744b8f.rlib: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

/root/repo/target/release/deps/libsteno_analysis-36ef545f3f744b8f.rmeta: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

crates/steno-analysis/src/lib.rs:
crates/steno-analysis/src/facts.rs:
crates/steno-analysis/src/lint.rs:
crates/steno-analysis/src/verify.rs:
