/root/repo/target/debug/deps/ablation_specialization-b2d275d6561faf1d.d: crates/bench/benches/ablation_specialization.rs Cargo.toml

/root/repo/target/debug/deps/libablation_specialization-b2d275d6561faf1d.rmeta: crates/bench/benches/ablation_specialization.rs Cargo.toml

crates/bench/benches/ablation_specialization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
