/root/repo/target/debug/deps/break_even-126cad9758717ff5.d: crates/bench/src/bin/break_even.rs Cargo.toml

/root/repo/target/debug/deps/libbreak_even-126cad9758717ff5.rmeta: crates/bench/src/bin/break_even.rs Cargo.toml

crates/bench/src/bin/break_even.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
