/root/repo/target/debug/deps/bench-b0f2744a6901302b.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libbench-b0f2744a6901302b.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
