/root/repo/target/debug/examples/distributed_kmeans-6d61660840f7d92d.d: examples/distributed_kmeans.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_kmeans-6d61660840f7d92d.rmeta: examples/distributed_kmeans.rs Cargo.toml

examples/distributed_kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
