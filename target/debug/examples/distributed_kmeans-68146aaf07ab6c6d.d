/root/repo/target/debug/examples/distributed_kmeans-68146aaf07ab6c6d.d: examples/distributed_kmeans.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_kmeans-68146aaf07ab6c6d.rmeta: examples/distributed_kmeans.rs Cargo.toml

examples/distributed_kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
