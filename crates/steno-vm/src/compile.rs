//! Assembling imperative programs into register bytecode.
//!
//! Types flow from the [`ImpProgram`]'s declarations into register-bank
//! assignment: `f64` expressions compile to F-bank instructions, `i64` and
//! boolean expressions to I-bank instructions, and only compound values
//! touch the boxed V bank. This is where the paper's type specialization
//! (§4.2) pays off at run time: a numeric query's inner loop never boxes.

use std::collections::HashMap;

use steno_codegen::imp::{ImpProgram, LoopHeader, SinkDecl, Stmt, Terminal};
use steno_expr::expr::{BinOp, UnOp};
use steno_expr::{Expr, Ty, UdfRegistry, Value};

use crate::instr::{FallbackReason, Instr, LoopPlan, LoopTier, Pc, Program};

/// An error during bytecode assembly. Programs generated from lowered
/// chains assemble cleanly; errors indicate unsupported shapes.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileError(pub String);

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bytecode assembly failed: {}", self.0)
    }
}

impl std::error::Error for CompileError {}

fn err(msg: impl Into<String>) -> CompileError {
    CompileError(msg.into())
}

/// A register location.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Loc {
    F(u32),
    I(u32),
    V(u32),
}

/// How a grouped-aggregate sink stores accumulators.
#[derive(Clone, Copy, Debug, PartialEq)]
enum AccRepr {
    /// Unboxed f64 accumulator with an unboxed scalar key (the fully
    /// type-specialized table).
    SF,
    /// Unboxed i64 accumulator with an unboxed scalar key.
    SI,
    F,
    I,
    V,
}

struct SinkMeta {
    id: u32,
    acc: Option<(AccRepr, Ty)>,
}

struct LoopCtx {
    cont_patches: Vec<usize>,
    break_patches: Vec<usize>,
}

struct Compiler<'a> {
    instrs: Vec<Instr>,
    nf: u32,
    ni: u32,
    nv: u32,
    scope: HashMap<String, (Loc, Ty)>,
    src_ids: HashMap<String, u32>,
    src_names: Vec<String>,
    udf_ids: HashMap<String, u32>,
    udf_names: Vec<String>,
    udfs: &'a UdfRegistry,
    sinks: HashMap<String, SinkMeta>,
    n_sinks: u32,
    n_fused: u32,
    n_batch: u32,
    batch_fallbacks: Vec<FallbackReason>,
    n_guards_dropped: u32,
    loop_plans: Vec<LoopPlan>,
    fused_kernels: Vec<String>,
    n_slots_reused: u32,
    loops: Vec<LoopCtx>,
    fusion: bool,
    vectorize: bool,
    /// Cost-model tier advice from profiled runs (see `steno-opt`):
    /// `PreferScalar` skips the batch tier for every loop, with the
    /// rationale recorded on the loop's plan. `None` keeps the static
    /// tier order.
    tier_hint: Option<(steno_opt::TierAdvice, String)>,
}

const PATCH: Pc = u32::MAX;

impl<'a> Compiler<'a> {
    fn f(&mut self) -> u32 {
        self.nf += 1;
        self.nf - 1
    }

    fn i(&mut self) -> u32 {
        self.ni += 1;
        self.ni - 1
    }

    fn v(&mut self) -> u32 {
        self.nv += 1;
        self.nv - 1
    }

    fn emit(&mut self, instr: Instr) -> usize {
        self.instrs.push(instr);
        self.instrs.len() - 1
    }

    fn here(&self) -> Pc {
        self.instrs.len() as Pc
    }

    fn patch(&mut self, at: usize, target: Pc) {
        match &mut self.instrs[at] {
            Instr::Jump(p) | Instr::JumpIfFalse(_, p) | Instr::JumpIfTrue(_, p) => *p = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn alloc(&mut self, ty: &Ty) -> Loc {
        match ty {
            Ty::F64 => Loc::F(self.f()),
            Ty::I64 | Ty::Bool => Loc::I(self.i()),
            _ => Loc::V(self.v()),
        }
    }

    fn src_id(&mut self, name: &str) -> u32 {
        if let Some(id) = self.src_ids.get(name) {
            return *id;
        }
        let id = self.src_names.len() as u32;
        self.src_names.push(name.to_string());
        self.src_ids.insert(name.to_string(), id);
        id
    }

    fn udf_id(&mut self, name: &str) -> u32 {
        if let Some(id) = self.udf_ids.get(name) {
            return *id;
        }
        let id = self.udf_names.len() as u32;
        self.udf_names.push(name.to_string());
        self.udf_ids.insert(name.to_string(), id);
        id
    }

    // ------------------------------------------------------------------
    // Type inference over the compile-time scope.
    // ------------------------------------------------------------------

    fn infer(&self, e: &Expr) -> Result<Ty, CompileError> {
        match e {
            Expr::Var(name) => self
                .scope
                .get(name)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| err(format!("unbound variable `{name}` in generated code"))),
            Expr::LitF64(_) => Ok(Ty::F64),
            Expr::LitI64(_) => Ok(Ty::I64),
            Expr::LitBool(_) => Ok(Ty::Bool),
            Expr::Bin(op, a, b) => {
                let ta = self.infer(a)?;
                if op.is_comparison() || op.is_logical() {
                    Ok(Ty::Bool)
                } else {
                    let _ = b;
                    Ok(ta)
                }
            }
            Expr::Un(UnOp::Not, _) => Ok(Ty::Bool),
            Expr::Un(_, a) => self.infer(a),
            Expr::Call(name, _) => self
                .udfs
                .get(name)
                .map(|u| u.ret.clone())
                .ok_or_else(|| err(format!("unknown udf `{name}`"))),
            Expr::Field(a, i) => match self.infer(a)? {
                Ty::Pair(x, y) => Ok(if *i == 0 { *x } else { *y }),
                other => Err(err(format!("projection on non-pair {other}"))),
            },
            Expr::RowIndex(..) => Ok(Ty::F64),
            Expr::RowLen(_) => Ok(Ty::I64),
            Expr::MkPair(a, b) => Ok(Ty::pair(self.infer(a)?, self.infer(b)?)),
            Expr::If(_, t, _) => self.infer(t),
            Expr::Cast(ty, _) => Ok(ty.clone()),
        }
    }

    // ------------------------------------------------------------------
    // Boxing helpers.
    // ------------------------------------------------------------------

    fn box_to_v(&mut self, loc: Loc, ty: &Ty) -> u32 {
        match loc {
            Loc::V(r) => r,
            Loc::F(r) => {
                let dst = self.v();
                self.emit(Instr::FToV(dst, r));
                dst
            }
            Loc::I(r) => {
                let dst = self.v();
                if *ty == Ty::Bool {
                    self.emit(Instr::BToV(dst, r));
                } else {
                    self.emit(Instr::IToV(dst, r));
                }
                dst
            }
        }
    }

    fn unbox_from_v(&mut self, src: u32, ty: &Ty) -> Loc {
        match ty {
            Ty::F64 => {
                let dst = self.f();
                self.emit(Instr::VToF(dst, src));
                Loc::F(dst)
            }
            Ty::I64 => {
                let dst = self.i();
                self.emit(Instr::VToI(dst, src));
                Loc::I(dst)
            }
            Ty::Bool => {
                let dst = self.i();
                self.emit(Instr::VToB(dst, src));
                Loc::I(dst)
            }
            _ => Loc::V(src),
        }
    }

    fn mov(&mut self, dst: Loc, src: Loc) {
        match (dst, src) {
            (Loc::F(d), Loc::F(s)) => {
                if d != s {
                    self.emit(Instr::MovF(d, s));
                }
            }
            (Loc::I(d), Loc::I(s)) => {
                if d != s {
                    self.emit(Instr::MovI(d, s));
                }
            }
            (Loc::V(d), Loc::V(s)) => {
                if d != s {
                    self.emit(Instr::MovV(d, s));
                }
            }
            (d, s) => unreachable!("register bank mismatch: {d:?} <- {s:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Expression compilation.
    // ------------------------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<(Loc, Ty), CompileError> {
        match e {
            Expr::Var(name) => self
                .scope
                .get(name)
                .cloned()
                .ok_or_else(|| err(format!("unbound variable `{name}` in generated code"))),
            Expr::LitF64(x) => {
                let r = self.f();
                self.emit(Instr::ConstF(r, *x));
                Ok((Loc::F(r), Ty::F64))
            }
            Expr::LitI64(x) => {
                let r = self.i();
                self.emit(Instr::ConstI(r, *x));
                Ok((Loc::I(r), Ty::I64))
            }
            Expr::LitBool(b) => {
                let r = self.i();
                self.emit(Instr::ConstI(r, i64::from(*b)));
                Ok((Loc::I(r), Ty::Bool))
            }
            Expr::Bin(op, a, b) if op.is_logical() => {
                // Short-circuit, preserving the reference evaluator's
                // semantics for traps in the right operand.
                let (la, _) = self.expr(a)?;
                let Loc::I(ra) = la else {
                    return Err(err("logical operand not boolean"));
                };
                let dst = self.i();
                self.emit(Instr::MovI(dst, ra));
                let jump = match op {
                    BinOp::And => self.emit(Instr::JumpIfFalse(dst, PATCH)),
                    _ => self.emit(Instr::JumpIfTrue(dst, PATCH)),
                };
                let (lb, _) = self.expr(b)?;
                let Loc::I(rb) = lb else {
                    return Err(err("logical operand not boolean"));
                };
                self.emit(Instr::MovI(dst, rb));
                let end = self.here();
                self.patch(jump, end);
                Ok((Loc::I(dst), Ty::Bool))
            }
            Expr::Bin(op, a, b) => {
                let (la, ta) = self.expr(a)?;
                let (lb, tb) = self.expr(b)?;
                if op.is_comparison() {
                    let dst = self.i();
                    match (la, lb) {
                        (Loc::F(x), Loc::F(y)) => {
                            let instr = match op {
                                BinOp::Eq => Instr::EqF(dst, x, y),
                                BinOp::Ne => Instr::NeF(dst, x, y),
                                BinOp::Lt => Instr::LtF(dst, x, y),
                                BinOp::Le => Instr::LeF(dst, x, y),
                                BinOp::Gt => Instr::GtF(dst, x, y),
                                BinOp::Ge => Instr::GeF(dst, x, y),
                                _ => unreachable!(),
                            };
                            self.emit(instr);
                        }
                        (Loc::I(x), Loc::I(y)) => {
                            let instr = match op {
                                BinOp::Eq => Instr::EqI(dst, x, y),
                                BinOp::Ne => Instr::NeI(dst, x, y),
                                BinOp::Lt => Instr::LtI(dst, x, y),
                                BinOp::Le => Instr::LeI(dst, x, y),
                                BinOp::Gt => Instr::GtI(dst, x, y),
                                BinOp::Ge => Instr::GeI(dst, x, y),
                                _ => unreachable!(),
                            };
                            self.emit(instr);
                        }
                        (Loc::V(x), Loc::V(y)) => match op {
                            BinOp::Eq => {
                                self.emit(Instr::EqV(dst, x, y));
                            }
                            BinOp::Ne => {
                                self.emit(Instr::EqV(dst, x, y));
                                self.emit(Instr::NotB(dst, dst));
                            }
                            _ => {
                                return Err(err(format!(
                                    "ordering comparison on compound values ({ta}, {tb})"
                                )))
                            }
                        },
                        _ => return Err(err("comparison operand bank mismatch")),
                    }
                    return Ok((Loc::I(dst), Ty::Bool));
                }
                // Arithmetic / min / max.
                match (la, lb) {
                    (Loc::F(x), Loc::F(y)) => {
                        let dst = self.f();
                        let instr = match op {
                            BinOp::Add => Instr::AddF(dst, x, y),
                            BinOp::Sub => Instr::SubF(dst, x, y),
                            BinOp::Mul => Instr::MulF(dst, x, y),
                            BinOp::Div => Instr::DivF(dst, x, y),
                            BinOp::Rem => Instr::RemF(dst, x, y),
                            BinOp::Min => Instr::MinF(dst, x, y),
                            BinOp::Max => Instr::MaxF(dst, x, y),
                            _ => unreachable!(),
                        };
                        self.emit(instr);
                        Ok((Loc::F(dst), Ty::F64))
                    }
                    (Loc::I(x), Loc::I(y)) => {
                        let dst = self.i();
                        let instr = match op {
                            BinOp::Add => Instr::AddI(dst, x, y),
                            BinOp::Sub => Instr::SubI(dst, x, y),
                            BinOp::Mul => Instr::MulI(dst, x, y),
                            BinOp::Div => Instr::DivI(dst, x, y),
                            BinOp::Rem => Instr::RemI(dst, x, y),
                            BinOp::Min => Instr::MinI(dst, x, y),
                            BinOp::Max => Instr::MaxI(dst, x, y),
                            _ => unreachable!(),
                        };
                        self.emit(instr);
                        Ok((Loc::I(dst), Ty::I64))
                    }
                    _ => Err(err(format!(
                        "arithmetic on non-scalar operands ({ta}, {tb})"
                    ))),
                }
            }
            Expr::Un(op, a) => {
                let (la, ta) = self.expr(a)?;
                match (op, la) {
                    (UnOp::Neg, Loc::F(x)) => {
                        let dst = self.f();
                        self.emit(Instr::NegF(dst, x));
                        Ok((Loc::F(dst), Ty::F64))
                    }
                    (UnOp::Neg, Loc::I(x)) => {
                        let dst = self.i();
                        self.emit(Instr::NegI(dst, x));
                        Ok((Loc::I(dst), Ty::I64))
                    }
                    (UnOp::Not, Loc::I(x)) => {
                        let dst = self.i();
                        self.emit(Instr::NotB(dst, x));
                        Ok((Loc::I(dst), Ty::Bool))
                    }
                    (UnOp::Abs, Loc::F(x)) => {
                        let dst = self.f();
                        self.emit(Instr::AbsF(dst, x));
                        Ok((Loc::F(dst), Ty::F64))
                    }
                    (UnOp::Abs, Loc::I(x)) => {
                        let dst = self.i();
                        self.emit(Instr::AbsI(dst, x));
                        Ok((Loc::I(dst), Ty::I64))
                    }
                    (UnOp::Sqrt, Loc::F(x)) => {
                        let dst = self.f();
                        self.emit(Instr::SqrtF(dst, x));
                        Ok((Loc::F(dst), Ty::F64))
                    }
                    (UnOp::Floor, Loc::F(x)) => {
                        let dst = self.f();
                        self.emit(Instr::FloorF(dst, x));
                        Ok((Loc::F(dst), Ty::F64))
                    }
                    _ => Err(err(format!("unary {} on {ta}", op.symbol()))),
                }
            }
            Expr::Call(name, args) => {
                let udf = self
                    .udfs
                    .get(name)
                    .ok_or_else(|| err(format!("unknown udf `{name}`")))?;
                let ret = udf.ret.clone();
                let mut vregs = Vec::with_capacity(args.len());
                for a in args {
                    let (loc, ty) = self.expr(a)?;
                    vregs.push(self.box_to_v(loc, &ty));
                }
                let udf_id = self.udf_id(name);
                let dst = self.v();
                self.emit(Instr::CallUdf {
                    dst,
                    udf: udf_id,
                    args: vregs,
                });
                Ok((self.unbox_from_v(dst, &ret), ret))
            }
            Expr::Field(a, idx) => {
                let (la, ta) = self.expr(a)?;
                let Loc::V(src) = la else {
                    return Err(err("projection on unboxed value"));
                };
                let Ty::Pair(x, y) = ta else {
                    return Err(err(format!("projection on non-pair {ta}")));
                };
                let component = if *idx == 0 { *x } else { *y };
                let dst = self.v();
                if *idx == 0 {
                    self.emit(Instr::Field0(dst, src));
                } else {
                    self.emit(Instr::Field1(dst, src));
                }
                Ok((self.unbox_from_v(dst, &component), component))
            }
            Expr::RowIndex(a, i) => {
                let (la, _) = self.expr(a)?;
                let (li, _) = self.expr(i)?;
                let (Loc::V(row), Loc::I(idx)) = (la, li) else {
                    return Err(err("row indexing bank mismatch"));
                };
                let dst = self.f();
                self.emit(Instr::RowIdx(dst, row, idx));
                Ok((Loc::F(dst), Ty::F64))
            }
            Expr::RowLen(a) => {
                let (la, _) = self.expr(a)?;
                let Loc::V(row) = la else {
                    return Err(err("row length on unboxed value"));
                };
                let dst = self.i();
                self.emit(Instr::RowLen(dst, row));
                Ok((Loc::I(dst), Ty::I64))
            }
            Expr::MkPair(a, b) => {
                let (la, ta) = self.expr(a)?;
                let ra = self.box_to_v(la, &ta);
                let (lb, tb) = self.expr(b)?;
                let rb = self.box_to_v(lb, &tb);
                let dst = self.v();
                self.emit(Instr::MkPair(dst, ra, rb));
                Ok((Loc::V(dst), Ty::pair(ta, tb)))
            }
            Expr::If(c, t, els) => {
                let result_ty = self.infer(t)?;
                let dst = self.alloc(&result_ty);
                let (lc, _) = self.expr(c)?;
                let Loc::I(rc) = lc else {
                    return Err(err("if condition not boolean"));
                };
                let jelse = self.emit(Instr::JumpIfFalse(rc, PATCH));
                let (lt, _) = self.expr(t)?;
                self.mov(dst, lt);
                let jend = self.emit(Instr::Jump(PATCH));
                let else_pc = self.here();
                self.patch(jelse, else_pc);
                let (le, _) = self.expr(els)?;
                self.mov(dst, le);
                let end = self.here();
                self.patch(jend, end);
                Ok((dst, result_ty))
            }
            Expr::Cast(ty, a) => {
                let (la, ta) = self.expr(a)?;
                match (la, ty) {
                    (Loc::F(x), Ty::I64) => {
                        let dst = self.i();
                        self.emit(Instr::F2I(dst, x));
                        Ok((Loc::I(dst), Ty::I64))
                    }
                    (Loc::I(x), Ty::F64) => {
                        let dst = self.f();
                        self.emit(Instr::I2F(dst, x));
                        Ok((Loc::F(dst), Ty::F64))
                    }
                    (loc, t) if *t == ta => Ok((loc, ta)),
                    (_, t) => Err(err(format!("unsupported cast {ta} -> {t}"))),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Statement compilation.
    // ------------------------------------------------------------------

    fn bool_expr(&mut self, e: &Expr) -> Result<u32, CompileError> {
        let (loc, _) = self.expr(e)?;
        match loc {
            Loc::I(r) => Ok(r),
            _ => Err(err("expected a boolean expression")),
        }
    }

    fn cont_jump_if_false(&mut self, cond: u32) -> Result<(), CompileError> {
        let at = self.emit(Instr::JumpIfFalse(cond, PATCH));
        self.loops
            .last_mut()
            .ok_or_else(|| err("continue outside a loop"))?
            .cont_patches
            .push(at);
        Ok(())
    }

    fn stmt(&mut self, p: &ImpProgram, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Decl { name, ty, init } => {
                let slot = self.alloc(ty);
                let (loc, _) = self.expr(init)?;
                self.mov(slot, loc);
                self.scope.insert(name.clone(), (slot, ty.clone()));
                Ok(())
            }
            Stmt::Assign { name, expr } => {
                let (slot, _) = self
                    .scope
                    .get(name)
                    .cloned()
                    .ok_or_else(|| err(format!("assignment to undeclared `{name}`")))?;
                let (loc, _) = self.expr(expr)?;
                self.mov(slot, loc);
                Ok(())
            }
            Stmt::For {
                header,
                elem_var,
                body,
            } => {
                // Tier order: vectorized (typed batches, selection
                // vectors) first, then the f64-only fusion tier, then the
                // generic scalar loop. Each failed tier leaves no trace in
                // the emitted program. A cost-model hint (observed element
                // counts below the batch break-even, §7.1) overrides the
                // static order and skips the batch tier outright.
                let chosen_by = self.tier_hint.as_ref().map(|(_, why)| why.clone());
                let skip_batch = matches!(
                    self.tier_hint,
                    Some((steno_opt::TierAdvice::PreferScalar, _))
                );
                let mut vectorize_fallback = None;
                if self.vectorize && !skip_batch {
                    match self.try_vectorize_loop(p, header, elem_var, *body) {
                        Ok(()) => {
                            self.loop_plans.push(LoopPlan {
                                tier: LoopTier::Vectorized,
                                vectorize_fallback: None,
                                chosen_by,
                            });
                            return Ok(());
                        }
                        Err(reason) => {
                            if !self.batch_fallbacks.contains(&reason) {
                                self.batch_fallbacks.push(reason.clone());
                            }
                            vectorize_fallback = Some(reason);
                        }
                    }
                }
                // Record the plan before compiling the body, so for
                // nested loops the outer plan precedes the inner ones;
                // the tier is patched if fusion succeeds.
                let plan_idx = self.loop_plans.len();
                self.loop_plans.push(LoopPlan {
                    tier: LoopTier::Scalar,
                    vectorize_fallback,
                    chosen_by,
                });
                if self.fusion && self.try_fuse_loop(p, header, elem_var, *body) {
                    self.loop_plans[plan_idx].tier = LoopTier::Fused;
                    return Ok(());
                }
                self.compile_loop(p, header, elem_var, *body)
            }
            Stmt::IfNotContinue { cond } => {
                let c = self.bool_expr(cond)?;
                self.cont_jump_if_false(c)
            }
            Stmt::IfBreak { cond } => {
                let c = self.bool_expr(cond)?;
                let at = self.emit(Instr::JumpIfTrue(c, PATCH));
                self.loops
                    .last_mut()
                    .ok_or_else(|| err("break outside a loop"))?
                    .break_patches
                    .push(at);
                Ok(())
            }
            Stmt::If { cond, then, els } => {
                let c = self.bool_expr(cond)?;
                let jelse = self.emit(Instr::JumpIfFalse(c, PATCH));
                for s in then {
                    self.stmt(p, s)?;
                }
                if els.is_empty() {
                    let end = self.here();
                    self.patch(jelse, end);
                } else {
                    let jend = self.emit(Instr::Jump(PATCH));
                    let else_pc = self.here();
                    self.patch(jelse, else_pc);
                    for s in els {
                        self.stmt(p, s)?;
                    }
                    let end = self.here();
                    self.patch(jend, end);
                }
                Ok(())
            }
            Stmt::Continue => {
                let at = self.emit(Instr::Jump(PATCH));
                self.loops
                    .last_mut()
                    .ok_or_else(|| err("continue outside a loop"))?
                    .cont_patches
                    .push(at);
                Ok(())
            }
            Stmt::DeclSink { name, decl } => {
                let id = self.n_sinks;
                self.n_sinks += 1;
                let acc = match decl {
                    SinkDecl::Group => {
                        self.emit(Instr::SinkNewGroup(id));
                        None
                    }
                    SinkDecl::GroupAgg {
                        init,
                        acc_ty,
                        key_ty,
                    } => {
                        let (loc, ty) = self.expr(init)?;
                        let scalar_key = key_ty.is_scalar();
                        match (loc, acc_ty) {
                            (Loc::F(r), Ty::F64) if scalar_key => {
                                self.emit(Instr::SinkNewGroupAggSF(id, r));
                                Some((AccRepr::SF, Ty::F64))
                            }
                            (Loc::I(r), Ty::I64) if scalar_key => {
                                self.emit(Instr::SinkNewGroupAggSI(id, r));
                                Some((AccRepr::SI, Ty::I64))
                            }
                            (Loc::F(r), Ty::F64) => {
                                self.emit(Instr::SinkNewGroupAggF(id, r));
                                Some((AccRepr::F, Ty::F64))
                            }
                            (Loc::I(r), Ty::I64) => {
                                self.emit(Instr::SinkNewGroupAggI(id, r));
                                Some((AccRepr::I, Ty::I64))
                            }
                            (loc, _) => {
                                let vr = self.box_to_v(loc, &ty);
                                self.emit(Instr::SinkNewGroupAggV(id, vr));
                                Some((AccRepr::V, acc_ty.clone()))
                            }
                        }
                    }
                    SinkDecl::SortedVec { descending } => {
                        self.emit(Instr::SinkNewSorted(id, *descending));
                        None
                    }
                    SinkDecl::DistinctVec => {
                        self.emit(Instr::SinkNewDistinct(id));
                        None
                    }
                    SinkDecl::Vec => {
                        self.emit(Instr::SinkNewVec(id));
                        None
                    }
                };
                self.sinks.insert(name.clone(), SinkMeta { id, acc });
                Ok(())
            }
            Stmt::GroupPut { sink, key, value } => {
                let id = self.sink_id(sink)?;
                let (kl, kt) = self.expr(key)?;
                let kv = self.box_to_v(kl, &kt);
                let (vl, vt) = self.expr(value)?;
                let vv = self.box_to_v(vl, &vt);
                self.emit(Instr::GroupPut(id, kv, vv));
                Ok(())
            }
            Stmt::GroupAggUpdate {
                sink,
                key,
                acc_param,
                elem_param,
                value,
                update,
            } => {
                let (id, (acc, acc_ty)) = {
                    let meta = self
                        .sinks
                        .get(sink)
                        .ok_or_else(|| err(format!("unknown sink `{sink}`")))?;
                    (
                        meta.id,
                        meta.acc
                            .clone()
                            .ok_or_else(|| err("sink is not a grouped aggregate"))?,
                    )
                };
                // Fully-scalar tables take the key straight from its
                // scalar register; others box it.
                let (kl, kt) = self.expr(key)?;
                let skey = match (kl, &kt) {
                    (Loc::F(r), Ty::F64) => Some(crate::instr::SKey::F(r)),
                    (Loc::I(r), Ty::I64) => Some(crate::instr::SKey::I(r)),
                    (Loc::I(r), Ty::Bool) => Some(crate::instr::SKey::B(r)),
                    _ => None,
                };
                let kv = if matches!(acc, AccRepr::SF | AccRepr::SI) {
                    0 // unused: the scalar path reads the key register
                } else {
                    self.box_to_v(kl, &kt)
                };
                let (vl, vt) = self.expr(value)?;
                // Bind the element parameter.
                let saved_elem = self.scope.insert(elem_param.clone(), (vl, vt));
                // Load the accumulator.
                let acc_slot = match acc {
                    AccRepr::SF => {
                        let r = self.f();
                        let sk = skey.ok_or_else(|| err("scalar sink with boxed key"))?;
                        self.emit(Instr::GroupAccLoadSF(id, r, sk));
                        (Loc::F(r), Ty::F64)
                    }
                    AccRepr::SI => {
                        let r = self.i();
                        let sk = skey.ok_or_else(|| err("scalar sink with boxed key"))?;
                        self.emit(Instr::GroupAccLoadSI(id, r, sk));
                        (Loc::I(r), Ty::I64)
                    }
                    AccRepr::F => {
                        let r = self.f();
                        self.emit(Instr::GroupAccLoadF(id, r, kv));
                        (Loc::F(r), Ty::F64)
                    }
                    AccRepr::I => {
                        let r = self.i();
                        self.emit(Instr::GroupAccLoadI(id, r, kv));
                        (Loc::I(r), Ty::I64)
                    }
                    AccRepr::V => {
                        let r = self.v();
                        self.emit(Instr::GroupAccLoadV(id, r, kv));
                        (Loc::V(r), acc_ty.clone())
                    }
                };
                let saved_acc = self.scope.insert(acc_param.clone(), acc_slot.clone());
                let (ul, ut) = self.expr(update)?;
                match acc {
                    AccRepr::SF => {
                        let Loc::F(r) = ul else {
                            return Err(err("grouped aggregate update bank mismatch"));
                        };
                        self.emit(Instr::GroupAccStoreSF(id, r));
                    }
                    AccRepr::SI => {
                        let Loc::I(r) = ul else {
                            return Err(err("grouped aggregate update bank mismatch"));
                        };
                        self.emit(Instr::GroupAccStoreSI(id, r));
                    }
                    AccRepr::F => {
                        let Loc::F(r) = ul else {
                            return Err(err("grouped aggregate update bank mismatch"));
                        };
                        self.emit(Instr::GroupAccStoreF(id, r));
                    }
                    AccRepr::I => {
                        let Loc::I(r) = ul else {
                            return Err(err("grouped aggregate update bank mismatch"));
                        };
                        self.emit(Instr::GroupAccStoreI(id, r));
                    }
                    AccRepr::V => {
                        let r = self.box_to_v(ul, &ut);
                        self.emit(Instr::GroupAccStoreV(id, r));
                    }
                }
                // Restore shadowed bindings.
                restore(&mut self.scope, elem_param, saved_elem);
                restore(&mut self.scope, acc_param, saved_acc);
                Ok(())
            }
            Stmt::SinkPush { sink, value, key } => {
                let id = self.sink_id(sink)?;
                let (vl, vt) = self.expr(value)?;
                let vv = self.box_to_v(vl, &vt);
                match key {
                    Some(k) => {
                        let (kl, kt) = self.expr(k)?;
                        let kv = self.box_to_v(kl, &kt);
                        self.emit(Instr::SinkPushKeyed(id, kv, vv));
                    }
                    None => {
                        self.emit(Instr::SinkPush(id, vv));
                    }
                }
                Ok(())
            }
            Stmt::SinkSeal { sink } => {
                let id = self.sink_id(sink)?;
                self.emit(Instr::SinkSeal(id));
                Ok(())
            }
            Stmt::Yield { value } => {
                let (vl, vt) = self.expr(value)?;
                let vv = self.box_to_v(vl, &vt);
                self.emit(Instr::OutPush(vv));
                Ok(())
            }
            Stmt::Return { value } => {
                let (vl, vt) = self.expr(value)?;
                match vl {
                    Loc::F(r) => {
                        self.emit(Instr::HaltF(r));
                    }
                    Loc::I(r) => {
                        if vt == Ty::Bool {
                            self.emit(Instr::HaltB(r));
                        } else {
                            self.emit(Instr::HaltI(r));
                        }
                    }
                    Loc::V(r) => {
                        self.emit(Instr::HaltV(r));
                    }
                }
                Ok(())
            }
            Stmt::ReturnSink { .. } => Err(err("ReturnSink is not emitted by the generator")),
            Stmt::BlockRef(_) => unreachable!("flatten removes block refs"),
        }
    }

    fn sink_id(&self, name: &str) -> Result<u32, CompileError> {
        self.sinks
            .get(name)
            .map(|m| m.id)
            .ok_or_else(|| err(format!("unknown sink `{name}`")))
    }

    fn compile_loop(
        &mut self,
        p: &ImpProgram,
        header: &LoopHeader,
        elem_var: &str,
        body: steno_codegen::imp::BlockId,
    ) -> Result<(), CompileError> {
        // Pre-loop setup producing: a length register, an index register,
        // and a closure-free per-iteration element load.
        enum Load {
            SrcF(u32),
            SrcI(u32),
            SrcB(u32),
            SrcV(u32),
            RangeAdd { start: u32 },
            Fixed, // element preloaded before the loop (Repeat)
            RowF(u32),
            SeqV { seq: u32, elem_ty: Ty },
            SinkV { sink: u32, elem_ty: Ty },
        }
        let idx = self.i();
        let len = self.i();
        self.emit(Instr::ConstI(idx, 0));
        let (load, elem_slot): (Load, (Loc, Ty)) = match header {
            LoopHeader::Source { name, elem_ty } => {
                let sid = self.src_id(name);
                self.emit(Instr::SrcLen(len, sid));
                let slot = self.alloc(elem_ty);
                let load = match (elem_ty, slot) {
                    (Ty::F64, Loc::F(_)) => Load::SrcF(sid),
                    (Ty::I64, Loc::I(_)) => Load::SrcI(sid),
                    (Ty::Bool, Loc::I(_)) => Load::SrcB(sid),
                    (_, Loc::V(_)) => Load::SrcV(sid),
                    _ => unreachable!(),
                };
                (load, (slot, elem_ty.clone()))
            }
            LoopHeader::Range { start, count } => {
                self.emit(Instr::ConstI(len, *count as i64));
                let start_reg = self.i();
                self.emit(Instr::ConstI(start_reg, *start));
                let slot = self.alloc(&Ty::I64);
                (Load::RangeAdd { start: start_reg }, (slot, Ty::I64))
            }
            LoopHeader::Repeat { value, count } => {
                self.emit(Instr::ConstI(len, *count as i64));
                let ty = value.ty();
                let slot = self.alloc(&ty);
                match (value, slot) {
                    (Value::F64(x), Loc::F(r)) => {
                        self.emit(Instr::ConstF(r, *x));
                    }
                    (Value::I64(x), Loc::I(r)) => {
                        self.emit(Instr::ConstI(r, *x));
                    }
                    (Value::Bool(b), Loc::I(r)) => {
                        self.emit(Instr::ConstI(r, i64::from(*b)));
                    }
                    (v, Loc::V(r)) => {
                        self.emit(Instr::ConstV(r, v.clone()));
                    }
                    _ => unreachable!(),
                }
                (Load::Fixed, (slot, ty))
            }
            LoopHeader::SeqExpr { expr, elem_ty } => {
                let (loc, ty) = self.expr(expr)?;
                let Loc::V(seq) = loc else {
                    return Err(err("sequence source is not boxed"));
                };
                if ty == Ty::Row {
                    self.emit(Instr::RowLen(len, seq));
                    let slot = self.alloc(&Ty::F64);
                    (Load::RowF(seq), (slot, Ty::F64))
                } else {
                    self.emit(Instr::SeqLen(len, seq));
                    let slot = self.alloc(elem_ty);
                    (
                        Load::SeqV {
                            seq,
                            elem_ty: elem_ty.clone(),
                        },
                        (slot, elem_ty.clone()),
                    )
                }
            }
            LoopHeader::Sink { name, elem_ty } => {
                let id = self.sink_id(name)?;
                self.emit(Instr::SinkFreeze(id));
                self.emit(Instr::SinkLen(len, id));
                let slot = self.alloc(elem_ty);
                (
                    Load::SinkV {
                        sink: id,
                        elem_ty: elem_ty.clone(),
                    },
                    (slot, elem_ty.clone()),
                )
            }
        };

        let top = self.here();
        let cmp = self.i();
        self.emit(Instr::LtI(cmp, idx, len));
        let exit_jump = self.emit(Instr::JumpIfFalse(cmp, PATCH));

        // Per-iteration element load.
        match (&load, elem_slot.0) {
            (Load::SrcF(s), Loc::F(r)) => {
                self.emit(Instr::SrcGetF(r, *s, idx));
            }
            (Load::SrcI(s), Loc::I(r)) => {
                self.emit(Instr::SrcGetI(r, *s, idx));
            }
            (Load::SrcB(s), Loc::I(r)) => {
                self.emit(Instr::SrcGetB(r, *s, idx));
            }
            (Load::SrcV(s), Loc::V(r)) => {
                self.emit(Instr::SrcGetV(r, *s, idx));
            }
            (Load::RangeAdd { start }, Loc::I(r)) => {
                self.emit(Instr::AddI(r, *start, idx));
            }
            (Load::Fixed, _) => {}
            (Load::RowF(seq), Loc::F(r)) => {
                self.emit(Instr::RowIdx(r, *seq, idx));
            }
            (Load::SeqV { seq, elem_ty }, slot) => {
                let tmp = self.v();
                self.emit(Instr::SeqIdx(tmp, *seq, idx));
                let unboxed = self.unbox_from_v(tmp, elem_ty);
                self.mov(slot, unboxed);
            }
            (Load::SinkV { sink, elem_ty }, slot) => {
                let tmp = self.v();
                self.emit(Instr::SinkGet(tmp, *sink, idx));
                let unboxed = self.unbox_from_v(tmp, elem_ty);
                self.mov(slot, unboxed);
            }
            _ => unreachable!("element load bank mismatch"),
        }
        let saved = self.scope.insert(elem_var.to_string(), elem_slot);

        self.loops.push(LoopCtx {
            cont_patches: Vec::new(),
            break_patches: Vec::new(),
        });
        for s in p.flatten(body) {
            self.stmt(p, &s)?;
        }
        let Some(ctx) = self.loops.pop() else {
            return Err(err("loop context underflow"));
        };

        // Continue target: the induction-variable increment.
        let cont = self.here();
        for at in ctx.cont_patches {
            self.patch(at, cont);
        }
        self.emit(Instr::IncI(idx));
        self.emit(Instr::Jump(top));
        let end = self.here();
        self.patch(exit_jump, end);
        for at in ctx.break_patches {
            self.patch(at, end);
        }
        restore(&mut self.scope, elem_var, saved);
        Ok(())
    }
}

fn restore(
    scope: &mut HashMap<String, (Loc, Ty)>,
    name: &str,
    saved: Option<(Loc, Ty)>,
) {
    match saved {
        Some(v) => {
            scope.insert(name.to_string(), v);
        }
        None => {
            scope.remove(name);
        }
    }
}

/// Assembles an imperative program into bytecode.
///
/// # Errors
///
/// Returns [`CompileError`] for shapes the VM cannot execute (none are
/// produced by the standard lower → generate pipeline).
pub fn assemble(p: &ImpProgram, udfs: &UdfRegistry) -> Result<Program, CompileError> {
    assemble_with(p, udfs, true, true)
}

/// As [`assemble`], with the vectorized and loop-fusion tiers switchable
/// (used by the back-end ablation and the engine's
/// `VectorizationPolicy`).
///
/// # Errors
///
/// As [`assemble`].
pub fn assemble_with(
    p: &ImpProgram,
    udfs: &UdfRegistry,
    fusion: bool,
    vectorize: bool,
) -> Result<Program, CompileError> {
    assemble_hinted(p, udfs, fusion, vectorize, None)
}

/// As [`assemble_with`], additionally accepting a cost-model tier hint
/// (observed element counts and selection density from profiled runs of
/// a previous compilation of the same query). `PreferScalar` advice
/// skips the batch-vectorized tier — below the break-even element count
/// its per-loop setup costs more than it saves — and the rationale is
/// recorded on each loop's [`LoopPlan::chosen_by`] for `EXPLAIN`.
///
/// # Errors
///
/// As [`assemble`].
pub fn assemble_hinted(
    p: &ImpProgram,
    udfs: &UdfRegistry,
    fusion: bool,
    vectorize: bool,
    tier_hint: Option<(steno_opt::TierAdvice, String)>,
) -> Result<Program, CompileError> {
    let mut c = Compiler {
        instrs: Vec::new(),
        nf: 0,
        ni: 0,
        nv: 0,
        scope: HashMap::new(),
        src_ids: HashMap::new(),
        src_names: Vec::new(),
        udf_ids: HashMap::new(),
        udf_names: Vec::new(),
        udfs,
        sinks: HashMap::new(),
        n_sinks: 0,
        n_fused: 0,
        n_batch: 0,
        batch_fallbacks: Vec::new(),
        n_guards_dropped: 0,
        loop_plans: Vec::new(),
        fused_kernels: Vec::new(),
        n_slots_reused: 0,
        loops: Vec::new(),
        fusion,
        vectorize,
        tier_hint,
    };
    for s in p.flatten(p.root) {
        c.stmt(p, &s)?;
    }
    let result_ty = match &p.terminal {
        Terminal::Scalar(ty) => ty.clone(),
        Terminal::Sequence(elem) => {
            c.emit(Instr::HaltOut);
            Ty::seq(elem.clone())
        }
    };
    let mut program = Program {
        instrs: c.instrs,
        n_fregs: c.nf,
        n_iregs: c.ni,
        n_vregs: c.nv,
        n_sinks: c.n_sinks,
        n_fused: c.n_fused,
        n_batch: c.n_batch,
        batch_fallbacks: c.batch_fallbacks,
        n_guards_dropped: c.n_guards_dropped,
        loop_plans: c.loop_plans,
        fused_kernels: c.fused_kernels,
        n_slots_reused: c.n_slots_reused,
        n_hoisted: 0,
        n_superinstrs: 0,
        source_names: c.src_names,
        udf_names: c.udf_names,
        result_ty,
        shadow: None,
    };
    // Reference tape for the tape verifier: the program exactly as
    // assembled, before any backend pass rewrites it. The clone shares
    // the Arc'd FusedLoop/BatchLoop payloads, so this is shallow in the
    // loop bodies.
    program.shadow = Some(std::sync::Arc::new(crate::instr::ScalarShadow {
        instrs: program.instrs.clone(),
        n_fregs: program.n_fregs,
        n_iregs: program.n_iregs,
        n_vregs: program.n_vregs,
    }));
    // Backend passes over the assembled bytecode (see crate::lifetimes):
    // pull loop-invariant constants to the entry, thread the hottest
    // scalar pairs into superinstructions, then drop the register frame
    // down to what the rewritten program still touches.
    crate::lifetimes::hoist_loop_invariant_consts(&mut program);
    crate::lifetimes::fuse_scalar_pairs(&mut program);
    crate::lifetimes::shrink_frames(&mut program);
    Ok(program)
}

// ---------------------------------------------------------------------
// The loop-fusion tier (see crate::fuse).
// ---------------------------------------------------------------------

/// Builder state for one fusion attempt.
struct FuseAttempt {
    n_slots: u16,
    prologue: Vec<crate::fuse::VOp>,
    tape: Vec<crate::fuse::VOp>,
    reductions: Vec<crate::fuse::Reduction>,
    /// Loop-local f64 variables → slot.
    locals: HashMap<String, u8>,
    /// Constant cache: bits → prologue slot.
    consts: HashMap<u64, u8>,
    /// Outer (loop-invariant) f64 registers → prologue slot.
    param_slots: HashMap<u32, u8>,
    params: Vec<u32>,
    /// Accumulator f64 registers → accumulator index.
    acc_ids: HashMap<String, u8>,
    accs: Vec<u32>,
    /// Current guard mask slot.
    mask: Option<u8>,
}

impl FuseAttempt {
    fn slot(&mut self) -> Option<u8> {
        if self.n_slots >= 200 {
            return None;
        }
        self.n_slots += 1;
        Some((self.n_slots - 1) as u8)
    }

    fn const_slot(&mut self, x: f64) -> Option<u8> {
        if let Some(s) = self.consts.get(&x.to_bits()) {
            return Some(*s);
        }
        let s = self.slot()?;
        self.prologue.push(crate::fuse::VOp::Const(s, x));
        self.consts.insert(x.to_bits(), s);
        Some(s)
    }

    fn param_slot(&mut self, reg: u32) -> Option<u8> {
        if let Some(s) = self.param_slots.get(&reg) {
            return Some(*s);
        }
        let s = self.slot()?;
        let idx = self.params.len() as u8;
        self.params.push(reg);
        self.prologue.push(crate::fuse::VOp::Param(s, idx));
        self.param_slots.insert(reg, s);
        Some(s)
    }
}

impl<'a> Compiler<'a> {
    /// Attempts to compile a loop with the fusion tier. Returns `true` and
    /// emits a [`Instr::FusedLoop`] on success; on failure nothing is
    /// emitted and the generic path takes over.
    fn try_fuse_loop(
        &mut self,
        p: &ImpProgram,
        header: &LoopHeader,
        elem_var: &str,
        body: steno_codegen::imp::BlockId,
    ) -> bool {
        use crate::fuse::{FusedKernel, Reduction, VOp, NO_MASK};

        // Only plain f64 source columns fuse.
        let LoopHeader::Source {
            name,
            elem_ty: Ty::F64,
        } = header
        else {
            return false;
        };
        let stmts = p.flatten(body);

        // Pre-scan: which names are assigned inside the loop? Those must
        // be f64 accumulators declared outside with += / min / max shape.
        let mut assigned: Vec<&str> = Vec::new();
        for s in &stmts {
            match s {
                Stmt::Decl { ty: Ty::F64, .. } | Stmt::IfNotContinue { .. } => {}
                Stmt::Assign { name, .. } => assigned.push(name),
                // Grouped aggregation fuses when the sink is fully scalar
                // with f64 keys; checked in the main pass below.
                Stmt::GroupAggUpdate { .. } => {}
                _ => return false,
            }
        }

        let mut at = FuseAttempt {
            n_slots: 0,
            prologue: Vec::new(),
            tape: Vec::new(),
            reductions: Vec::new(),
            locals: HashMap::new(),
            consts: HashMap::new(),
            param_slots: HashMap::new(),
            params: Vec::new(),
            acc_ids: HashMap::new(),
            accs: Vec::new(),
            mask: None,
        };

        // Register accumulators up front so expression compilation can
        // reject any read of them inside value pipelines.
        for name in &assigned {
            if at.acc_ids.contains_key(*name) {
                continue;
            }
            let Some((Loc::F(reg), Ty::F64)) = self.scope.get(*name) else {
                return false;
            };
            let id = at.accs.len() as u8;
            at.accs.push(*reg);
            at.acc_ids.insert((*name).to_string(), id);
        }

        // The loop element.
        let Some(x_slot) = at.slot() else {
            return false;
        };
        at.tape.push(VOp::LoadX(x_slot));
        at.locals.insert(elem_var.to_string(), x_slot);

        // Compile the body.
        for s in &stmts {
            match s {
                Stmt::Decl {
                    name,
                    ty: Ty::F64,
                    init,
                } => {
                    let Some(slot) = self.fuse_expr(&mut at, init) else {
                        return false;
                    };
                    at.locals.insert(name.clone(), slot);
                }
                Stmt::IfNotContinue { cond } => {
                    let Some(c) = self.fuse_expr(&mut at, cond) else {
                        return false;
                    };
                    at.mask = match at.mask {
                        None => Some(c),
                        Some(m) => {
                            let Some(d) = at.slot() else { return false };
                            at.tape.push(VOp::AndM(d, m, c));
                            Some(d)
                        }
                    };
                }
                Stmt::GroupAggUpdate {
                    sink,
                    key,
                    acc_param,
                    elem_param,
                    value,
                    update,
                } => {
                    use crate::fuse::{Reduction, NO_MASK};
                    let Some(meta) = self.sinks.get(sink) else {
                        return false;
                    };
                    let id = meta.id;
                    let repr = match &meta.acc {
                        Some((AccRepr::SF, _)) => AccRepr::SF,
                        Some((AccRepr::SI, _)) => AccRepr::SI,
                        _ => return false,
                    };
                    // The key must be an f64 tape expression.
                    let Some(key_slot) = self.fuse_expr(&mut at, key) else {
                        return false;
                    };
                    // Inline the element into the update and match the
                    // fold shape.
                    let u = steno_expr::subst::subst(update, elem_param, value);
                    let mask = at.mask.unwrap_or(NO_MASK);
                    let acc_var = Expr::Var(acc_param.clone());
                    match (repr, &u) {
                        (AccRepr::SI, Expr::Bin(BinOp::Add, a, b)) => {
                            let n = match (&**a, &**b) {
                                (x, Expr::LitI64(n)) if *x == acc_var => *n,
                                (Expr::LitI64(n), x) if *x == acc_var => *n,
                                _ => return false,
                            };
                            at.reductions.push(Reduction::GroupCount {
                                sink: id,
                                key: key_slot,
                                n,
                                mask,
                            });
                        }
                        (AccRepr::SF, Expr::Bin(BinOp::Add, a, b)) => {
                            let e = if **a == acc_var {
                                &**b
                            } else if **b == acc_var {
                                &**a
                            } else {
                                return false;
                            };
                            if steno_expr::subst::free_vars(e).contains(acc_param) {
                                return false;
                            }
                            let Some(val) = self.fuse_expr(&mut at, e) else {
                                return false;
                            };
                            at.reductions.push(Reduction::GroupAddF {
                                sink: id,
                                key: key_slot,
                                val,
                                mask,
                            });
                        }
                        _ => return false,
                    }
                }
                Stmt::Assign { name, expr } => {
                    let acc = at.acc_ids[name.as_str()];
                    // Recognize acc = acc ⊕ e / acc.min(e) / acc.max(e).
                    let (kind, e) = match expr {
                        Expr::Bin(BinOp::Add, a, b) => {
                            if **a == Expr::Var(name.clone()) {
                                ('+', b.as_ref())
                            } else if **b == Expr::Var(name.clone()) {
                                ('+', a.as_ref())
                            } else {
                                return false;
                            }
                        }
                        Expr::Bin(BinOp::Min, a, b) if **a == Expr::Var(name.clone()) => {
                            ('<', b.as_ref())
                        }
                        Expr::Bin(BinOp::Max, a, b) if **a == Expr::Var(name.clone()) => {
                            ('>', b.as_ref())
                        }
                        _ => return false,
                    };
                    let Some(val) = self.fuse_expr(&mut at, e) else {
                        return false;
                    };
                    let mask = at.mask.unwrap_or(NO_MASK);
                    at.reductions.push(match kind {
                        '+' => Reduction::Add { acc, val, mask },
                        '<' => Reduction::Min { acc, val, mask },
                        _ => Reduction::Max { acc, val, mask },
                    });
                }
                _ => return false,
            }
        }
        if at.reductions.is_empty() {
            // A fused loop with no observable effect would be wrong for
            // sequence-yielding loops; those stay generic.
            return false;
        }

        let sid = self.src_id(name);
        self.n_fused += 1;
        self.emit(Instr::FusedLoop(std::sync::Arc::new(FusedKernel {
            src: sid,
            params: at.params,
            accs: at.accs,
            n_slots: at.n_slots as u8,
            prologue: at.prologue,
            tape: at.tape,
            reductions: at.reductions,
        })));
        true
    }

    /// Compiles an expression into a batch slot, or fails the attempt.
    fn fuse_expr(&mut self, at: &mut FuseAttempt, e: &Expr) -> Option<u8> {
        use crate::fuse::VOp;
        match e {
            Expr::Var(name) => {
                if let Some(s) = at.locals.get(name) {
                    return Some(*s);
                }
                if at.acc_ids.contains_key(name) {
                    // Accumulators may not feed value pipelines.
                    return None;
                }
                match self.scope.get(name) {
                    Some((Loc::F(reg), Ty::F64)) => {
                        let reg = *reg;
                        at.param_slot(reg)
                    }
                    _ => None,
                }
            }
            Expr::LitF64(x) => at.const_slot(*x),
            Expr::LitBool(b) => at.const_slot(if *b { 1.0 } else { 0.0 }),
            Expr::Bin(op, a, b) => {
                let ra = self.fuse_expr(at, a)?;
                let rb = self.fuse_expr(at, b)?;
                let d = at.slot()?;
                let vop = match op {
                    BinOp::Add => VOp::Add(d, ra, rb),
                    BinOp::Sub => VOp::Sub(d, ra, rb),
                    BinOp::Mul => VOp::Mul(d, ra, rb),
                    BinOp::Div => VOp::Div(d, ra, rb),
                    BinOp::Rem => VOp::Rem(d, ra, rb),
                    BinOp::Min => VOp::Min(d, ra, rb),
                    BinOp::Max => VOp::Max(d, ra, rb),
                    BinOp::Lt => VOp::Lt(d, ra, rb),
                    BinOp::Le => VOp::Le(d, ra, rb),
                    BinOp::Gt => VOp::Gt(d, ra, rb),
                    BinOp::Ge => VOp::Ge(d, ra, rb),
                    BinOp::Eq => VOp::EqM(d, ra, rb),
                    BinOp::Ne => VOp::NeM(d, ra, rb),
                    BinOp::And => VOp::AndM(d, ra, rb),
                    BinOp::Or => VOp::OrM(d, ra, rb),
                };
                at.tape.push(vop);
                Some(d)
            }
            Expr::Un(op, a) => {
                let ra = self.fuse_expr(at, a)?;
                let d = at.slot()?;
                let vop = match op {
                    UnOp::Neg => VOp::Neg(d, ra),
                    UnOp::Abs => VOp::Abs(d, ra),
                    UnOp::Sqrt => VOp::Sqrt(d, ra),
                    UnOp::Floor => VOp::Floor(d, ra),
                    UnOp::Not => VOp::NotM(d, ra),
                };
                at.tape.push(vop);
                Some(d)
            }
            Expr::If(c, t, els) => {
                let rc = self.fuse_expr(at, c)?;
                let rt = self.fuse_expr(at, t)?;
                let re = self.fuse_expr(at, els)?;
                let d = at.slot()?;
                at.tape.push(VOp::Select {
                    dst: d,
                    mask: rc,
                    t: rt,
                    e: re,
                });
                Some(d)
            }
            // Integer literals, casts, calls, pairs, rows: generic path.
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// The vectorized tier (see crate::batch).
// ---------------------------------------------------------------------

/// Builder state for one vectorization attempt. All state is local to
/// the attempt: a failed attempt leaves the compiler untouched.
struct VecAttempt {
    n_f: u16,
    n_i: u16,
    n_b: u16,
    prologue: Vec<crate::batch::BInit>,
    tape: Vec<crate::batch::BOp>,
    /// Loop-local scalars → (lane, slot).
    locals: HashMap<String, (crate::batch::Lane, u8)>,
    /// Constant caches: value image → broadcast slot.
    consts_f: HashMap<u64, u8>,
    consts_i: HashMap<i64, u8>,
    consts_b: [Option<u8>; 2],
    /// Loop-invariant registers → broadcast slot, per destination lane.
    f_param_slots: HashMap<u32, u8>,
    i_param_slots: HashMap<u32, u8>,
    b_param_slots: HashMap<u32, u8>,
    /// F-bank registers snapshotted at loop entry.
    f_params: Vec<u32>,
    /// I-bank registers snapshotted at loop entry (i64 *and* bool —
    /// booleans live in I registers).
    i_params: Vec<u32>,
    i_param_idx: HashMap<u32, u8>,
    /// Accumulators: name → index, plus their registers in order.
    f_acc_ids: HashMap<String, u8>,
    f_accs: Vec<u32>,
    i_acc_ids: HashMap<String, u8>,
    i_accs: Vec<u32>,
    /// Trapping ops (integer div/rem) emitted so far. Snapshotted around
    /// lazily-evaluated subexpressions (short-circuit right operands,
    /// conditional branches): batch execution is eager, so a trap there
    /// could fire on lanes the scalar semantics never evaluates.
    n_traps: u32,
    /// Integer divisions whose zero-divisor guard was dropped because
    /// range analysis proved the divisor excludes zero. Tallied into
    /// `Program::n_guards_dropped` only when the attempt succeeds.
    guards_dropped: u32,
    /// Interval evidence for each dropped guard, in emission order —
    /// recorded on the batch program for the tape verifier to re-derive.
    div_proofs: Vec<crate::batch::DivProof>,
    /// Yields emitted so far (at most one: a second yield per iteration
    /// interleaves per element, which batching would reorder).
    n_outs: u32,
    /// Whether any observable effect (fold, group upsert, yield) exists.
    effects: bool,
}

const VEC_SLOT_CAP: u16 = 200;

impl VecAttempt {
    fn slot_f(&mut self) -> Result<u8, FallbackReason> {
        if self.n_f >= VEC_SLOT_CAP {
            return Err(FallbackReason::Budget("f64 slot"));
        }
        self.n_f += 1;
        Ok((self.n_f - 1) as u8)
    }

    fn slot_i(&mut self) -> Result<u8, FallbackReason> {
        if self.n_i >= VEC_SLOT_CAP {
            return Err(FallbackReason::Budget("i64 slot"));
        }
        self.n_i += 1;
        Ok((self.n_i - 1) as u8)
    }

    fn slot_b(&mut self) -> Result<u8, FallbackReason> {
        if self.n_b >= VEC_SLOT_CAP {
            return Err(FallbackReason::Budget("bool slot"));
        }
        self.n_b += 1;
        Ok((self.n_b - 1) as u8)
    }

    fn const_f(&mut self, x: f64) -> Result<u8, FallbackReason> {
        if let Some(s) = self.consts_f.get(&x.to_bits()) {
            return Ok(*s);
        }
        let s = self.slot_f()?;
        self.prologue.push(crate::batch::BInit::ConstF(s, x));
        self.consts_f.insert(x.to_bits(), s);
        Ok(s)
    }

    fn const_i(&mut self, x: i64) -> Result<u8, FallbackReason> {
        if let Some(s) = self.consts_i.get(&x) {
            return Ok(*s);
        }
        let s = self.slot_i()?;
        self.prologue.push(crate::batch::BInit::ConstI(s, x));
        self.consts_i.insert(x, s);
        Ok(s)
    }

    fn const_b(&mut self, x: bool) -> Result<u8, FallbackReason> {
        if let Some(s) = self.consts_b[usize::from(x)] {
            return Ok(s);
        }
        let s = self.slot_b()?;
        self.prologue.push(crate::batch::BInit::ConstB(s, x));
        self.consts_b[usize::from(x)] = Some(s);
        Ok(s)
    }

    /// Index of an I-bank register in the loop-entry snapshot.
    fn iparam_index(&mut self, reg: u32) -> Result<u8, FallbackReason> {
        if let Some(i) = self.i_param_idx.get(&reg) {
            return Ok(*i);
        }
        if self.i_params.len() >= VEC_SLOT_CAP as usize {
            return Err(FallbackReason::Budget("parameter"));
        }
        let idx = self.i_params.len() as u8;
        self.i_params.push(reg);
        self.i_param_idx.insert(reg, idx);
        Ok(idx)
    }

    fn param_f(&mut self, reg: u32) -> Result<u8, FallbackReason> {
        if let Some(s) = self.f_param_slots.get(&reg) {
            return Ok(*s);
        }
        if self.f_params.len() >= VEC_SLOT_CAP as usize {
            return Err(FallbackReason::Budget("parameter"));
        }
        let s = self.slot_f()?;
        let idx = self.f_params.len() as u8;
        self.f_params.push(reg);
        self.prologue.push(crate::batch::BInit::ParamF(s, idx));
        self.f_param_slots.insert(reg, s);
        Ok(s)
    }

    fn param_i(&mut self, reg: u32) -> Result<u8, FallbackReason> {
        if let Some(s) = self.i_param_slots.get(&reg) {
            return Ok(*s);
        }
        let s = self.slot_i()?;
        let idx = self.iparam_index(reg)?;
        self.prologue.push(crate::batch::BInit::ParamI(s, idx));
        self.i_param_slots.insert(reg, s);
        Ok(s)
    }

    fn param_b(&mut self, reg: u32) -> Result<u8, FallbackReason> {
        if let Some(s) = self.b_param_slots.get(&reg) {
            return Ok(*s);
        }
        let s = self.slot_b()?;
        let idx = self.iparam_index(reg)?;
        self.prologue.push(crate::batch::BInit::ParamB(s, idx));
        self.b_param_slots.insert(reg, s);
        Ok(s)
    }
}

/// One-word description of a statement for the fallback taxonomy.
fn stmt_kind(s: &Stmt) -> &'static str {
    match s {
        Stmt::Decl { .. } => "declaration",
        Stmt::Assign { .. } => "assignment",
        Stmt::For { .. } => "nested loop",
        Stmt::IfNotContinue { .. } => "filter",
        Stmt::IfBreak { .. } => "early break",
        Stmt::If { .. } => "branching statement",
        Stmt::Continue => "continue",
        Stmt::DeclSink { .. } => "sink declaration",
        Stmt::GroupPut { .. } => "group-put sink",
        Stmt::GroupAggUpdate { .. } => "grouped aggregate",
        Stmt::SinkPush { .. } => "order-sensitive sink push",
        Stmt::SinkSeal { .. } => "sink seal",
        Stmt::Yield { .. } => "yield",
        Stmt::Return { .. } => "return",
        Stmt::ReturnSink { .. } => "return-sink",
        Stmt::BlockRef(_) => "block reference",
    }
}

/// One-word description of an expression for the fallback taxonomy.
fn expr_kind(e: &Expr) -> &'static str {
    match e {
        Expr::Var(_) => "variable",
        Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_) => "literal",
        Expr::Bin(..) => "binary operator",
        Expr::Un(..) => "unary operator",
        Expr::Call(..) => "udf call",
        Expr::Field(..) => "pair projection",
        Expr::RowIndex(..) => "row indexing",
        Expr::RowLen(_) => "row length",
        Expr::MkPair(..) => "pair construction",
        Expr::If(..) => "conditional",
        Expr::Cast(..) => "cast",
    }
}

/// Conservative syntactic check: could evaluating `e` trap at run time?
/// Used for expressions the vectorizer would *drop* (a grouped-count's
/// unused value operand): dropping a trapping expression would erase an
/// error the scalar semantics produces.
fn may_trap(e: &Expr) -> bool {
    match e {
        // Type-blind: f64 div/rem never traps, but we cannot tell here.
        Expr::Bin(BinOp::Div | BinOp::Rem, ..) | Expr::RowIndex(..) => true,
        Expr::Bin(_, a, b) | Expr::MkPair(a, b) => may_trap(a) || may_trap(b),
        Expr::Un(_, a) | Expr::Field(a, _) | Expr::Cast(_, a) | Expr::RowLen(a) => may_trap(a),
        Expr::If(c, t, els) => may_trap(c) || may_trap(t) || may_trap(els),
        Expr::Call(_, args) => args.iter().any(may_trap),
        Expr::Var(_) | Expr::LitF64(_) | Expr::LitI64(_) | Expr::LitBool(_) => false,
    }
}

impl<'a> Compiler<'a> {
    /// Whether range analysis proves the integer divisor `e` can never
    /// be zero, on *any* input — the proof that lets the vectorizer
    /// drop the per-lane zero-divisor guard (and, because the division
    /// then counts as non-trapping, accept loops whose divisions sit
    /// under conditionals or short-circuit operands). Conservative:
    /// unknown types and unbounded intervals answer `None`.
    ///
    /// On success this returns the *evidence* — the divisor and the type
    /// environment it was analyzed under — which is recorded on the batch
    /// program so the tape verifier can independently re-derive the fact
    /// rather than trusting that the compiler checked it. The environment
    /// is name-sorted within each binding group (outer scope, then loop
    /// locals, which shadow) so the record is byte-stable across compiles
    /// of the same query.
    fn divisor_proof(&self, at: &VecAttempt, e: &Expr) -> Option<crate::batch::DivProof> {
        use crate::batch::Lane;
        let mut bindings: Vec<(String, Ty)> = self
            .scope
            .iter()
            .filter(|(_, (_, ty))| matches!(ty, Ty::F64 | Ty::I64 | Ty::Bool))
            .map(|(name, (_, ty))| (name.clone(), ty.clone()))
            .collect();
        bindings.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        // Loop locals shadow outer registers, so they bind last.
        let mut locals: Vec<(String, Ty)> = at
            .locals
            .iter()
            .map(|(name, (lane, _))| {
                let ty = match lane {
                    Lane::F => Ty::F64,
                    Lane::I => Ty::I64,
                    Lane::B => Ty::Bool,
                };
                (name.clone(), ty)
            })
            .collect();
        locals.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        bindings.extend(locals);
        let mut env = steno_expr::typecheck::TyEnv::new();
        for (name, ty) in &bindings {
            env = env.with(name.clone(), ty.clone());
        }
        let facts = steno_analysis::analyze(e, &env);
        if facts.range.is_some_and(|r| r.excludes_zero()) {
            Some(crate::batch::DivProof {
                divisor: e.clone(),
                env: bindings,
            })
        } else {
            None
        }
    }

    /// Attempts to compile a loop with the vectorized tier, emitting one
    /// [`Instr::BatchLoop`] on success. On failure nothing is emitted,
    /// no compiler state changes, and the returned reason joins the
    /// program's fallback taxonomy.
    fn try_vectorize_loop(
        &mut self,
        p: &ImpProgram,
        header: &LoopHeader,
        elem_var: &str,
        body: steno_codegen::imp::BlockId,
    ) -> Result<(), FallbackReason> {
        use crate::batch::{BOp, BatchProgram, KeyRef, Lane};

        let LoopHeader::Source { name, elem_ty } = header else {
            return Err(FallbackReason::NotSourceLoop);
        };
        let src_lane = match elem_ty {
            Ty::F64 => Lane::F,
            Ty::I64 => Lane::I,
            Ty::Bool => Lane::B,
            other => return Err(FallbackReason::BoxedSource(other.clone())),
        };
        let stmts = p.flatten(body);

        // Pre-scan: statement shapes, and which names are assigned (those
        // must be unboxed accumulators declared outside the loop).
        let mut assigned: Vec<&str> = Vec::new();
        for s in &stmts {
            match s {
                Stmt::Decl { ty, .. } => {
                    if !matches!(ty, Ty::F64 | Ty::I64 | Ty::Bool) {
                        return Err(FallbackReason::BoxedLocal(ty.clone()));
                    }
                }
                Stmt::IfNotContinue { .. }
                | Stmt::GroupAggUpdate { .. }
                | Stmt::Yield { .. } => {}
                Stmt::Assign { name, .. } => assigned.push(name),
                other => {
                    return Err(FallbackReason::Statement(stmt_kind(other)))
                }
            }
        }

        let mut at = VecAttempt {
            n_f: 0,
            n_i: 0,
            n_b: 0,
            prologue: Vec::new(),
            tape: Vec::new(),
            locals: HashMap::new(),
            consts_f: HashMap::new(),
            consts_i: HashMap::new(),
            consts_b: [None, None],
            f_param_slots: HashMap::new(),
            i_param_slots: HashMap::new(),
            b_param_slots: HashMap::new(),
            f_params: Vec::new(),
            i_params: Vec::new(),
            i_param_idx: HashMap::new(),
            f_acc_ids: HashMap::new(),
            f_accs: Vec::new(),
            i_acc_ids: HashMap::new(),
            i_accs: Vec::new(),
            n_traps: 0,
            guards_dropped: 0,
            div_proofs: Vec::new(),
            n_outs: 0,
            effects: false,
        };

        // Register accumulators up front so expression compilation can
        // reject reads of them inside value pipelines.
        for name in &assigned {
            if at.f_acc_ids.contains_key(*name) || at.i_acc_ids.contains_key(*name) {
                continue;
            }
            match self.scope.get(*name) {
                Some((Loc::F(reg), Ty::F64)) => {
                    if at.f_accs.len() >= VEC_SLOT_CAP as usize {
                        return Err(FallbackReason::Budget("accumulator"));
                    }
                    let id = at.f_accs.len() as u8;
                    at.f_accs.push(*reg);
                    at.f_acc_ids.insert((*name).to_string(), id);
                }
                Some((Loc::I(reg), Ty::I64)) => {
                    if at.i_accs.len() >= VEC_SLOT_CAP as usize {
                        return Err(FallbackReason::Budget("accumulator"));
                    }
                    let id = at.i_accs.len() as u8;
                    at.i_accs.push(*reg);
                    at.i_acc_ids.insert((*name).to_string(), id);
                }
                _ => {
                    return Err(FallbackReason::NotUnboxedAccumulator((*name).to_string()))
                }
            }
        }

        // The loop element.
        let elem_slot = match src_lane {
            Lane::F => {
                let s = at.slot_f()?;
                at.tape.push(BOp::LoadF(s));
                (Lane::F, s)
            }
            Lane::I => {
                let s = at.slot_i()?;
                at.tape.push(BOp::LoadI(s));
                (Lane::I, s)
            }
            Lane::B => {
                let s = at.slot_b()?;
                at.tape.push(BOp::LoadB(s));
                (Lane::B, s)
            }
        };
        at.locals.insert(elem_var.to_string(), elem_slot);

        // Compile the body in statement order onto the unified tape.
        for s in &stmts {
            match s {
                Stmt::Decl { name, ty, init } => {
                    let (lane, slot) = self.vec_expr(&mut at, init)?;
                    let matches_ty = matches!(
                        (ty, lane),
                        (Ty::F64, Lane::F) | (Ty::I64, Lane::I) | (Ty::Bool, Lane::B)
                    );
                    if !matches_ty {
                        return Err(FallbackReason::DeclLaneMismatch(ty.clone()));
                    }
                    at.locals.insert(name.clone(), (lane, slot));
                }
                Stmt::IfNotContinue { cond } => {
                    let (lane, c) = self.vec_expr(&mut at, cond)?;
                    if lane != Lane::B {
                        return Err(FallbackReason::Shape("filter predicate is not boolean"));
                    }
                    at.tape.push(BOp::Filter(c));
                }
                Stmt::Assign { name, expr } => {
                    // Recognize acc = acc + e / acc.min(e) / acc.max(e).
                    let (kind, e) = match expr {
                        Expr::Bin(BinOp::Add, a, b) => {
                            if **a == Expr::Var(name.clone()) {
                                ('+', b.as_ref())
                            } else if **b == Expr::Var(name.clone()) {
                                ('+', a.as_ref())
                            } else {
                                return Err(FallbackReason::Shape("assignment is not an accumulator fold"));
                            }
                        }
                        Expr::Bin(BinOp::Min, a, b) if **a == Expr::Var(name.clone()) => {
                            ('<', b.as_ref())
                        }
                        Expr::Bin(BinOp::Max, a, b) if **a == Expr::Var(name.clone()) => {
                            ('>', b.as_ref())
                        }
                        _ => return Err(FallbackReason::Shape("assignment is not an accumulator fold")),
                    };
                    let (lane, val) = self.vec_expr(&mut at, e)?;
                    if let Some(acc) = at.f_acc_ids.get(name.as_str()).copied() {
                        if lane != Lane::F {
                            return Err(FallbackReason::LaneMismatch("fold"));
                        }
                        at.tape.push(match kind {
                            '+' => BOp::RedAddF { acc, val },
                            '<' => BOp::RedMinF { acc, val },
                            _ => BOp::RedMaxF { acc, val },
                        });
                    } else if let Some(acc) = at.i_acc_ids.get(name.as_str()).copied() {
                        if lane != Lane::I {
                            return Err(FallbackReason::LaneMismatch("fold"));
                        }
                        at.tape.push(match kind {
                            '+' => BOp::RedAddI { acc, val },
                            '<' => BOp::RedMinI { acc, val },
                            _ => BOp::RedMaxI { acc, val },
                        });
                    } else {
                        return Err(FallbackReason::Shape("assignment target is not an accumulator"));
                    }
                    at.effects = true;
                }
                Stmt::GroupAggUpdate {
                    sink,
                    key,
                    acc_param,
                    elem_param,
                    value,
                    update,
                } => {
                    let Some(meta) = self.sinks.get(sink) else {
                        return Err(FallbackReason::UnknownSink(sink.clone()));
                    };
                    let id = meta.id;
                    let repr = match &meta.acc {
                        Some((AccRepr::SF, _)) => AccRepr::SF,
                        Some((AccRepr::SI, _)) => AccRepr::SI,
                        _ => return Err(FallbackReason::Shape("grouped aggregate is not fully scalar")),
                    };
                    let (klane, kslot) = self.vec_expr(&mut at, key)?;
                    let keyref = match klane {
                        Lane::F => KeyRef::F(kslot),
                        Lane::I => KeyRef::I(kslot),
                        Lane::B => KeyRef::B(kslot),
                    };
                    // The scalar semantics evaluates `value` per element
                    // even when the fold ignores it; dropping it is only
                    // sound when it cannot trap.
                    let update_vars = steno_expr::subst::free_vars(update);
                    if !update_vars.contains(elem_param) && may_trap(value) {
                        return Err(FallbackReason::DroppedValueMayTrap);
                    }
                    let u = steno_expr::subst::subst(update, elem_param, value);
                    let acc_var = Expr::Var(acc_param.clone());
                    let Expr::Bin(BinOp::Add, a, b) = &u else {
                        return Err(FallbackReason::Shape("grouped fold is not a sum"));
                    };
                    let e = if **a == acc_var {
                        &**b
                    } else if **b == acc_var {
                        &**a
                    } else {
                        return Err(FallbackReason::Shape("grouped fold is not `acc + e`"));
                    };
                    if steno_expr::subst::free_vars(e).contains(acc_param) {
                        return Err(FallbackReason::Shape("grouped fold reads the accumulator non-linearly"));
                    }
                    let (vlane, val) = self.vec_expr(&mut at, e)?;
                    match (repr, vlane) {
                        (AccRepr::SF, Lane::F) => at.tape.push(BOp::GroupAddF {
                            sink: id,
                            key: keyref,
                            val,
                        }),
                        (AccRepr::SI, Lane::I) => at.tape.push(BOp::GroupAddI {
                            sink: id,
                            key: keyref,
                            val,
                        }),
                        _ => return Err(FallbackReason::LaneMismatch("grouped fold")),
                    }
                    at.effects = true;
                }
                Stmt::Yield { value } => {
                    if at.n_outs >= 1 {
                        return Err(FallbackReason::Shape("multiple yields per iteration"));
                    }
                    let (lane, slot) = self.vec_expr(&mut at, value)?;
                    at.tape.push(match lane {
                        Lane::F => BOp::OutF(slot),
                        Lane::I => BOp::OutI(slot),
                        Lane::B => BOp::OutB(slot),
                    });
                    at.n_outs += 1;
                    at.effects = true;
                }
                other => {
                    return Err(FallbackReason::Statement(stmt_kind(other)))
                }
            }
        }
        if !at.effects {
            return Err(FallbackReason::Shape("loop has no batchable effects"));
        }

        // Success: only now does compiler state change.
        let sid = self.src_id(name);
        self.n_batch += 1;
        self.n_guards_dropped += at.guards_dropped;
        let mut bp = BatchProgram {
            src: sid,
            src_lane,
            f_params: at.f_params,
            i_params: at.i_params,
            f_accs: at.f_accs,
            i_accs: at.i_accs,
            n_f: at.n_f as u8,
            n_i: at.n_i as u8,
            n_b: at.n_b as u8,
            prologue: at.prologue,
            tape: at.tape,
            fused: None,
            shadow: None,
            div_proofs: at.div_proofs,
        };
        // Reference tape for the tape verifier, captured before the
        // backend passes below rewrite the slots and ops.
        bp.shadow = Some(std::sync::Arc::new(crate::batch::BatchShadow {
            n_f: bp.n_f,
            n_i: bp.n_i,
            n_b: bp.n_b,
            prologue: bp.prologue.clone(),
            tape: bp.tape.clone(),
        }));
        // Backend passes: recognize a whole-tape fused kernel first (the
        // planner reads the SSA tape the vectorizer emitted), then fuse
        // adjacent kernel pairs, then pack column lifetimes. FusedTape
        // addresses accumulators by position, so packing cannot
        // invalidate it.
        bp.fused = crate::fuse_kernels::plan(&bp);
        if let Some(ft) = &bp.fused {
            self.fused_kernels.push(ft.label());
        }
        for name in crate::fuse_kernels::peephole(&mut bp) {
            self.fused_kernels.push(name.to_string());
        }
        self.n_slots_reused += crate::lifetimes::pack_batch_slots(&mut bp);
        self.emit(Instr::BatchLoop(std::sync::Arc::new(bp)));
        Ok(())
    }

    /// Compiles an expression into a typed batch slot, or fails the
    /// attempt with a taxonomy reason.
    fn vec_expr(
        &mut self,
        at: &mut VecAttempt,
        e: &Expr,
    ) -> Result<(crate::batch::Lane, u8), FallbackReason> {
        use crate::batch::{BOp, Lane};
        match e {
            Expr::Var(name) => {
                if let Some(ls) = at.locals.get(name) {
                    return Ok(*ls);
                }
                if at.f_acc_ids.contains_key(name) || at.i_acc_ids.contains_key(name) {
                    return Err(FallbackReason::AccumulatorInPipeline(name.clone()));
                }
                match self.scope.get(name) {
                    Some((Loc::F(reg), Ty::F64)) => {
                        let reg = *reg;
                        Ok((Lane::F, at.param_f(reg)?))
                    }
                    Some((Loc::I(reg), Ty::I64)) => {
                        let reg = *reg;
                        Ok((Lane::I, at.param_i(reg)?))
                    }
                    Some((Loc::I(reg), Ty::Bool)) => {
                        let reg = *reg;
                        Ok((Lane::B, at.param_b(reg)?))
                    }
                    _ => Err(FallbackReason::NotUnboxedScalar(name.clone())),
                }
            }
            Expr::LitF64(x) => Ok((Lane::F, at.const_f(*x)?)),
            Expr::LitI64(x) => Ok((Lane::I, at.const_i(*x)?)),
            Expr::LitBool(b) => Ok((Lane::B, at.const_b(*b)?)),
            Expr::Bin(op, a, b) if op.is_logical() => {
                let (la, ra) = self.vec_expr(at, a)?;
                let traps_before = at.n_traps;
                let (lb, rb) = self.vec_expr(at, b)?;
                if la != Lane::B || lb != Lane::B {
                    return Err(FallbackReason::Shape("logical operand is not boolean"));
                }
                if at.n_traps != traps_before {
                    // Eager evaluation would trap on lanes the scalar
                    // short-circuit never reaches.
                    return Err(FallbackReason::TrapUnderShortCircuit);
                }
                let d = at.slot_b()?;
                at.tape.push(match op {
                    BinOp::And => BOp::AndB(d, ra, rb),
                    _ => BOp::OrB(d, ra, rb),
                });
                Ok((Lane::B, d))
            }
            Expr::Bin(op, a, b) if op.is_comparison() => {
                let (la, ra) = self.vec_expr(at, a)?;
                let (lb, rb) = self.vec_expr(at, b)?;
                if la != lb {
                    return Err(FallbackReason::LaneMismatch("comparison"));
                }
                let d = at.slot_b()?;
                let bop = match (la, op) {
                    (Lane::F, BinOp::Eq) => BOp::EqFB(d, ra, rb),
                    (Lane::F, BinOp::Ne) => BOp::NeFB(d, ra, rb),
                    (Lane::F, BinOp::Lt) => BOp::LtFB(d, ra, rb),
                    (Lane::F, BinOp::Le) => BOp::LeFB(d, ra, rb),
                    (Lane::F, BinOp::Gt) => BOp::GtFB(d, ra, rb),
                    (Lane::F, BinOp::Ge) => BOp::GeFB(d, ra, rb),
                    (Lane::I, BinOp::Eq) => BOp::EqIB(d, ra, rb),
                    (Lane::I, BinOp::Ne) => BOp::NeIB(d, ra, rb),
                    (Lane::I, BinOp::Lt) => BOp::LtIB(d, ra, rb),
                    (Lane::I, BinOp::Le) => BOp::LeIB(d, ra, rb),
                    (Lane::I, BinOp::Gt) => BOp::GtIB(d, ra, rb),
                    (Lane::I, BinOp::Ge) => BOp::GeIB(d, ra, rb),
                    (Lane::B, BinOp::Eq) => BOp::EqBB(d, ra, rb),
                    (Lane::B, BinOp::Ne) => BOp::NeBB(d, ra, rb),
                    (Lane::B, _) => return Err(FallbackReason::Shape("ordering comparison on booleans")),
                    _ => unreachable!("non-comparison op in comparison arm"),
                };
                at.tape.push(bop);
                Ok((Lane::B, d))
            }
            Expr::Bin(op, a, b) => {
                let (la, ra) = self.vec_expr(at, a)?;
                let (lb, rb) = self.vec_expr(at, b)?;
                if la != lb {
                    return Err(FallbackReason::LaneMismatch("arithmetic"));
                }
                match la {
                    Lane::F => {
                        let d = at.slot_f()?;
                        let bop = match op {
                            BinOp::Add => BOp::AddF(d, ra, rb),
                            BinOp::Sub => BOp::SubF(d, ra, rb),
                            BinOp::Mul => BOp::MulF(d, ra, rb),
                            BinOp::Div => BOp::DivF(d, ra, rb),
                            BinOp::Rem => BOp::RemF(d, ra, rb),
                            BinOp::Min => BOp::MinF(d, ra, rb),
                            BinOp::Max => BOp::MaxF(d, ra, rb),
                            _ => {
                                return Err(FallbackReason::Operator {
                                    op: op.symbol(),
                                    lane: "f64",
                                })
                            }
                        };
                        at.tape.push(bop);
                        Ok((Lane::F, d))
                    }
                    Lane::I => {
                        let d = at.slot_i()?;
                        let bop = match op {
                            BinOp::Add => BOp::AddI(d, ra, rb),
                            BinOp::Sub => BOp::SubI(d, ra, rb),
                            BinOp::Mul => BOp::MulI(d, ra, rb),
                            BinOp::Min => BOp::MinI(d, ra, rb),
                            BinOp::Max => BOp::MaxI(d, ra, rb),
                            BinOp::Div => {
                                if let Some(proof) = self.divisor_proof(at, b) {
                                    at.guards_dropped += 1;
                                    at.div_proofs.push(proof);
                                    BOp::DivIUnchecked(d, ra, rb)
                                } else {
                                    at.n_traps += 1;
                                    BOp::DivI(d, ra, rb)
                                }
                            }
                            BinOp::Rem => {
                                if let Some(proof) = self.divisor_proof(at, b) {
                                    at.guards_dropped += 1;
                                    at.div_proofs.push(proof);
                                    BOp::RemIUnchecked(d, ra, rb)
                                } else {
                                    at.n_traps += 1;
                                    BOp::RemI(d, ra, rb)
                                }
                            }
                            _ => {
                                return Err(FallbackReason::Operator {
                                    op: op.symbol(),
                                    lane: "i64",
                                })
                            }
                        };
                        at.tape.push(bop);
                        Ok((Lane::I, d))
                    }
                    Lane::B => Err(FallbackReason::Shape("arithmetic on booleans")),
                }
            }
            Expr::Un(op, a) => {
                let (la, ra) = self.vec_expr(at, a)?;
                match (op, la) {
                    (UnOp::Neg, Lane::F) => {
                        let d = at.slot_f()?;
                        at.tape.push(BOp::NegF(d, ra));
                        Ok((Lane::F, d))
                    }
                    (UnOp::Abs, Lane::F) => {
                        let d = at.slot_f()?;
                        at.tape.push(BOp::AbsF(d, ra));
                        Ok((Lane::F, d))
                    }
                    (UnOp::Sqrt, Lane::F) => {
                        let d = at.slot_f()?;
                        at.tape.push(BOp::SqrtF(d, ra));
                        Ok((Lane::F, d))
                    }
                    (UnOp::Floor, Lane::F) => {
                        let d = at.slot_f()?;
                        at.tape.push(BOp::FloorF(d, ra));
                        Ok((Lane::F, d))
                    }
                    (UnOp::Neg, Lane::I) => {
                        let d = at.slot_i()?;
                        at.tape.push(BOp::NegI(d, ra));
                        Ok((Lane::I, d))
                    }
                    (UnOp::Abs, Lane::I) => {
                        let d = at.slot_i()?;
                        at.tape.push(BOp::AbsI(d, ra));
                        Ok((Lane::I, d))
                    }
                    (UnOp::Not, Lane::B) => {
                        let d = at.slot_b()?;
                        at.tape.push(BOp::NotB(d, ra));
                        Ok((Lane::B, d))
                    }
                    _ => Err(FallbackReason::UnaryWrongLane(op.symbol())),
                }
            }
            Expr::If(c, t, els) => {
                let (lc, rc) = self.vec_expr(at, c)?;
                if lc != Lane::B {
                    return Err(FallbackReason::Shape("conditional condition is not boolean"));
                }
                let traps_before = at.n_traps;
                let (lt, rt) = self.vec_expr(at, t)?;
                let (le, re) = self.vec_expr(at, els)?;
                if at.n_traps != traps_before {
                    // Lane-wise select evaluates both branches on every
                    // lane; the scalar semantics evaluates only one.
                    return Err(FallbackReason::TrapUnderConditional);
                }
                if lt != le {
                    return Err(FallbackReason::LaneMismatch("conditional branch"));
                }
                match lt {
                    Lane::F => {
                        let d = at.slot_f()?;
                        at.tape.push(BOp::SelF {
                            dst: d,
                            mask: rc,
                            t: rt,
                            e: re,
                        });
                        Ok((Lane::F, d))
                    }
                    Lane::I => {
                        let d = at.slot_i()?;
                        at.tape.push(BOp::SelI {
                            dst: d,
                            mask: rc,
                            t: rt,
                            e: re,
                        });
                        Ok((Lane::I, d))
                    }
                    Lane::B => {
                        let d = at.slot_b()?;
                        at.tape.push(BOp::SelB {
                            dst: d,
                            mask: rc,
                            t: rt,
                            e: re,
                        });
                        Ok((Lane::B, d))
                    }
                }
            }
            Expr::Cast(ty, a) => {
                let (la, ra) = self.vec_expr(at, a)?;
                match (la, ty) {
                    (Lane::F, Ty::I64) => {
                        let d = at.slot_i()?;
                        at.tape.push(BOp::F2I(d, ra));
                        Ok((Lane::I, d))
                    }
                    (Lane::I, Ty::F64) => {
                        let d = at.slot_f()?;
                        at.tape.push(BOp::I2F(d, ra));
                        Ok((Lane::F, d))
                    }
                    (Lane::F, Ty::F64) | (Lane::I, Ty::I64) | (Lane::B, Ty::Bool) => {
                        Ok((la, ra))
                    }
                    _ => Err(FallbackReason::CastUnsupported(ty.clone())),
                }
            }
            other => Err(FallbackReason::Expression(expr_kind(other))),
        }
    }
}
