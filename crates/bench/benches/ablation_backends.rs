//! Back-end ablation: where does the Steno speedup come from?
//!
//! SumSq through: the AST interpreter (no optimization at all), the VM
//! with the loop-fusion tier disabled (generated loops, per-instruction
//! dispatch), the fused-scalar VM, the batch-vectorized VM (the
//! default), and the boxed-iterator LINQ baseline for reference.

use bench::harness::Criterion;
use bench::{criterion_group, criterion_main};
use steno_expr::{DataContext, Expr, UdfRegistry};
use steno_linq::{interp, Enumerable};
use steno_query::Query;
use steno_vm::query::{StenoOptions, VectorizationPolicy};
use steno_vm::{CompiledQuery, EngineKind};

fn backends(c: &mut Criterion) {
    let n = 300_000;
    let data = bench::workloads::uniform_doubles(n, 42);
    let ctx = DataContext::new().with_source("xs", data.clone());
    let udfs = UdfRegistry::new();
    let q = Query::source("xs")
        .select(Expr::var("x") * Expr::var("x"), "x")
        .sum()
        .build();

    let vectorized = CompiledQuery::compile(&q, (&ctx).into(), &udfs).unwrap();
    assert_eq!(vectorized.engine(), EngineKind::Vectorized);
    let fused = CompiledQuery::compile_tuned(
        &q,
        (&ctx).into(),
        &udfs,
        StenoOptions {
            vectorize: VectorizationPolicy::Off,
            ..StenoOptions::default()
        },
    )
    .unwrap();
    assert!(fused.fused_loops() > 0);
    assert_eq!(fused.engine(), EngineKind::Scalar);
    let unfused = CompiledQuery::compile_tuned(
        &q,
        (&ctx).into(),
        &udfs,
        StenoOptions {
            fusion: false,
            vectorize: VectorizationPolicy::Off,
            ..StenoOptions::default()
        },
    )
    .unwrap();
    assert_eq!(unfused.fused_loops(), 0);
    let xs = Enumerable::from_vec(data);

    let mut group = c.benchmark_group("ablation_backends_sumsq");
    group.sample_size(10);
    group.bench_function("ast_interp", |b| {
        b.iter(|| std::hint::black_box(interp::execute(&q, &ctx, &udfs).unwrap()))
    });
    group.bench_function("linq_typed", |b| {
        b.iter(|| std::hint::black_box(xs.select(|x| x * x).sum()))
    });
    group.bench_function("vm_no_fusion", |b| {
        b.iter(|| std::hint::black_box(unfused.run(&ctx, &udfs).unwrap()))
    });
    group.bench_function("vm_fused", |b| {
        b.iter(|| std::hint::black_box(fused.run(&ctx, &udfs).unwrap()))
    });
    group.bench_function("vm_vectorized", |b| {
        b.iter(|| std::hint::black_box(vectorized.run(&ctx, &udfs).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, backends);
criterion_main!(benches);
