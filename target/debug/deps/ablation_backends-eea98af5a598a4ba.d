/root/repo/target/debug/deps/ablation_backends-eea98af5a598a4ba.d: crates/bench/benches/ablation_backends.rs Cargo.toml

/root/repo/target/debug/deps/libablation_backends-eea98af5a598a4ba.rmeta: crates/bench/benches/ablation_backends.rs Cargo.toml

crates/bench/benches/ablation_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
