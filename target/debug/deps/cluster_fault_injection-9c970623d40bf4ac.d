/root/repo/target/debug/deps/cluster_fault_injection-9c970623d40bf4ac.d: crates/steno-cluster/tests/cluster_fault_injection.rs

/root/repo/target/debug/deps/cluster_fault_injection-9c970623d40bf4ac: crates/steno-cluster/tests/cluster_fault_injection.rs

crates/steno-cluster/tests/cluster_fault_injection.rs:
