/root/repo/target/debug/examples/explain_profile-676b3ab93e30c1ba.d: examples/explain_profile.rs

/root/repo/target/debug/examples/explain_profile-676b3ab93e30c1ba: examples/explain_profile.rs

examples/explain_profile.rs:
