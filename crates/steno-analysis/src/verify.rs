//! The QUIL plan verifier.
//!
//! Every compile in a debug build (and the CI `verify` job) re-checks the
//! lowered and optimized chains from first principles, independently of
//! the code that produced them:
//!
//! 1. **Grammar** — the deep token sentence must be accepted by the
//!    pushdown recognizer of §5.1.
//! 2. **Typing** — element types are re-threaded through every operator
//!    and each selector body is re-typechecked with `steno-expr`'s
//!    checker, so a pass that rewrites an expression into an ill-typed
//!    one is caught before code generation.
//! 3. **Homomorphism** — each operator's parallel-safety class is
//!    re-derived from its structure and compared against
//!    [`QuilOp::is_homomorphic`]; a wrong flag would silently produce
//!    wrong answers on the cluster path, so a mismatch is a hard error.
//! 4. **Parallel plan** — [`steno_quil::parallel::plan`] is re-run and
//!    its claims are cross-checked: the map chain must itself verify,
//!    partial aggregation requires a declared combiner, and the combiner
//!    is tested for associativity on a grid of exactly-representable
//!    sample values (so legitimate floating-point reassociation is not
//!    flagged).

use std::fmt;

use steno_expr::eval::{eval, Env};
use steno_expr::typecheck::{infer, TyEnv};
use steno_expr::{Expr, Ty, TypeError, UdfRegistry, Value};
use steno_quil::grammar::Pda;
use steno_quil::ir::OpSpan;
use steno_quil::parallel::{plan, Reduce};
use steno_quil::{AggDesc, PredKind, QuilChain, QuilOp, SinkKind, SinkOp, SrcDesc, TransKind};

/// A verification failure: the plan does not satisfy an invariant the
/// optimizer claims to preserve.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// The token sentence violates the QUIL grammar.
    Grammar(String),
    /// An operator or selector failed re-typechecking.
    Type {
        /// Provenance of the offending operator.
        span: OpSpan,
        /// What was being checked.
        context: String,
        /// The expected type (or shape).
        expected: String,
        /// What was found instead.
        found: String,
    },
    /// An operator's homomorphism claim disagrees with the re-derivation.
    Homomorphism {
        /// Provenance of the offending operator.
        span: OpSpan,
        /// The value of `is_homomorphic()` the operator claims.
        claimed: bool,
    },
    /// An aggregate used for partial aggregation is not associative.
    Associativity {
        /// What failed, including the counterexample.
        detail: String,
    },
    /// The parallel plan is structurally inconsistent with its chain.
    Plan {
        /// What is inconsistent.
        detail: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Grammar(msg) => write!(f, "QUIL grammar violation: {msg}"),
            VerifyError::Type {
                span,
                context,
                expected,
                found,
            } => write!(
                f,
                "type error at {span}: {context}: expected {expected}, found {found}"
            ),
            VerifyError::Homomorphism { span, claimed } => write!(
                f,
                "homomorphism mismatch at {span}: operator claims {} but re-derivation disagrees",
                if *claimed {
                    "homomorphic"
                } else {
                    "non-homomorphic"
                }
            ),
            VerifyError::Associativity { detail } => {
                write!(f, "associativity violation: {detail}")
            }
            VerifyError::Plan { detail } => write!(f, "inconsistent parallel plan: {detail}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// What a successful verification covered, for `explain` output.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Operators re-typechecked, including nested chains.
    pub ops_checked: usize,
    /// Nested chains descended into.
    pub nested_chains: usize,
    /// `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)` sample triples evaluated.
    pub assoc_samples: usize,
}

/// Verifies a lowered (or optimized) QUIL chain against the invariants
/// listed in the module docs.
///
/// Nested chains reference outer-scope variables; a selector whose type
/// cannot be decided because of such free variables is skipped rather
/// than rejected, so the verifier never produces false alarms on valid
/// plans.
///
/// # Errors
///
/// Returns the first violated invariant as a [`VerifyError`].
pub fn verify(chain: &QuilChain, udfs: &UdfRegistry) -> Result<VerifyReport, VerifyError> {
    let mut report = VerifyReport::default();
    verify_in(chain, &TyEnv::new(), udfs, &mut report)?;
    verify_plan(chain, udfs, &mut report)?;
    Ok(report)
}

fn verify_in(
    chain: &QuilChain,
    env: &TyEnv,
    udfs: &UdfRegistry,
    report: &mut VerifyReport,
) -> Result<(), VerifyError> {
    Pda::recognize(&chain.tokens()).map_err(|e| VerifyError::Grammar(e.to_string()))?;

    let mut cur = chain.src.elem_ty();
    if let SrcDesc::Expr { expr, elem_ty } = &chain.src {
        check_expr(
            expr,
            env,
            udfs,
            &Ty::seq(elem_ty.clone()),
            OpSpan::none(),
            "source expression",
        )?;
    }

    for op in &chain.ops {
        report.ops_checked += 1;
        let span = op.span();
        let derived = derive_homomorphic(op);
        if derived != op.is_homomorphic() {
            return Err(VerifyError::Homomorphism {
                span,
                claimed: op.is_homomorphic(),
            });
        }
        match op {
            QuilOp::Trans {
                param,
                kind,
                in_ty,
                out_ty,
                ..
            } => {
                require_ty(&cur, in_ty, span, "transform input")?;
                let inner = env.clone().with(param.clone(), in_ty.clone());
                match kind {
                    TransKind::Expr(e) => {
                        check_expr(e, &inner, udfs, out_ty, span, "transform body")?;
                    }
                    TransKind::Nested(n) => {
                        report.nested_chains += 1;
                        verify_in(&n.chain, &inner, udfs, report)?;
                        let produced = n.chain.result_ty();
                        match &n.wrap {
                            Some((p, e)) => {
                                let wrap_env = inner.clone().with(p.clone(), produced);
                                check_expr(e, &wrap_env, udfs, out_ty, span, "nested wrapper")?;
                            }
                            None => {
                                // Aggregate-terminated nested queries
                                // yield one scalar per outer element;
                                // sequence-valued ones splice their
                                // elements into the stream (SelectMany).
                                let expected = if n.chain.is_scalar() {
                                    produced
                                } else {
                                    n.chain.elem_ty()
                                };
                                require_ty(&expected, out_ty, span, "nested result")?;
                            }
                        }
                    }
                }
                cur = out_ty.clone();
            }
            QuilOp::Pred {
                param,
                kind,
                elem_ty,
                ..
            } => {
                require_ty(&cur, elem_ty, span, "predicate input")?;
                let inner = env.clone().with(param.clone(), elem_ty.clone());
                match kind {
                    PredKind::Expr(e) | PredKind::TakeWhile(e) | PredKind::SkipWhile(e) => {
                        check_expr(e, &inner, udfs, &Ty::Bool, span, "predicate body")?;
                    }
                    PredKind::Nested(c) => {
                        report.nested_chains += 1;
                        verify_in(c, &inner, udfs, report)?;
                        require_ty(&c.result_ty(), &Ty::Bool, span, "nested predicate result")?;
                    }
                    PredKind::Take(_) | PredKind::Skip(_) => {}
                }
            }
            QuilOp::Sink(s) => {
                require_ty(&cur, &s.in_ty, span, "sink input")?;
                verify_sink(s, env, udfs, report)?;
                cur = s.out_ty.clone();
            }
        }
    }

    if let Some(agg) = &chain.agg {
        require_ty(&cur, &agg.elem_ty, OpSpan::none(), "aggregate input")?;
        verify_agg(agg, env, udfs, OpSpan::none())?;
    }
    Ok(())
}

/// Re-derives the parallel-safety class of an operator from structure
/// alone, independently of [`QuilOp::is_homomorphic`]: an operator is a
/// list homomorphism exactly when its effect on an element does not
/// depend on the element's position or on other elements.
fn derive_homomorphic(op: &QuilOp) -> bool {
    match op {
        // `map f (xs ++ ys) = map f xs ++ map f ys` for any per-element
        // transform, including nested subqueries over the element.
        QuilOp::Trans { .. } => true,
        QuilOp::Pred { kind, .. } => match kind {
            // Stateless filters distribute over concatenation.
            PredKind::Expr(_) | PredKind::Nested(_) => true,
            // Positional predicates consult a global element counter.
            PredKind::Take(_)
            | PredKind::Skip(_)
            | PredKind::TakeWhile(_)
            | PredKind::SkipWhile(_) => false,
        },
        // Sinks coordinate across the whole collection (grouping tables,
        // sort buffers, distinct sets).
        QuilOp::Sink(_) => false,
    }
}

fn verify_sink(
    s: &SinkOp,
    env: &TyEnv,
    udfs: &UdfRegistry,
    report: &mut VerifyReport,
) -> Result<(), VerifyError> {
    let span = s.span;
    let elem_env = env.clone().with(s.param.clone(), s.in_ty.clone());
    match &s.kind {
        SinkKind::GroupBy {
            key,
            elem,
            key_ty,
            val_ty,
        } => {
            check_expr(key, &elem_env, udfs, key_ty, span, "group key selector")?;
            match elem {
                Some(e) => check_expr(e, &elem_env, udfs, val_ty, span, "group element selector")?,
                None => require_ty(&s.in_ty, val_ty, span, "group element")?,
            }
            let expected = Ty::pair(key_ty.clone(), Ty::seq(val_ty.clone()));
            require_ty(&expected, &s.out_ty, span, "GroupBy output")?;
        }
        SinkKind::GroupByAggregate {
            key,
            elem,
            agg,
            key_param,
            agg_param,
            result,
            key_ty,
        } => {
            check_expr(key, &elem_env, udfs, key_ty, span, "group key selector")?;
            match elem {
                Some(e) => check_expr(
                    e,
                    &elem_env,
                    udfs,
                    &agg.elem_ty,
                    span,
                    "group element selector",
                )?,
                None => require_ty(&s.in_ty, &agg.elem_ty, span, "group element")?,
            }
            verify_agg(agg, env, udfs, span)?;
            report.assoc_samples += check_associativity(agg, udfs)?;
            let result_env = env
                .clone()
                .with(key_param.clone(), key_ty.clone())
                .with(agg_param.clone(), agg.out_ty.clone());
            check_expr(result, &result_env, udfs, &s.out_ty, span, "group result")?;
        }
        SinkKind::OrderBy { key, .. } => {
            // Any inferable key type is sortable under the VM's total
            // order; the body just has to typecheck.
            if let Err(e) = lenient_infer(key, &elem_env, udfs) {
                return Err(type_error(span, "sort key selector", "well-typed", e));
            }
            require_ty(&s.in_ty, &s.out_ty, span, "OrderBy output")?;
        }
        SinkKind::Distinct => require_ty(&s.in_ty, &s.out_ty, span, "Distinct output")?,
        SinkKind::ToVec => require_ty(&s.in_ty, &s.out_ty, span, "ToVec output")?,
    }
    Ok(())
}

fn verify_agg(
    agg: &AggDesc,
    env: &TyEnv,
    udfs: &UdfRegistry,
    span: OpSpan,
) -> Result<(), VerifyError> {
    check_expr(&agg.init, env, udfs, &agg.acc_ty, span, "aggregate seed")?;
    let upd_env = env
        .clone()
        .with(agg.acc_param.clone(), agg.acc_ty.clone())
        .with(agg.elem_param.clone(), agg.elem_ty.clone());
    check_expr(
        &agg.update,
        &upd_env,
        udfs,
        &agg.acc_ty,
        span,
        "aggregate update",
    )?;
    match &agg.finish {
        Some(fin) => {
            let fin_env = env.clone().with(agg.acc_param.clone(), agg.acc_ty.clone());
            check_expr(fin, &fin_env, udfs, &agg.out_ty, span, "aggregate finish")?;
        }
        None => require_ty(&agg.acc_ty, &agg.out_ty, span, "aggregate output")?,
    }
    if let Some(comb) = &agg.combine {
        let comb_env = env
            .clone()
            .with(agg.acc_param.clone(), agg.acc_ty.clone())
            .with(agg.rhs_param.clone(), agg.acc_ty.clone());
        check_expr(
            comb,
            &comb_env,
            udfs,
            &agg.acc_ty,
            span,
            "aggregate combiner",
        )?;
    }
    Ok(())
}

fn verify_plan(
    chain: &QuilChain,
    udfs: &UdfRegistry,
    report: &mut VerifyReport,
) -> Result<(), VerifyError> {
    let p = plan(chain);

    // The map chain must itself be a valid QUIL plan. (Plan cross-checks
    // are not re-run on it: its own plan is not what executes.)
    verify_in(&p.map_chain, &TyEnv::new(), udfs, report)?;

    // Every map-chain operator must be homomorphic, except a partial
    // sink/sort appended as the per-partition stage.
    let appended_partial = matches!(
        p.reduce,
        Reduce::MergeGroupedPartials { .. } | Reduce::MergeSorted { .. }
    );
    let body = if appended_partial {
        &p.map_chain.ops[..p.map_chain.ops.len().saturating_sub(1)]
    } else {
        &p.map_chain.ops[..]
    };
    for op in body {
        if !derive_homomorphic(op) {
            return Err(VerifyError::Plan {
                detail: format!(
                    "non-homomorphic operator {} scheduled in the parallel map stage",
                    op.span()
                ),
            });
        }
    }

    match &p.reduce {
        Reduce::Concat => {}
        Reduce::CombinePartials(agg) => {
            if !agg.is_associative() {
                return Err(VerifyError::Plan {
                    detail: "partial aggregation planned for an aggregate with no combiner".into(),
                });
            }
            let partial = p.map_chain.agg.as_ref().ok_or_else(|| VerifyError::Plan {
                detail: "partial aggregation planned but the map chain has no aggregate".into(),
            })?;
            if partial.out_ty != partial.acc_ty {
                return Err(VerifyError::Plan {
                    detail: "map-stage partial aggregate must emit the raw accumulator".into(),
                });
            }
            report.assoc_samples += check_associativity(agg, udfs)?;
        }
        Reduce::MergeGroupedPartials { agg, .. } => {
            if !agg.is_associative() {
                return Err(VerifyError::Plan {
                    detail: "grouped partial aggregation planned for an aggregate with no combiner"
                        .into(),
                });
            }
            let last = p.map_chain.ops.last();
            if !matches!(
                last,
                Some(QuilOp::Sink(SinkOp {
                    kind: SinkKind::GroupByAggregate { .. },
                    ..
                }))
            ) {
                return Err(VerifyError::Plan {
                    detail: "grouped merge planned but the map chain does not end in a grouped \
                             aggregate sink"
                        .into(),
                });
            }
            report.assoc_samples += check_associativity(agg, udfs)?;
        }
        Reduce::MergeSorted { .. } => {
            if !matches!(
                p.map_chain.ops.last(),
                Some(QuilOp::Sink(SinkOp {
                    kind: SinkKind::OrderBy { .. },
                    ..
                }))
            ) {
                return Err(VerifyError::Plan {
                    detail: "sorted merge planned but the map chain does not end in OrderBy".into(),
                });
            }
        }
        Reduce::SerialRest { .. } => {}
    }
    Ok(())
}

/// Tests `combine` for associativity on a grid of sample accumulator
/// values that are exactly representable (small halves for `f64`), so
/// floating-point reassociation — which the distributed plan accepts by
/// design — cannot produce spurious counterexamples. Returns the number
/// of triples checked.
fn check_associativity(agg: &AggDesc, udfs: &UdfRegistry) -> Result<usize, VerifyError> {
    let Some(comb) = &agg.combine else {
        return Ok(0);
    };
    let samples = sample_values(&agg.acc_ty, 4);
    if samples.is_empty() {
        return Ok(0);
    }
    let apply = |a: &Value, b: &Value| -> Option<Value> {
        let env = Env::new()
            .with(agg.acc_param.clone(), a.clone())
            .with(agg.rhs_param.clone(), b.clone());
        eval(comb, &env, udfs).ok()
    };
    let mut checked = 0;
    for a in &samples {
        for b in &samples {
            for c in &samples {
                let left = apply(a, b).and_then(|ab| apply(&ab, c));
                let right = apply(b, c).and_then(|bc| apply(a, &bc));
                let (Some(l), Some(r)) = (left, right) else {
                    continue;
                };
                checked += 1;
                if l != r {
                    return Err(VerifyError::Associativity {
                        detail: format!(
                            "combine `{comb}` of {:?} aggregate: (({a} ⊕ {b}) ⊕ {c}) = {l} but \
                             ({a} ⊕ ({b} ⊕ {c})) = {r}",
                            agg.kind
                        ),
                    });
                }
            }
        }
    }
    Ok(checked)
}

/// Sample accumulator values of type `ty`, exactly representable so
/// associative operators stay exact.
fn sample_values(ty: &Ty, per_side: usize) -> Vec<Value> {
    match ty {
        Ty::F64 => [-2.0, -0.5, 0.0, 1.0, 2.5]
            .into_iter()
            .map(Value::F64)
            .collect(),
        Ty::I64 => [-3, -1, 0, 1, 2, 7].into_iter().map(Value::I64).collect(),
        Ty::Bool => vec![Value::Bool(false), Value::Bool(true)],
        Ty::Pair(a, b) => {
            let xs = sample_values(a, per_side);
            let ys = sample_values(b, per_side);
            let mut out = Vec::new();
            for x in xs.iter().take(per_side) {
                for y in ys.iter().take(per_side) {
                    out.push(Value::pair(x.clone(), y.clone()));
                }
            }
            out
        }
        // Rows and sequences have no meaningful small sample grid.
        Ty::Row | Ty::Seq(_) => Vec::new(),
    }
}

/// Infers the type of `e`, treating unbound variables (outer-scope
/// references the verifier cannot see) as "unknown" rather than an
/// error.
fn lenient_infer(e: &Expr, env: &TyEnv, udfs: &UdfRegistry) -> Result<Option<Ty>, String> {
    match infer(e, env, udfs) {
        Ok(t) => Ok(Some(t)),
        Err(TypeError::UnboundVariable(_)) => Ok(None),
        Err(other) => Err(other.to_string()),
    }
}

fn check_expr(
    e: &Expr,
    env: &TyEnv,
    udfs: &UdfRegistry,
    expected: &Ty,
    span: OpSpan,
    context: &str,
) -> Result<(), VerifyError> {
    match lenient_infer(e, env, udfs) {
        Ok(Some(t)) if &t == expected => Ok(()),
        Ok(Some(t)) => Err(VerifyError::Type {
            span,
            context: context.to_string(),
            expected: expected.to_string(),
            found: t.to_string(),
        }),
        Ok(None) => Ok(()),
        Err(msg) => Err(type_error(span, context, "well-typed", msg)),
    }
}

fn require_ty(found: &Ty, expected: &Ty, span: OpSpan, context: &str) -> Result<(), VerifyError> {
    if found == expected {
        Ok(())
    } else {
        Err(VerifyError::Type {
            span,
            context: context.to_string(),
            expected: expected.to_string(),
            found: found.to_string(),
        })
    }
}

fn type_error(span: OpSpan, context: &str, expected: &str, found: String) -> VerifyError {
    VerifyError::Type {
        span,
        context: context.to_string(),
        expected: expected.to_string(),
        found,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steno_query::typing::SourceTypes;
    use steno_query::{GroupResult, Query};
    use steno_quil::lower;
    use steno_quil::passes::optimize;

    fn srcs() -> SourceTypes {
        SourceTypes::new().with("xs", Ty::F64).with("ns", Ty::I64)
    }

    fn verified(q: steno_query::QueryExpr) -> VerifyReport {
        let udfs = UdfRegistry::new();
        let chain = lower(&q, &srcs(), &udfs).unwrap();
        let r = verify(&chain, &udfs).unwrap();
        // The optimized chain must verify too.
        verify(&optimize(&chain), &udfs).unwrap();
        r
    }

    #[test]
    fn accepts_lowered_chains() {
        let r = verified(
            Query::source("xs")
                .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .sum()
                .build(),
        );
        assert_eq!(r.ops_checked, 4); // chain (2) + map chain (2)
        assert!(r.assoc_samples > 0);
    }

    #[test]
    fn accepts_grouped_aggregates() {
        let r = verified(
            Query::source("ns")
                .group_by_result(
                    Expr::var("x") % Expr::liti(10),
                    "x",
                    GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
                )
                .build(),
        );
        assert!(r.ops_checked > 0);
    }

    #[test]
    fn accepts_nested_chains() {
        verified(
            Query::source("xs")
                .select_many(Query::source("ns"), "x")
                .count()
                .build(),
        );
    }

    #[test]
    fn rejects_ill_typed_transform() {
        let udfs = UdfRegistry::new();
        let mut chain = lower(
            &Query::source("xs")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .build(),
            &srcs(),
            &udfs,
        )
        .unwrap();
        // Corrupt the transform: claim it yields i64 while the body is f64.
        if let QuilOp::Trans { out_ty, .. } = &mut chain.ops[0] {
            *out_ty = Ty::I64;
        }
        let err = verify(&chain, &udfs).unwrap_err();
        assert!(matches!(err, VerifyError::Type { .. }), "{err}");
        assert!(err.to_string().contains("Select (op #0)"), "{err}");
    }

    #[test]
    fn rejects_broken_type_thread() {
        let udfs = UdfRegistry::new();
        let mut chain = lower(
            &Query::source("xs")
                .select(Expr::var("x") + Expr::litf(1.0), "x")
                .where_(Expr::var("x").gt(Expr::litf(0.0)), "x")
                .build(),
            &srcs(),
            &udfs,
        )
        .unwrap();
        // Corrupt the predicate's element type.
        if let QuilOp::Pred { elem_ty, .. } = &mut chain.ops[1] {
            *elem_ty = Ty::I64;
        }
        let err = verify(&chain, &udfs).unwrap_err();
        assert!(matches!(err, VerifyError::Type { .. }), "{err}");
    }

    #[test]
    fn rejects_non_associative_combiner() {
        let udfs = UdfRegistry::new();
        let mut chain = lower(&Query::source("xs").sum().build(), &srcs(), &udfs).unwrap();
        // Claim `acc - rhs` combines partial sums: not associative.
        let agg = chain.agg.as_mut().unwrap();
        agg.combine = Some(Expr::var(agg.acc_param.clone()) - Expr::var(agg.rhs_param.clone()));
        let err = verify(&chain, &udfs).unwrap_err();
        assert!(matches!(err, VerifyError::Associativity { .. }), "{err}");
    }

    #[test]
    fn rejects_degenerate_grammar() {
        let udfs = UdfRegistry::new();
        let chain = QuilChain {
            src: SrcDesc::Collection {
                name: "xs".into(),
                elem_ty: Ty::F64,
            },
            ops: vec![],
            agg: None,
        };
        // A bare Src…Ret chain is fine.
        verify(&chain, &udfs).unwrap();
    }

    #[test]
    fn verifies_take_and_orderby_plans() {
        verified(
            Query::source("xs")
                .order_by(Expr::var("x"), "x")
                .take(3)
                .build(),
        );
    }
}
