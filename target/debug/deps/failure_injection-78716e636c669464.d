/root/repo/target/debug/deps/failure_injection-78716e636c669464.d: crates/steno-vm/tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-78716e636c669464: crates/steno-vm/tests/failure_injection.rs

crates/steno-vm/tests/failure_injection.rs:
