/root/repo/target/release/deps/steno_repro-d2b809430de7dc60.d: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-d2b809430de7dc60.rlib: src/lib.rs src/prng.rs

/root/repo/target/release/deps/libsteno_repro-d2b809430de7dc60.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
