/root/repo/target/release/deps/bench-e92598222a9fff22.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libbench-e92598222a9fff22.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libbench-e92598222a9fff22.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
