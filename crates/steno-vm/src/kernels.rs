//! Typed batch kernels: the data-parallel primitives of the vectorized
//! tier ([`crate::batch`]).
//!
//! Each kernel processes one 1024-lane batch of a single unboxed type
//! (`f64`, `i64`, or `bool`). Compute kernels run **dense** — every lane,
//! selected or not — because pure arithmetic on a dead lane is
//! unobservable and branch-free loops are what the auto-vectorizer eats.
//! Only three kinds of operation consult the selection vector:
//!
//! * **trapping ops** (integer division/remainder), which must fault on
//!   exactly the lanes the scalar reference semantics would evaluate;
//! * **folds** into accumulators, which must consume surviving lanes in
//!   ascending element order so floating-point results stay bit-identical
//!   to sequential execution; and
//! * **effects** (grouped-aggregate upserts, output pushes), for the same
//!   ordering reason.

use crate::batch::BATCH;
use crate::exec::VmError;

/// Fills every lane of a batch with one value (constant broadcast).
#[inline]
pub fn splat<T: Copy>(dst: &mut [T; BATCH], x: T) {
    for d in dst.iter_mut() {
        *d = x;
    }
}

/// `dst[k] = f(a[k])` for the first `len` lanes.
#[inline]
pub fn map1<T: Copy>(dst: &mut [T; BATCH], a: &[T; BATCH], len: usize, f: impl Fn(T) -> T) {
    for k in 0..len {
        dst[k] = f(a[k]);
    }
}

/// `dst[k] = f(a[k], b[k])` for the first `len` lanes.
#[inline]
pub fn map2<T: Copy>(
    dst: &mut [T; BATCH],
    a: &[T; BATCH],
    b: &[T; BATCH],
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    for k in 0..len {
        dst[k] = f(a[k], b[k]);
    }
}

/// Comparison into the boolean bank: `dst[k] = f(a[k], b[k])`.
#[inline]
pub fn cmp2<T: Copy>(
    dst: &mut [bool; BATCH],
    a: &[T; BATCH],
    b: &[T; BATCH],
    len: usize,
    f: impl Fn(T, T) -> bool,
) {
    for k in 0..len {
        dst[k] = f(a[k], b[k]);
    }
}

/// Type conversion between banks: `dst[k] = f(a[k])`.
#[inline]
pub fn convert<A: Copy, B: Copy>(
    dst: &mut [B; BATCH],
    a: &[A; BATCH],
    len: usize,
    f: impl Fn(A) -> B,
) {
    for k in 0..len {
        dst[k] = f(a[k]);
    }
}

/// Lane-wise select: `dst[k] = if mask[k] { t[k] } else { e[k] }`.
#[inline]
pub fn select<T: Copy>(
    dst: &mut [T; BATCH],
    mask: &[bool; BATCH],
    t: &[T; BATCH],
    e: &[T; BATCH],
    len: usize,
) {
    for k in 0..len {
        dst[k] = if mask[k] { t[k] } else { e[k] };
    }
}

// ---------------------------------------------------------------------
// Selection vectors.
// ---------------------------------------------------------------------

/// Builds a selection vector from a mask over a dense (identity) batch.
#[inline]
pub fn filter_dense(sel: &mut Vec<u32>, mask: &[bool; BATCH], len: usize) {
    sel.clear();
    for (k, keep) in mask[..len].iter().enumerate() {
        if *keep {
            sel.push(k as u32);
        }
    }
}

/// Intersects an existing selection vector with a mask (order preserved).
#[inline]
pub fn filter_sel(sel: &mut Vec<u32>, mask: &[bool; BATCH]) {
    sel.retain(|&k| mask[k as usize]);
}

// ---------------------------------------------------------------------
// Trapping integer division.
// ---------------------------------------------------------------------

/// Checks every live divisor lane, in ascending element order, before the
/// division runs — the batch-tier analogue of the scalar interpreter's
/// per-element zero check.
///
/// # Errors
///
/// [`VmError::DivisionByZero`] when any live lane divides by zero, the
/// same error (and the same observable outcome — all partial state is
/// discarded by the caller) the scalar loop would produce.
#[inline]
pub fn check_divisors(
    b: &[i64; BATCH],
    sel: Option<&[u32]>,
    len: usize,
) -> Result<(), VmError> {
    match sel {
        None => {
            for &d in &b[..len] {
                if d == 0 {
                    return Err(VmError::DivisionByZero);
                }
            }
        }
        Some(sel) => {
            for &k in sel {
                if b[k as usize] == 0 {
                    return Err(VmError::DivisionByZero);
                }
            }
        }
    }
    Ok(())
}

/// `dst[k] = f(a[k], b[k])` over the live lanes only (dead lanes may hold
/// zero divisors and must not be touched).
#[inline]
pub fn map2_sel<T: Copy>(
    dst: &mut [T; BATCH],
    a: &[T; BATCH],
    b: &[T; BATCH],
    sel: Option<&[u32]>,
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    match sel {
        None => map2(dst, a, b, len, f),
        Some(sel) => {
            for &k in sel {
                let k = k as usize;
                dst[k] = f(a[k], b[k]);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strict folds: surviving lanes in ascending element order, so results
// are bit-identical to sequential execution.
// ---------------------------------------------------------------------

/// Folds live lanes of a batch into a scalar accumulator, in order.
#[inline]
pub fn fold<T: Copy>(
    acc: &mut T,
    v: &[T; BATCH],
    sel: Option<&[u32]>,
    len: usize,
    f: impl Fn(T, T) -> T,
) {
    match sel {
        None => {
            for &x in &v[..len] {
                *acc = f(*acc, x);
            }
        }
        Some(sel) => {
            for &k in sel {
                *acc = f(*acc, v[k as usize]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_from(xs: &[f64]) -> [f64; BATCH] {
        let mut b = [0.0; BATCH];
        b[..xs.len()].copy_from_slice(xs);
        b
    }

    #[test]
    fn fold_is_strict_and_ordered() {
        let v = batch_from(&[1e16, 1.0, -1e16, 1.0]);
        let mut acc = 0.0;
        fold(&mut acc, &v, None, 4, |a, x| a + x);
        // Sequential: ((1e16 + 1) - 1e16) + 1 — order-sensitive.
        let mut expected = 0.0f64;
        for x in [1e16, 1.0, -1e16, 1.0] {
            expected += x;
        }
        assert_eq!(acc.to_bits(), expected.to_bits());
    }

    #[test]
    fn selected_fold_skips_dead_lanes() {
        let v = batch_from(&[1.0, 2.0, 4.0, 8.0]);
        let mut acc = 0.0;
        fold(&mut acc, &v, Some(&[0, 2]), 4, |a, x| a + x);
        assert_eq!(acc, 5.0);
    }

    #[test]
    fn divisor_check_ignores_dead_lanes() {
        let mut b = [1i64; BATCH];
        b[1] = 0;
        assert_eq!(
            check_divisors(&b, None, 4),
            Err(VmError::DivisionByZero)
        );
        assert_eq!(check_divisors(&b, Some(&[0, 2, 3]), 4), Ok(()));
    }

    #[test]
    fn filters_compose_in_order() {
        let mut mask = [false; BATCH];
        mask[0] = true;
        mask[2] = true;
        mask[3] = true;
        let mut sel = Vec::new();
        filter_dense(&mut sel, &mask, 5);
        assert_eq!(sel, vec![0, 2, 3]);
        let mut mask2 = [true; BATCH];
        mask2[2] = false;
        filter_sel(&mut sel, &mask2);
        assert_eq!(sel, vec![0, 3]);
    }
}
