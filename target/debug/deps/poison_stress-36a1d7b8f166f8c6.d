/root/repo/target/debug/deps/poison_stress-36a1d7b8f166f8c6.d: crates/steno-cluster/tests/poison_stress.rs

/root/repo/target/debug/deps/poison_stress-36a1d7b8f166f8c6: crates/steno-cluster/tests/poison_stress.rs

crates/steno-cluster/tests/poison_stress.rs:
