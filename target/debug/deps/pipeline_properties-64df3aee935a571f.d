/root/repo/target/debug/deps/pipeline_properties-64df3aee935a571f.d: tests/pipeline_properties.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_properties-64df3aee935a571f.rmeta: tests/pipeline_properties.rs Cargo.toml

tests/pipeline_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
