//! Differential testing: the Steno VM against the unoptimized LINQ
//! interpreter.
//!
//! "We faithfully reproduced the semantics of unoptimized LINQ" (§9) —
//! this suite holds the reproduction to that standard: every query below
//! must produce identical results through the boxed-iterator interpreter
//! and through the full lower → generate → assemble → execute pipeline.

use proptest::prelude::*;
use steno_expr::{Column, DataContext, Expr, Ty, UdfRegistry, Value};
use steno_linq::interp;
use steno_query::{GroupResult, QFn2, Query, QueryExpr};
use steno_vm::CompiledQuery;

fn ctx() -> DataContext {
    DataContext::new()
        .with_source("xs", vec![3.0, -1.5, 4.0, 1.0, -5.0, 9.25, 2.0, 6.0])
        .with_source("ys", vec![0.5, 2.0, -3.0])
        .with_source("ns", vec![7i64, 1, 4, 4, -2, 8, 0, 3, 3, 5])
        .with_source("ms", vec![2i64, -3, 5])
        .with_source("bs", Column::from_bool(vec![true, false, true, true]))
        .with_source(
            "pts",
            Column::from_rows(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3),
        )
        .with_source("empty", Vec::<f64>::new())
}

fn udfs() -> UdfRegistry {
    let mut u = UdfRegistry::new();
    u.register("dist2", vec![Ty::Row, Ty::Row], Ty::F64, |args| {
        let a = args[0].as_row().unwrap();
        let b = args[1].as_row().unwrap();
        Value::F64(
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum(),
        )
    });
    u.register("vadd", vec![Ty::Row, Ty::Row], Ty::Row, |args| {
        let a = args[0].as_row().unwrap();
        let b = args[1].as_row().unwrap();
        Value::row(a.iter().zip(b.iter()).map(|(x, y)| x + y).collect())
    });
    u
}

/// Asserts interpreter == VM on `q`.
#[track_caller]
fn check(q: &QueryExpr) {
    let c = ctx();
    let u = udfs();
    let expected = interp::execute(q, &c, &u).expect("interpreter failed");
    let compiled = CompiledQuery::compile(q, (&c).into(), &u)
        .unwrap_or_else(|e| panic!("optimization failed for {q}: {e}"));
    let actual = compiled.run(&c, &u).expect("vm failed");
    assert_eq!(
        expected.key(),
        actual.key(),
        "mismatch for {q}:\ninterp = {expected}\nvm     = {actual}\ngenerated:\n{}",
        compiled.rust_source()
    );
}

fn x() -> Expr {
    Expr::var("x")
}

#[test]
fn scalar_aggregates() {
    check(&Query::source("xs").sum().build());
    check(&Query::source("xs").min().build());
    check(&Query::source("xs").max().build());
    check(&Query::source("xs").count().build());
    check(&Query::source("xs").average().build());
    check(&Query::source("xs").first().build());
    check(&Query::source("xs").any().build());
    check(&Query::source("ns").sum().build());
    check(&Query::source("ns").min().build());
    check(&Query::source("ns").max().build());
    check(&Query::source("ns").average().build());
}

#[test]
fn empty_source_conventions() {
    check(&Query::source("empty").sum().build());
    check(&Query::source("empty").count().build());
    check(&Query::source("empty").min().build());
    check(&Query::source("empty").max().build());
    check(&Query::source("empty").first().build());
    check(&Query::source("empty").any().build());
}

#[test]
fn figure_one_sum_of_squares() {
    check(
        &Query::source("xs")
            .select(x() * x(), "x")
            .sum()
            .build(),
    );
}

#[test]
fn even_squares_running_example() {
    check(
        &Query::source("ns")
            .where_((x() % Expr::liti(2)).eq(Expr::liti(0)), "x")
            .select(x() * x(), "x")
            .build(),
    );
}

#[test]
fn transform_chains() {
    check(
        &Query::source("xs")
            .select(x() + Expr::litf(1.0), "x")
            .select(x() * Expr::litf(2.0), "x")
            .select(x().abs().sqrt(), "x")
            .build(),
    );
    check(
        &Query::source("ns")
            .select(x().cast(Ty::F64), "x")
            .select(x() / Expr::litf(3.0), "x")
            .sum()
            .build(),
    );
}

#[test]
fn predicates_and_positional_ops() {
    check(&Query::source("xs").take(3).build());
    check(&Query::source("xs").skip(5).build());
    check(&Query::source("xs").skip(2).take(3).build());
    check(&Query::source("xs").take(100).build());
    check(
        &Query::source("xs")
            .take_while(x().gt(Expr::litf(-1.0)), "x")
            .build(),
    );
    check(
        &Query::source("xs")
            .skip_while(x().gt(Expr::litf(0.0)), "x")
            .build(),
    );
    check(
        &Query::source("xs")
            .where_(x().gt(Expr::litf(0.0)), "x")
            .skip(1)
            .take(2)
            .sum()
            .build(),
    );
}

#[test]
fn boolean_sources_and_logic() {
    check(&Query::source("bs").all_by(x(), "x").build());
    check(&Query::source("bs").any_by(x().not(), "x").build());
    check(
        &Query::source("ns")
            .where_(
                x().gt(Expr::liti(0)).and(x().lt(Expr::liti(5))),
                "x",
            )
            .count()
            .build(),
    );
    check(
        &Query::source("ns")
            .where_(
                x().lt(Expr::liti(0)).or(x().gt(Expr::liti(6))),
                "x",
            )
            .build(),
    );
}

#[test]
fn range_and_repeat_sources() {
    check(&Query::range(-3, 10).sum().build());
    check(
        &Query::range(0, 20)
            .where_((x() % Expr::liti(3)).eq(Expr::liti(0)), "x")
            .build(),
    );
    check(&Query::repeat(2.5f64, 7).sum().build());
    check(&Query::repeat(9i64, 0).count().build());
}

#[test]
fn user_fold_aggregate() {
    check(
        &Query::source("ns")
            .aggregate(Expr::liti(1), "a", "v", Expr::var("a") * Expr::var("v"))
            .build(),
    );
    // Argmax via a pair accumulator.
    check(
        &Query::source("xs")
            .aggregate(
                Expr::mk_pair(Expr::litf(f64::NEG_INFINITY), Expr::litf(0.0)),
                "a",
                "v",
                Expr::if_(
                    Expr::var("v").gt(Expr::var("a").field(0)),
                    Expr::mk_pair(Expr::var("v"), Expr::var("v") * Expr::litf(2.0)),
                    Expr::var("a"),
                ),
            )
            .build(),
    );
}

#[test]
fn nested_cartesian_product_select_many() {
    // §5: xs.SelectMany(x => ys.Select(y => x * y)).Sum()
    check(
        &Query::source("xs")
            .select_many(Query::source("ys").select(x() * Expr::var("y"), "y"), "x")
            .sum()
            .build(),
    );
    // Sequence-valued result.
    check(
        &Query::source("ms")
            .select_many(
                Query::source("ns").select(Expr::var("n") + x(), "n"),
                "x",
            )
            .build(),
    );
}

#[test]
fn triple_nested_cartesian() {
    // The three-array Cartesian product of §5.
    let inner = Query::source("ms").select(
        Expr::var("x") * Expr::var("y") * Expr::var("z").cast(Ty::F64),
        "z",
    );
    check(
        &Query::source("xs")
            .select_many(Query::source("ys").select_many(inner, "y"), "x")
            .sum()
            .build(),
    );
}

#[test]
fn nested_scalar_select() {
    // xs.Select(x => ys.Where(y > x).Count())
    check(
        &Query::source("xs")
            .select_query(
                Query::source("ys")
                    .where_(Expr::var("y").gt(x()), "y")
                    .count(),
                "x",
            )
            .build(),
    );
    // Aggregate over the nested results.
    check(
        &Query::source("xs")
            .select_query(
                Query::source("ys")
                    .select(Expr::var("y") - x(), "y")
                    .min(),
                "x",
            )
            .max()
            .build(),
    );
}

#[test]
fn nested_predicate_query() {
    // xs.Where(x => ys.Any(y => y > x))
    check(
        &Query::source("xs")
            .select_query(
                Query::source("ys").any_by(Expr::var("y").gt(x()), "y"),
                "x",
            )
            .build(),
    );
}

#[test]
fn nested_filter_inside_select_many() {
    // The equi-join shape of §5: xs.SelectMany(x => ys.Where(y == x)).
    check(
        &Query::source("ns")
            .select_many(
                Query::source("ms").where_(Expr::var("y").eq(x()), "y"),
                "x",
            )
            .build(),
    );
}

#[test]
fn group_by_plain() {
    check(
        &Query::source("ns")
            .group_by(x() % Expr::liti(3), "x")
            .build(),
    );
    check(
        &Query::source("xs")
            .group_by_elem(x().floor(), x() * x(), "x")
            .build(),
    );
}

#[test]
fn group_by_aggregate_specialized() {
    // GroupBy with aggregating result selector (§4.3).
    check(
        &Query::source("ns")
            .group_by_result(
                x() % Expr::liti(3),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).sum().build()),
            )
            .build(),
    );
    check(
        &Query::source("ns")
            .group_by_result(
                x() % Expr::liti(4),
                "x",
                GroupResult::keyed("k", "g", Query::over(Expr::var("g")).count().build()),
            )
            .build(),
    );
    // With a transforming inner chain that must fuse into the update.
    check(
        &Query::source("xs")
            .group_by_result(
                x().floor(),
                "x",
                GroupResult::keyed(
                    "k",
                    "g",
                    Query::over(Expr::var("g"))
                        .select(Expr::var("v") * Expr::var("v"), "v")
                        .sum()
                        .build(),
                ),
            )
            .build(),
    );
}

#[test]
fn group_by_then_having() {
    // GROUP BY ... HAVING (§4.2).
    check(
        &Query::source("ns")
            .group_by(x() % Expr::liti(3), "x")
            .where_(Expr::var("kv").field(0).gt(Expr::liti(0)), "kv")
            .build(),
    );
}

#[test]
fn group_by_then_nested_aggregate_over_groups() {
    // GroupBy(key).Select(kv => sum(kv.1)) — the pattern the §4.3 pass
    // recognizes.
    check(
        &Query::source("ns")
            .group_by(x() % Expr::liti(3), "x")
            .select_query(Query::over(Expr::var("kv").field(1)).sum(), "kv")
            .build(),
    );
}

#[test]
fn order_by_and_distinct() {
    check(&Query::source("xs").order_by(x(), "x").build());
    check(&Query::source("xs").order_by_desc(x(), "x").build());
    check(&Query::source("ns").distinct().build());
    check(
        &Query::source("ns")
            .distinct()
            .order_by(x(), "x")
            .take(3)
            .build(),
    );
    check(
        &Query::source("xs")
            .order_by(x().abs(), "x")
            .skip(2)
            .sum()
            .build(),
    );
}

#[test]
fn to_vec_materialization() {
    check(&Query::source("xs").to_vec().sum().build());
    check(
        &Query::source("ns")
            .select(x() * x(), "x")
            .to_vec()
            .take(4)
            .build(),
    );
}

#[test]
fn rows_and_udfs() {
    // Flatten row coordinates.
    check(
        &Query::source("pts")
            .select_many_expr(Expr::var("p"), "p")
            .sum()
            .build(),
    );
    // Distance between each point and a fixed reference via UDF.
    check(
        &Query::source("pts")
            .select(
                Expr::call("dist2", vec![Expr::var("p"), Expr::var("p")]),
                "p",
            )
            .sum()
            .build(),
    );
    // Row indexing and length.
    check(
        &Query::source("pts")
            .select(
                Expr::var("p").row_index(Expr::liti(1)) * Expr::var("p").row_len().cast(Ty::F64),
                "p",
            )
            .build(),
    );
}

#[test]
fn kmeans_assignment_shape() {
    // The k-means inner step (§7.2): for each point, find the nearest
    // centroid id, then aggregate per cluster.
    let centroids = Column::from_values(vec![
        Value::pair(Value::I64(0), Value::row(vec![0.0, 0.0, 0.0])),
        Value::pair(Value::I64(1), Value::row(vec![5.0, 5.0, 5.0])),
    ]);
    let c = ctx().with_source("centroids", centroids);
    let u = udfs();
    // nearest = centroids.Select(c => (c.0, dist2(p, c.1)))
    //                     .Aggregate((-1, inf), min-by-distance)
    let nearest = Query::source("centroids")
        .select(
            Expr::mk_pair(
                Expr::var("c").field(0),
                Expr::call("dist2", vec![Expr::var("p"), Expr::var("c").field(1)]),
            ),
            "c",
        )
        .aggregate(
            Expr::mk_pair(Expr::liti(-1), Expr::litf(f64::INFINITY)),
            "best",
            "cur",
            Expr::if_(
                Expr::var("cur").field(1).lt(Expr::var("best").field(1)),
                Expr::var("cur"),
                Expr::var("best"),
            ),
        );
    let q = Query::source("pts")
        .select_query(nearest, "p")
        .select(Expr::var("kv").field(0), "kv")
        .group_by(Expr::var("id"), "id")
        .build();
    let expected = interp::execute(&q, &c, &u).unwrap();
    let compiled = CompiledQuery::compile(&q, (&c).into(), &u).unwrap();
    let actual = compiled.run(&c, &u).unwrap();
    assert_eq!(expected.key(), actual.key());
}

// ---------------------------------------------------------------------
// Property-based differential testing over randomly generated chains.
// ---------------------------------------------------------------------

/// A safe element-wise f64 transform (no division; stays finite).
fn arb_transform() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(x() * x()),
        Just(x() + Expr::litf(1.0)),
        Just(x() - Expr::litf(2.5)),
        Just(x() * Expr::litf(-0.5)),
        Just(x().abs()),
        Just(x().floor()),
        Just(x().min(Expr::litf(3.0))),
        Just(x().max(Expr::litf(-3.0))),
        Just(x() / Expr::litf(4.0)),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Expr> {
    prop_oneof![
        Just(x().gt(Expr::litf(0.0))),
        Just(x().le(Expr::litf(2.0))),
        Just(x().ne(Expr::litf(1.0))),
        Just(x().abs().lt(Expr::litf(5.0))),
        Just(x().ge(Expr::litf(-1.0)).and(x().lt(Expr::litf(4.0)))),
    ]
}

#[derive(Clone, Debug)]
enum OpPick {
    Select(Expr),
    Where(Expr),
    Take(usize),
    Skip(usize),
    TakeWhile(Expr),
    SkipWhile(Expr),
    Distinct,
    OrderBy(bool),
    ToVec,
}

fn arb_op() -> impl Strategy<Value = OpPick> {
    prop_oneof![
        4 => arb_transform().prop_map(OpPick::Select),
        3 => arb_predicate().prop_map(OpPick::Where),
        1 => (0usize..12).prop_map(OpPick::Take),
        1 => (0usize..12).prop_map(OpPick::Skip),
        1 => arb_predicate().prop_map(OpPick::TakeWhile),
        1 => arb_predicate().prop_map(OpPick::SkipWhile),
        1 => Just(OpPick::Distinct),
        1 => prop::bool::ANY.prop_map(OpPick::OrderBy),
        1 => Just(OpPick::ToVec),
    ]
}

#[derive(Clone, Debug)]
enum TerminalPick {
    Collect,
    Sum,
    Min,
    Max,
    Count,
    Average,
    First,
}

fn arb_terminal() -> impl Strategy<Value = TerminalPick> {
    prop_oneof![
        Just(TerminalPick::Collect),
        Just(TerminalPick::Sum),
        Just(TerminalPick::Min),
        Just(TerminalPick::Max),
        Just(TerminalPick::Count),
        Just(TerminalPick::Average),
        Just(TerminalPick::First),
    ]
}

fn build_query(ops: &[OpPick], terminal: &TerminalPick) -> QueryExpr {
    let mut q = Query::source("data");
    for op in ops {
        q = match op.clone() {
            OpPick::Select(e) => q.select(e, "x"),
            OpPick::Where(e) => q.where_(e, "x"),
            OpPick::Take(n) => q.take(n),
            OpPick::Skip(n) => q.skip(n),
            OpPick::TakeWhile(e) => q.take_while(e, "x"),
            OpPick::SkipWhile(e) => q.skip_while(e, "x"),
            OpPick::Distinct => q.distinct(),
            OpPick::OrderBy(desc) => {
                if desc {
                    q.order_by_desc(x(), "x")
                } else {
                    q.order_by(x(), "x")
                }
            }
            OpPick::ToVec => q.to_vec(),
        };
    }
    match terminal {
        TerminalPick::Collect => q.build(),
        TerminalPick::Sum => q.sum().build(),
        TerminalPick::Min => q.min().build(),
        TerminalPick::Max => q.max().build(),
        TerminalPick::Count => q.count().build(),
        TerminalPick::Average => q.average().build(),
        TerminalPick::First => q.first().build(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random flat chains over random data agree between the interpreter
    /// and the VM.
    #[test]
    fn random_chains_agree(
        data in prop::collection::vec(-50.0f64..50.0, 0..24),
        ops in prop::collection::vec(arb_op(), 0..6),
        terminal in arb_terminal(),
    ) {
        // Average of an empty stream is NaN through both paths, but the
        // two NaN payloads compare equal through the key; keep it in.
        let q = build_query(&ops, &terminal);
        let c = DataContext::new().with_source("data", data);
        let u = UdfRegistry::new();
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile failed");
        let actual = compiled.run(&c, &u).expect("vm failed");
        prop_assert_eq!(expected.key(), actual.key(), "query {}", q);
    }

    /// Random grouped aggregations agree, with the §4.3 specialization on.
    #[test]
    fn random_grouped_aggregates_agree(
        data in prop::collection::vec(-20i64..20, 0..30),
        modulus in 1i64..6,
        use_count in prop::bool::ANY,
    ) {
        let inner = if use_count {
            Query::over(Expr::var("g")).count().build()
        } else {
            Query::over(Expr::var("g")).sum().build()
        };
        let q = Query::source("data")
            .group_by_result(
                x() % Expr::liti(modulus),
                "x",
                GroupResult::keyed("k", "g", inner),
            )
            .build();
        let c = DataContext::new().with_source("data", data);
        let u = UdfRegistry::new();
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile failed");
        let actual = compiled.run(&c, &u).expect("vm failed");
        prop_assert_eq!(expected.key(), actual.key(), "query {}", q);
    }

    /// Nested Cartesian products agree for arbitrary inner/outer data.
    #[test]
    fn random_nested_products_agree(
        outer in prop::collection::vec(-8.0f64..8.0, 0..10),
        inner in prop::collection::vec(-8.0f64..8.0, 0..10),
    ) {
        let q = Query::source("outer")
            .select_many(
                Query::source("inner").select(x() * Expr::var("y"), "y"),
                "x",
            )
            .sum()
            .build();
        let c = DataContext::new()
            .with_source("outer", outer)
            .with_source("inner", inner);
        let u = UdfRegistry::new();
        let expected = interp::execute(&q, &c, &u).expect("interp failed");
        let compiled = CompiledQuery::compile(&q, (&c).into(), &u).expect("compile failed");
        let actual = compiled.run(&c, &u).expect("vm failed");
        prop_assert_eq!(expected.key(), actual.key());
    }
}
