/root/repo/target/release/examples/histogram-3a389b35559cd8e6.d: examples/histogram.rs

/root/repo/target/release/examples/histogram-3a389b35559cd8e6: examples/histogram.rs

examples/histogram.rs:
