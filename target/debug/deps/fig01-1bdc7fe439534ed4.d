/root/repo/target/debug/deps/fig01-1bdc7fe439534ed4.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-1bdc7fe439534ed4.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
