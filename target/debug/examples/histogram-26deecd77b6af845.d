/root/repo/target/debug/examples/histogram-26deecd77b6af845.d: examples/histogram.rs

/root/repo/target/debug/examples/histogram-26deecd77b6af845: examples/histogram.rs

examples/histogram.rs:
