/root/repo/target/debug/deps/tab01-cbc72d88112ec609.d: crates/bench/src/bin/tab01.rs Cargo.toml

/root/repo/target/debug/deps/libtab01-cbc72d88112ec609.rmeta: crates/bench/src/bin/tab01.rs Cargo.toml

crates/bench/src/bin/tab01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
