/root/repo/target/debug/deps/macro_expansion-f32452e0340f20eb.d: tests/macro_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libmacro_expansion-f32452e0340f20eb.rmeta: tests/macro_expansion.rs Cargo.toml

tests/macro_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
