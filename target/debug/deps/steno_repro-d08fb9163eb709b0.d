/root/repo/target/debug/deps/steno_repro-d08fb9163eb709b0.d: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-d08fb9163eb709b0.rlib: src/lib.rs src/prng.rs

/root/repo/target/debug/deps/libsteno_repro-d08fb9163eb709b0.rmeta: src/lib.rs src/prng.rs

src/lib.rs:
src/prng.rs:
