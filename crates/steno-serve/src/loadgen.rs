//! Deterministic load generation for saturation testing.
//!
//! Serving benchmarks need workloads with the statistical shape of real
//! traffic — a few hot queries and a long cold tail — without an RNG
//! dependency. [`SplitMix64`] is the same mixer the cluster crate uses
//! for jitter; [`Zipf`] turns it into the skewed popularity
//! distribution that makes plan-cache hit rates realistic (the paper's
//! cache argument in §7.1 only pays off when queries repeat).

use steno_expr::{DataContext, Expr};
use steno_query::{Query, QueryExpr};

/// A tiny deterministic PRNG (SplitMix64): passes through every 64-bit
/// state, no external crate, identical sequences for identical seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform draw from `[0, n)`; `n = 0` returns 0.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift: unbiased enough for load generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A Zipf(s) sampler over ranks `0..n`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)^s`. `s ≈ 1` is the classic
/// web-traffic skew.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s` (clamped to ≥ 0; `n`
    /// is clamped to ≥ 1).
    pub fn new(n: usize, s: f64) -> Zipf {
        let n = n.max(1);
        let s = s.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// The number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there is a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        // Binary search for the first cdf entry ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// `n` distinct optimizable query shapes (filter + map + sum with
/// varying constants), the pool a load generator samples from. Distinct
/// constants mean distinct plan-cache keys, so zipfian sampling over the
/// pool produces a realistic hit/miss split.
pub fn query_pool(n: usize) -> Vec<QueryExpr> {
    (0..n.max(1))
        .map(|i| {
            Query::source("xs")
                .where_(Expr::var("x").gt(Expr::litf(i as f64)), "x")
                .select(Expr::var("x") * Expr::var("x"), "x")
                .sum()
                .build()
        })
        .collect()
}

/// A deterministic per-tenant data context of `elements` f64 values.
pub fn tenant_context(elements: usize, seed: u64) -> DataContext {
    let mut rng = SplitMix64::new(seed);
    let data: Vec<f64> = (0..elements).map(|_| rng.next_f64() * 100.0).collect();
    DataContext::new().with_source("xs", data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = SplitMix64::new(7);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let zipf = Zipf::new(16, 1.0);
        let mut rng = SplitMix64::new(123);
        let mut counts = [0u32; 16];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[8] && counts[0] > counts[15],
            "rank 0 must dominate: {counts:?}"
        );
        // Same seed → same draws.
        let mut r1 = SplitMix64::new(9);
        let mut r2 = SplitMix64::new(9);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut r1), zipf.sample(&mut r2));
        }
    }

    #[test]
    fn query_pool_entries_are_distinct() {
        let pool = query_pool(8);
        assert_eq!(pool.len(), 8);
        for (i, a) in pool.iter().enumerate() {
            for b in pool.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn tenant_context_is_deterministic() {
        let a = tenant_context(100, 5);
        let b = tenant_context(100, 5);
        let q = Query::source("xs").sum().build();
        let udfs = steno_expr::UdfRegistry::new();
        let engine = steno::Steno::new();
        assert_eq!(
            engine.execute(&q, &a, &udfs).unwrap(),
            engine.execute(&q, &b, &udfs).unwrap()
        );
    }
}
