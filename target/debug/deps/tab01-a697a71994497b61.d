/root/repo/target/debug/deps/tab01-a697a71994497b61.d: crates/bench/src/bin/tab01.rs

/root/repo/target/debug/deps/tab01-a697a71994497b61: crates/bench/src/bin/tab01.rs

crates/bench/src/bin/tab01.rs:
