/root/repo/target/debug/examples/quickstart-af48016b74ab7c03.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-af48016b74ab7c03: examples/quickstart.rs

examples/quickstart.rs:
