//! OpenMetrics/Prometheus text exposition and an in-tree scrape linter.
//!
//! [`MetricsSnapshot::to_openmetrics`] renders the snapshot in the
//! OpenMetrics text format: one `# TYPE` line per family, counters as
//! `<name>_total`, histograms as cumulative `_bucket{le=…}` series plus
//! `_count`/`_sum`, per-tenant families labeled `{tenant="…"}`, and a
//! final `# EOF`. Metric names are sanitized (`.` → `_`) to the
//! Prometheus charset.
//!
//! [`lint`] is the format checker CI runs on real scrapes: every line
//! must parse, every sample must belong to a declared family, no family
//! may be declared twice, and the exposition must end with `# EOF`.
//! [`counters_monotone`] cross-checks two scrapes: counters never go
//! backwards.

use std::collections::BTreeMap;

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Maps a dotted metric name (`serve.latency_ns`) to the Prometheus
/// charset (`serve_latency_ns`): anything outside `[a-zA-Z0-9_:]`
/// becomes `_`, and a leading digit gets a `_` prefix.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// One family's samples, merged from unlabeled and per-tenant series.
enum Family<'a> {
    Counter {
        plain: Option<u64>,
        by_tenant: BTreeMap<&'a str, u64>,
    },
    Histogram {
        plain: Option<&'a HistogramSnapshot>,
        by_tenant: BTreeMap<&'a str, &'a HistogramSnapshot>,
    },
}

fn push_histogram(out: &mut String, fam: &str, label: Option<&str>, h: &HistogramSnapshot) {
    let tenant = label
        .map(|t| format!("tenant=\"{}\"", escape_label(t)))
        .unwrap_or_default();
    let sep = if tenant.is_empty() { "" } else { "," };
    let brace = |inner: &str| {
        if inner.is_empty() {
            String::new()
        } else {
            format!("{{{inner}}}")
        }
    };
    let mut cum = 0u64;
    for &(ub, n) in &h.buckets {
        cum += n;
        out.push_str(&format!(
            "{fam}_bucket{} {cum}\n",
            brace(&format!("{tenant}{sep}le=\"{ub}\""))
        ));
    }
    out.push_str(&format!(
        "{fam}_bucket{} {}\n",
        brace(&format!("{tenant}{sep}le=\"+Inf\"")),
        h.count
    ));
    out.push_str(&format!("{fam}_count{} {}\n", brace(&tenant), h.count));
    out.push_str(&format!("{fam}_sum{} {}\n", brace(&tenant), h.sum));
}

impl MetricsSnapshot {
    /// Renders the snapshot in the OpenMetrics text exposition format.
    /// Output is deterministic for equal snapshots: families sorted by
    /// name, unlabeled series before labeled, tenants sorted.
    pub fn to_openmetrics(&self) -> String {
        let mut families: BTreeMap<String, Family<'_>> = BTreeMap::new();
        for (name, v) in &self.counters {
            families.insert(
                sanitize(name),
                Family::Counter {
                    plain: Some(*v),
                    by_tenant: BTreeMap::new(),
                },
            );
        }
        for (name, tenant, v) in &self.labeled_counters {
            match families
                .entry(sanitize(name))
                .or_insert_with(|| Family::Counter {
                    plain: None,
                    by_tenant: BTreeMap::new(),
                }) {
                Family::Counter { by_tenant, .. } => {
                    by_tenant.insert(tenant, *v);
                }
                Family::Histogram { .. } => {}
            }
        }
        for h in &self.histograms {
            families.insert(
                sanitize(&h.name),
                Family::Histogram {
                    plain: Some(h),
                    by_tenant: BTreeMap::new(),
                },
            );
        }
        for (tenant, h) in &self.labeled_histograms {
            match families
                .entry(sanitize(&h.name))
                .or_insert_with(|| Family::Histogram {
                    plain: None,
                    by_tenant: BTreeMap::new(),
                }) {
                Family::Histogram { by_tenant, .. } => {
                    by_tenant.insert(tenant, h);
                }
                Family::Counter { .. } => {}
            }
        }

        let mut out = String::new();
        for (fam, data) in &families {
            match data {
                Family::Counter { plain, by_tenant } => {
                    out.push_str(&format!("# TYPE {fam} counter\n"));
                    if let Some(v) = plain {
                        out.push_str(&format!("{fam}_total {v}\n"));
                    }
                    for (tenant, v) in by_tenant {
                        out.push_str(&format!(
                            "{fam}_total{{tenant=\"{}\"}} {v}\n",
                            escape_label(tenant)
                        ));
                    }
                }
                Family::Histogram { plain, by_tenant } => {
                    out.push_str(&format!("# TYPE {fam} histogram\n"));
                    if let Some(h) = plain {
                        push_histogram(&mut out, fam, None, h);
                    }
                    for (tenant, h) in by_tenant {
                        push_histogram(&mut out, fam, Some(tenant), h);
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One parsed sample line: `(name, sorted "k=v" label pairs, value)`.
type Sample = (String, Vec<(String, String)>, f64);

/// Parses `name{k="v",…} value`; label values are quote-aware (escaped
/// quotes and commas inside values are handled).
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('}') {
        Some(close) => {
            let value = line[close + 1..].trim();
            (&line[..close + 1], value)
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let head = it.next().unwrap_or("");
            (head, it.next().unwrap_or("").trim())
        }
    };
    let value: f64 = value
        .parse()
        .map_err(|_| format!("unparseable sample value in {line:?}"))?;
    let (name, labels) = match head.find('{') {
        None => (head.to_string(), Vec::new()),
        Some(open) => {
            if !head.ends_with('}') {
                return Err(format!("unterminated label set in {line:?}"));
            }
            let name = head[..open].to_string();
            let body = &head[open + 1..head.len() - 1];
            let mut labels = Vec::new();
            let mut rest = body;
            while !rest.is_empty() {
                let eq = rest
                    .find('=')
                    .ok_or_else(|| format!("label without '=' in {line:?}"))?;
                let key = rest[..eq].to_string();
                let after = &rest[eq + 1..];
                if !after.starts_with('"') {
                    return Err(format!("unquoted label value in {line:?}"));
                }
                // Scan to the closing quote, honoring backslash escapes.
                let mut val = String::new();
                let mut chars = after[1..].char_indices();
                let mut end = None;
                while let Some((i, ch)) = chars.next() {
                    match ch {
                        '\\' => {
                            if let Some((_, esc)) = chars.next() {
                                val.push(esc);
                            }
                        }
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        _ => val.push(ch),
                    }
                }
                let end = end.ok_or_else(|| format!("unterminated label value in {line:?}"))?;
                labels.push((key, val));
                rest = &after[1 + end + 1..];
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else if !rest.is_empty() {
                    return Err(format!("junk after label value in {line:?}"));
                }
            }
            (name, labels)
        }
    };
    if !valid_name(&name) {
        return Err(format!("invalid metric name {name:?} in {line:?}"));
    }
    labels.iter().try_for_each(|(k, _)| {
        valid_name(k)
            .then_some(())
            .ok_or_else(|| format!("invalid label name {k:?} in {line:?}"))
    })?;
    let mut labels = labels;
    labels.sort();
    Ok((name, labels, value))
}

/// The family a sample belongs to, per its declared type's suffix rules.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> Option<&'a str> {
    if let Some(fam) = name.strip_suffix("_total") {
        if types.get(fam).map(String::as_str) == Some("counter") {
            return Some(fam);
        }
    }
    for suffix in ["_bucket", "_count", "_sum"] {
        if let Some(fam) = name.strip_suffix(suffix) {
            if types.get(fam).map(String::as_str) == Some("histogram") {
                return Some(fam);
            }
        }
    }
    if types.get(name).map(String::as_str) == Some("gauge") {
        return Some(name);
    }
    None
}

/// Checks one OpenMetrics exposition: every line parses, every sample
/// belongs to a declared family, no family is declared twice, and the
/// text ends with `# EOF`.
pub fn lint(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut saw_eof = false;
    for line in text.lines() {
        if saw_eof {
            return Err(format!("content after # EOF: {line:?}"));
        }
        if line.is_empty() {
            return Err("blank line in exposition".to_string());
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.split_whitespace();
            match parts.next() {
                Some("EOF") => {
                    saw_eof = true;
                }
                Some("TYPE") => {
                    let fam = parts
                        .next()
                        .ok_or_else(|| format!("TYPE without family: {line:?}"))?;
                    let kind = parts
                        .next()
                        .ok_or_else(|| format!("TYPE without kind: {line:?}"))?;
                    if !valid_name(fam) {
                        return Err(format!("invalid family name in {line:?}"));
                    }
                    if !["counter", "histogram", "gauge"].contains(&kind) {
                        return Err(format!("unknown metric kind in {line:?}"));
                    }
                    if types.insert(fam.to_string(), kind.to_string()).is_some() {
                        return Err(format!("duplicate family declaration: {fam}"));
                    }
                }
                Some("HELP" | "UNIT") => {}
                _ => return Err(format!("unrecognized comment line: {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("malformed comment line: {line:?}"));
        }
        let (name, _labels, _value) = parse_sample(line)?;
        if family_of(&name, &types).is_none() {
            return Err(format!("sample {name:?} has no declared family"));
        }
    }
    if !saw_eof {
        return Err("exposition does not end with # EOF".to_string());
    }
    Ok(())
}

/// Collects every counter sample (`…_total`, including labeled series)
/// keyed by name + label set.
fn counter_samples(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Ok((name, labels, value)) = parse_sample(line) {
            if name.ends_with("_total") {
                let key = format!("{name}{labels:?}");
                out.insert(key, value);
            }
        }
    }
    out
}

/// Cross-checks two scrapes of the same collector: every counter series
/// present in `prev` must still be present in `next` with a value that
/// did not decrease.
pub fn counters_monotone(prev: &str, next: &str) -> Result<(), String> {
    let before = counter_samples(prev);
    let after = counter_samples(next);
    for (key, v0) in &before {
        match after.get(key) {
            None => return Err(format!("counter series {key} disappeared")),
            Some(v1) if v1 < v0 => {
                return Err(format!("counter series {key} went backwards: {v0} -> {v1}"))
            }
            Some(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Collector, MemoryCollector};

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("serve.latency_ns"), "serve_latency_ns");
        assert_eq!(sanitize("steno.cache.hit"), "steno_cache_hit");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
    }

    #[test]
    fn exposition_renders_and_lints_clean() {
        let c = MemoryCollector::new();
        c.add("steno.cache.hit", 3);
        c.add("serve.submitted", 10);
        c.observe_ns("serve.latency_ns", 100);
        c.observe_ns("serve.latency_ns", 5000);
        c.add_labeled("serve.tenant.completed", "acme", 2);
        c.add_labeled("serve.tenant.completed", "zeta", 5);
        c.observe_ns_labeled("serve.tenant.latency_ns", "acme", 250);
        let text = c.snapshot().to_openmetrics();
        lint(&text).unwrap();
        assert!(text.contains("# TYPE steno_cache_hit counter\n"), "{text}");
        assert!(text.contains("steno_cache_hit_total 3\n"), "{text}");
        assert!(
            text.contains("serve_tenant_completed_total{tenant=\"acme\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE serve_latency_ns histogram\n"), "{text}");
        assert!(
            text.contains("serve_latency_ns_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("serve_latency_ns_count 2\n"), "{text}");
        assert!(text.contains("serve_latency_ns_sum 5100\n"), "{text}");
        assert!(
            text.contains("serve_tenant_latency_ns_bucket{tenant=\"acme\",le=\"+Inf\"} 1\n"),
            "{text}"
        );
        assert!(text.ends_with("# EOF\n"), "{text}");
        // Deterministic for equal state.
        assert_eq!(text, c.snapshot().to_openmetrics());
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let c = MemoryCollector::new();
        for v in [1u64, 3, 3, 100] {
            c.observe_ns("h", v);
        }
        let text = c.snapshot().to_openmetrics();
        // [0,2) holds 1 → cum 1; [2,4) holds two 3s → cum 3; [64,128)
        // holds 100 → cum 4.
        assert!(text.contains("h_bucket{le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"4\"} 3\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"128\"} 4\n"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 4\n"), "{text}");
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        assert!(lint("x_total 1\n").is_err(), "missing EOF");
        assert!(
            lint("x_total 1\n# EOF\n").is_err(),
            "sample without declared family"
        );
        assert!(
            lint("# TYPE x counter\n# TYPE x counter\nx_total 1\n# EOF\n")
                .unwrap_err()
                .contains("duplicate"),
        );
        assert!(
            lint("# TYPE x counter\nx_total banana\n# EOF\n").is_err(),
            "unparseable value"
        );
        assert!(
            lint("# TYPE x counter\nx_total 1\n# EOF\nx_total 2\n").is_err(),
            "content after EOF"
        );
        assert!(
            lint("# TYPE 1bad counter\n# EOF\n").is_err(),
            "invalid family name"
        );
        assert!(
            lint("# TYPE x counter\nx_total{tenant=unquoted} 1\n# EOF\n").is_err(),
            "unquoted label"
        );
        assert!(lint("garbage line\n# EOF\n").is_err());
        // A well-formed exposition with labels and escapes passes.
        lint("# TYPE x counter\nx_total{tenant=\"a\\\"b,c\"} 1\n# EOF\n").unwrap();
    }

    #[test]
    fn monotone_check_catches_regressions() {
        let c = MemoryCollector::new();
        c.add("queries", 1);
        c.add_labeled("serve.tenant.completed", "acme", 1);
        let s1 = c.snapshot().to_openmetrics();
        c.add("queries", 2);
        c.add_labeled("serve.tenant.completed", "acme", 1);
        let s2 = c.snapshot().to_openmetrics();
        counters_monotone(&s1, &s2).unwrap();
        // Reversed order: counters went backwards.
        let err = counters_monotone(&s2, &s1).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
        // A fresh collector lost the series entirely.
        let empty = MemoryCollector::new().snapshot().to_openmetrics();
        let err = counters_monotone(&s1, &empty).unwrap_err();
        assert!(err.contains("disappeared"), "{err}");
    }
}
