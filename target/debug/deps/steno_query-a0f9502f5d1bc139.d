/root/repo/target/debug/deps/steno_query-a0f9502f5d1bc139.d: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

/root/repo/target/debug/deps/steno_query-a0f9502f5d1bc139: crates/steno-query/src/lib.rs crates/steno-query/src/ast.rs crates/steno-query/src/builder.rs crates/steno-query/src/typing.rs

crates/steno-query/src/lib.rs:
crates/steno-query/src/ast.rs:
crates/steno-query/src/builder.rs:
crates/steno-query/src/typing.rs:
