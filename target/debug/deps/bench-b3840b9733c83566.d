/root/repo/target/debug/deps/bench-b3840b9733c83566.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libbench-b3840b9733c83566.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
