/root/repo/target/debug/deps/bench-212e344653af3c87.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/bench-212e344653af3c87: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/kmeans.rs crates/bench/src/micro.rs crates/bench/src/prng.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/kmeans.rs:
crates/bench/src/micro.rs:
crates/bench/src/prng.rs:
crates/bench/src/workloads.rs:
