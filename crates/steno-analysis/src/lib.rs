//! Static analysis for Steno: expression facts, plan verification, lints.
//!
//! This crate is the static-analysis layer sitting between the QUIL
//! optimizer and the execution tiers. It is deliberately dependency-free
//! beyond the core Steno crates and provides three cooperating passes:
//!
//! * [`facts`] — a bottom-up abstract interpreter over
//!   [`steno_expr::Expr`] computing purity, may-trap effects, and
//!   interval ranges ([`analyze`]). The vectorizer consults these facts
//!   to accept loops it would otherwise refuse and to drop per-lane
//!   trap guards (e.g. a divisor of shape `x % 7 + 9` provably excludes
//!   zero, so the division can never trap).
//! * [`verify`] — an independent re-typechecker and plan cross-checker
//!   for lowered QUIL ([`verify()`]). It re-derives homomorphism from
//!   first principles and concretely tests combiner associativity on
//!   exactly-representable sample grids, so an optimizer bug that
//!   mis-classifies an operator or splits a non-associative aggregate
//!   becomes a hard [`VerifyError`] instead of a wrong answer.
//! * [`lint`] — a [`Lint`] trait plus registry flagging suspicious query
//!   shapes (dead filters, redundant adjacent operators, degenerate
//!   Take/Skip, opaque UDFs in reordered positions) with operator
//!   provenance via [`steno_quil::ir::OpSpan`].

#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod facts;
pub mod lint;
pub mod verify;

pub use facts::{analyze, ExprFacts, Interval, Traps};
pub use lint::{run_default_lints, Diagnostic, Lint, LintRegistry, Severity};
pub use verify::{verify, VerifyError, VerifyReport};
