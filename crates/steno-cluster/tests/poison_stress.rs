//! Poison-stress for the sync wrappers: many threads repeatedly panic
//! *while holding* the lock, interleaved with well-behaved threads.
//! The poison-recovering wrappers must neither deadlock nor lose state
//! — every critical section here leaves the protected value consistent
//! before panicking, which is exactly the contract the scheduler's
//! state relies on.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use steno_cluster::sync::{Condvar, Mutex};

#[test]
fn mutex_survives_concurrent_panicking_holders() {
    const PANICKERS: usize = 4;
    const WORKERS: usize = 4;
    const ROUNDS: usize = 200;

    let counter = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::new();

    // Panicking threads: increment, then panic with the lock held.
    for _ in 0..PANICKERS {
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut guard = counter.lock();
                    *guard += 1;
                    panic!("poison while holding the lock");
                }));
                assert!(result.is_err(), "the panic must have fired");
            }
        }));
    }
    // Well-behaved threads: plain increments through the same lock.
    for _ in 0..WORKERS {
        let counter = Arc::clone(&counter);
        handles.push(std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                *counter.lock() += 1;
            }
        }));
    }
    for h in handles {
        assert!(h.join().is_ok(), "stress threads themselves must not die");
    }

    // No deadlock (we got here) and no lost updates: every increment —
    // including the ones immediately followed by a panic — landed.
    let total = *counter.lock();
    assert_eq!(total, ((PANICKERS + WORKERS) * ROUNDS) as u64);
}

#[test]
fn condvar_waiters_survive_a_panicking_notifier() {
    let state = Arc::new(Mutex::new(0u32));
    let cv = Arc::new(Condvar::new());

    // A notifier that bumps the generation, panics while holding the
    // lock, and notifies from a later clean pass.
    let notifier = {
        let state = Arc::clone(&state);
        let cv = Arc::clone(&cv);
        std::thread::spawn(move || {
            for gen in 1..=10u32 {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    let mut g = state.lock();
                    *g = gen;
                    panic!("poison under the condvar's mutex");
                }));
                cv.notify_all();
            }
        })
    };

    // The waiter keeps re-acquiring the (repeatedly poisoned) lock
    // until it observes the final generation; the deadline turns a
    // would-be deadlock into a test failure.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut guard = state.lock();
    while *guard < 10 {
        assert!(
            Instant::now() < deadline,
            "waiter starved: poisoning must not wedge the condvar"
        );
        guard = cv.wait_timeout(guard, Duration::from_millis(5));
    }
    drop(guard);
    assert!(notifier.join().is_ok());
    assert_eq!(*state.lock(), 10);
}
