/root/repo/target/debug/deps/fig01-da6114ff366aba37.d: crates/bench/src/bin/fig01.rs

/root/repo/target/debug/deps/fig01-da6114ff366aba37: crates/bench/src/bin/fig01.rs

crates/bench/src/bin/fig01.rs:
