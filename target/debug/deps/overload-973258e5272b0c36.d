/root/repo/target/debug/deps/overload-973258e5272b0c36.d: crates/steno-serve/tests/overload.rs Cargo.toml

/root/repo/target/debug/deps/liboverload-973258e5272b0c36.rmeta: crates/steno-serve/tests/overload.rs Cargo.toml

crates/steno-serve/tests/overload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
