/root/repo/target/debug/deps/fig14-305e70a370178594.d: crates/bench/src/bin/fig14.rs

/root/repo/target/debug/deps/fig14-305e70a370178594: crates/bench/src/bin/fig14.rs

crates/bench/src/bin/fig14.rs:
