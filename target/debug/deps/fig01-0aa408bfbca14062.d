/root/repo/target/debug/deps/fig01-0aa408bfbca14062.d: crates/bench/src/bin/fig01.rs Cargo.toml

/root/repo/target/debug/deps/libfig01-0aa408bfbca14062.rmeta: crates/bench/src/bin/fig01.rs Cargo.toml

crates/bench/src/bin/fig01.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
