/root/repo/target/debug/deps/steno_analysis-9b71a2574f2c661c.d: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

/root/repo/target/debug/deps/libsteno_analysis-9b71a2574f2c661c.rlib: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

/root/repo/target/debug/deps/libsteno_analysis-9b71a2574f2c661c.rmeta: crates/steno-analysis/src/lib.rs crates/steno-analysis/src/facts.rs crates/steno-analysis/src/lint.rs crates/steno-analysis/src/verify.rs

crates/steno-analysis/src/lib.rs:
crates/steno-analysis/src/facts.rs:
crates/steno-analysis/src/lint.rs:
crates/steno-analysis/src/verify.rs:
